#include "nxproxy/daemon.hpp"

#include <chrono>

#include "common/log.hpp"
#include "nxproxy/metrics_http.hpp"
#include "prof/prof.hpp"

namespace wacs::nxproxy {
namespace {
const log::Logger kLog("nxproxy");
constexpr std::size_t kSpliceChunk = 64 * 1024;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Dial wrapped with connect-latency accounting (successes only; a refused
/// dial measures the error path, not the network).
Result<net::TcpSocket> dial_timed(const Contact& target, DaemonStats& stats) {
  PROF_SCOPE("dial");
  const auto t0 = std::chrono::steady_clock::now();
  auto sock = net::TcpSocket::dial(target);
  if (sock.ok()) stats.connect_ms.observe(ms_since(t0));
  return sock;
}

}  // namespace

namespace detail {

// ---------------------------------------------------------------- Session

Session::Session(net::TcpSocket a, net::TcpSocket b, DaemonStats* stats)
    : a_(std::move(a)), b_(std::move(b)), stats_(stats) {}

Session::~Session() {
  shutdown();
  join();
}

void Session::start() {
  opened_ = std::chrono::steady_clock::now();
  stats_->sessions_opened.fetch_add(1, std::memory_order_relaxed);
  kLog.debug("session open");
  up_ = std::thread([this] { pump(a_, b_); });
  down_ = std::thread([this] { pump(b_, a_); });
}

void Session::shutdown() {
  a_.shutdown();
  b_.shutdown();
}

void Session::join() {
  if (up_.joinable()) up_.join();
  if (down_.joinable()) down_.join();
}

void Session::pump(net::TcpSocket& from, net::TcpSocket& to) {
  // One scope for the pump's whole lifetime: the self time is wall time the
  // thread spent splicing (mostly blocked in read), which is exactly the
  // "where do relayed connections live" attribution the flame graph needs.
  PROF_SCOPE("session.pump");
  while (true) {
    auto chunk = from.read_some(kSpliceChunk);
    if (!chunk.ok()) break;
    stats_->bytes_relayed.fetch_add(chunk->size(), std::memory_order_relaxed);
    bytes_.fetch_add(chunk->size(), std::memory_order_relaxed);
    if (!to.write_all(*chunk).ok()) break;
  }
  // Half-close semantics: EOF in one direction shuts both ends so the
  // sibling pump unblocks too (the relay treats the link as one unit, like
  // the original Nexus Proxy did).
  from.shutdown();
  to.shutdown();
  // The last pump out records the session's lifetime and close event.
  if (done_.fetch_add(1) + 1 == 2) {
    const double dur_ms = ms_since(opened_);
    stats_->sessions_closed.fetch_add(1, std::memory_order_relaxed);
    stats_->relay_session_ms.observe(dur_ms);
    kLog.debug("session close bytes=%llu dur_ms=%.3f",
               static_cast<unsigned long long>(
                   bytes_.load(std::memory_order_relaxed)),
               dur_ms);
  }
}

// ---------------------------------------------------------------- Workers

void Workers::add_thread(std::thread t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    // Daemon is tearing down: the thread was never started by callers in
    // this state (they check stopping_ first), but be safe.
    if (t.joinable()) t.join();
    return;
  }
  threads_.push_back(std::move(t));
}

Session& Workers::add_session(net::TcpSocket a, net::TcpSocket b,
                              DaemonStats* stats) {
  auto session = std::make_unique<Session>(std::move(a), std::move(b), stats);
  Session& ref = *session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.push_back(std::move(session));
  }
  ref.start();
  return ref;
}

std::shared_ptr<net::TcpSocket> Workers::track(
    std::shared_ptr<net::TcpSocket> s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    s->shutdown();
  } else {
    tracked_.push_back(s);
  }
  return s;
}

void Workers::untrack(const std::shared_ptr<net::TcpSocket>& s) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase(tracked_, s);
}

void Workers::reap() {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(sessions_, [](const std::unique_ptr<Session>& s) {
    return s->finished();
  });
}

void Workers::stop_all() {
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::shared_ptr<net::TcpSocket>> tracked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    threads.swap(threads_);
    sessions.swap(sessions_);
    tracked.swap(tracked_);
  }
  for (auto& s : tracked) s->shutdown();
  for (auto& s : sessions) s->shutdown();
  for (auto& s : sessions) s->join();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace detail

// ------------------------------------------------------------ InnerDaemon

InnerDaemon::InnerDaemon(std::string bind_ip, std::uint16_t nxport)
    : bind_ip_(std::move(bind_ip)), requested_port_(nxport) {}

InnerDaemon::~InnerDaemon() { stop(); }

Status InnerDaemon::start() {
  WACS_CHECK_MSG(!started_, "inner daemon already started");
  auto listener = net::TcpListener::bind(bind_ip_, requested_port_);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  workers_.add_thread(std::thread([this] { accept_loop(); }));
  kLog.info("inner daemon listening on %s:%u (nxport)", bind_ip_.c_str(),
            static_cast<unsigned>(port_));
  return Status();
}

void InnerDaemon::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  if (metrics_) metrics_->stop();
  listener_.shutdown();
  workers_.stop_all();
}

Status InnerDaemon::serve_metrics(const std::string& bind_ip,
                                  std::uint16_t port) {
  metrics_ = std::make_unique<MetricsHttpServer>(
      [this] { return render_metrics(stats_, "inner"); });
  return metrics_->start(bind_ip, port);
}

std::uint16_t InnerDaemon::metrics_port() const {
  return metrics_ ? metrics_->port() : 0;
}

void InnerDaemon::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn.ok()) return;  // listener shut down
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    workers_.reap();
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*conn)));
    workers_.add_thread(std::thread([this, sock] {
      handle(*sock);
      workers_.untrack(sock);
    }));
  }
}

void InnerDaemon::handle(net::TcpSocket& conn) {
  PROF_SCOPE("inner.handle");
  const auto accepted = std::chrono::steady_clock::now();
  auto frame = [&] {
    PROF_SCOPE("inner.preamble");
    return conn.read_frame();
  }();
  if (!frame.ok()) {
    ++stats_.handshake_failures;
    return;
  }
  auto req = proxy::ForwardRequest::decode(*frame);
  if (!req.ok()) {
    ++stats_.handshake_failures;
    kLog.warn("inner: bad forward request: %s",
              req.error().to_string().c_str());
    return;
  }
  stats_.stage_preamble_ms.observe(ms_since(accepted));
  auto target = dial_timed(req->target, stats_);
  if (!target.ok()) {
    ++stats_.handshake_failures;
    (void)conn.write_frame(
        proxy::ForwardReply{false, target.error().to_string()}.encode());
    return;
  }
  // Tell the bound client who the true peer is, then acknowledge the outer.
  if (!target->write_frame(proxy::AcceptNotice{req->peer}.encode()).ok()) {
    ++stats_.handshake_failures;
    (void)conn.write_frame(
        proxy::ForwardReply{false, "target vanished"}.encode());
    return;
  }
  if (!conn.write_frame(proxy::ForwardReply{true, ""}.encode()).ok()) return;
  stats_.stage_handshake_ms.observe(ms_since(accepted));
  workers_.add_session(std::move(conn), std::move(*target), &stats_);
}

// ------------------------------------------------------------ OuterDaemon

RelayAccessPolicy& RelayAccessPolicy::allow_target(std::string host,
                                                   std::uint16_t port) {
  deny_by_default_ = true;
  allowed_.push_back(Allowed{std::move(host), port});
  return *this;
}

RelayAccessPolicy& RelayAccessPolicy::deny_by_default() {
  deny_by_default_ = true;
  return *this;
}

bool RelayAccessPolicy::permits(const Contact& target) const {
  if (!deny_by_default_) return true;
  for (const Allowed& a : allowed_) {
    if (a.host == target.host && (a.port == 0 || a.port == target.port)) {
      return true;
    }
  }
  return false;
}

OuterDaemon::OuterDaemon(std::string bind_ip, std::uint16_t control_port,
                         std::string advertise_host, RelayAccessPolicy policy)
    : bind_ip_(std::move(bind_ip)),
      requested_port_(control_port),
      advertise_host_(std::move(advertise_host)),
      policy_(std::move(policy)) {}

OuterDaemon::~OuterDaemon() { stop(); }

Status OuterDaemon::start() {
  WACS_CHECK_MSG(!started_, "outer daemon already started");
  auto listener = net::TcpListener::bind(bind_ip_, requested_port_);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  workers_.add_thread(std::thread([this] { accept_loop(); }));
  kLog.info("outer daemon listening on %s:%u", bind_ip_.c_str(),
            static_cast<unsigned>(port_));
  return Status();
}

Status OuterDaemon::serve_metrics(const std::string& bind_ip,
                                  std::uint16_t port) {
  metrics_ = std::make_unique<MetricsHttpServer>(
      [this] { return render_metrics(stats_, "outer"); });
  return metrics_->start(bind_ip, port);
}

std::uint16_t OuterDaemon::metrics_port() const {
  return metrics_ ? metrics_->port() : 0;
}

void OuterDaemon::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  if (metrics_) metrics_->stop();
  listener_.shutdown();
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    for (auto& b : bindings_) b->listener.shutdown();
  }
  workers_.stop_all();
}

void OuterDaemon::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept();
    if (!conn.ok()) return;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    workers_.reap();
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*conn)));
    workers_.add_thread(std::thread([this, sock] {
      handle_control(*sock);
      workers_.untrack(sock);
    }));
  }
}

void OuterDaemon::handle_control(net::TcpSocket& conn) {
  PROF_SCOPE("outer.control");
  const auto accepted = std::chrono::steady_clock::now();
  auto frame = [&] {
    PROF_SCOPE("outer.preamble");
    return conn.read_frame();
  }();
  if (!frame.ok()) {
    ++stats_.handshake_failures;
    return;
  }
  auto type = proxy::peek_type(*frame);
  if (!type.ok()) {
    ++stats_.handshake_failures;
    return;
  }
  switch (*type) {
    case proxy::MsgType::kConnectRequest: {
      auto req = proxy::ConnectRequest::decode(*frame);
      if (req.ok()) {
        stats_.stage_preamble_ms.observe(ms_since(accepted));
        handle_connect(conn, *req, accepted);
      } else {
        ++stats_.handshake_failures;
      }
      return;
    }
    case proxy::MsgType::kBindRequest: {
      auto req = proxy::BindRequest::decode(*frame);
      if (req.ok()) {
        stats_.stage_preamble_ms.observe(ms_since(accepted));
        handle_bind(conn, *req, accepted);
      } else {
        ++stats_.handshake_failures;
      }
      return;
    }
    default:
      ++stats_.handshake_failures;
      kLog.warn("outer: unexpected control frame type %d",
                static_cast<int>(*type));
      return;
  }
}

void OuterDaemon::handle_connect(net::TcpSocket& conn,
                                 const proxy::ConnectRequest& req,
                                 std::chrono::steady_clock::time_point t0) {
  PROF_SCOPE("outer.connect");
  if (!policy_.permits(req.target)) {
    ++stats_.handshake_failures;
    (void)conn.write_frame(
        proxy::ConnectReply{false, "target " + req.target.to_string() +
                                       " not permitted by relay policy"}
            .encode());
    return;
  }
  // Relay collapsing: a proxied client dialing a proxied peer names one of
  // our own public ports; bridge straight to the inner daemon instead of
  // dialing ourselves.
  if (req.target.host == advertise_host_) {
    std::shared_ptr<PublicBinding> binding;
    {
      std::lock_guard<std::mutex> lock(bindings_mu_);
      for (const auto& b : bindings_) {
        if (b->listener.port() == req.target.port) binding = b;
      }
    }
    if (binding != nullptr) {
      if (!conn.write_frame(proxy::ConnectReply{true, ""}.encode()).ok()) {
        return;
      }
      bridge_to_inner(conn, binding);
      return;
    }
  }
  auto target = dial_timed(req.target, stats_);
  if (!target.ok()) {
    ++stats_.handshake_failures;
    (void)conn.write_frame(
        proxy::ConnectReply{false, target.error().to_string()}.encode());
    return;
  }
  if (!conn.write_frame(proxy::ConnectReply{true, ""}.encode()).ok()) return;
  stats_.stage_handshake_ms.observe(ms_since(t0));
  workers_.add_session(std::move(conn), std::move(*target), &stats_);
}

void OuterDaemon::handle_bind(net::TcpSocket& conn,
                              const proxy::BindRequest& req,
                              std::chrono::steady_clock::time_point t0) {
  PROF_SCOPE("outer.bind");
  auto listener = net::TcpListener::bind(bind_ip_, 0);
  if (!listener.ok()) {
    ++stats_.handshake_failures;
    (void)conn.write_frame(
        proxy::BindReply{false, Contact{}, 0, listener.error().to_string()}
            .encode());
    return;
  }
  auto binding = std::make_shared<PublicBinding>();
  binding->id = next_bind_id_.fetch_add(1);
  binding->target = req.local;
  binding->inner = req.inner;
  binding->listener = std::move(*listener);
  const Contact public_contact{advertise_host_, binding->listener.port()};
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    bindings_.push_back(binding);
  }
  ++active_binds_;
  workers_.add_thread(
      std::thread([this, binding] { public_accept_loop(binding); }));
  stats_.stage_handshake_ms.observe(ms_since(t0));
  (void)conn.write_frame(
      proxy::BindReply{true, public_contact, binding->id, ""}.encode());
  // Bind registration is one-shot; the control connection closes here.
}

void OuterDaemon::public_accept_loop(std::shared_ptr<PublicBinding> binding) {
  while (!stopping_.load()) {
    auto remote = binding->listener.accept();
    if (!remote.ok()) break;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*remote)));
    workers_.add_thread(std::thread([this, sock, binding] {
      bridge_to_inner(*sock, binding);
      workers_.untrack(sock);
    }));
  }
  --active_binds_;
}

void OuterDaemon::bridge_to_inner(net::TcpSocket& remote,
                                  std::shared_ptr<PublicBinding> binding) {
  PROF_SCOPE("outer.bridge");
  const auto t0 = std::chrono::steady_clock::now();
  auto inner = dial_timed(binding->inner, stats_);
  if (!inner.ok()) {
    ++stats_.handshake_failures;
    kLog.warn("outer: cannot reach inner %s: %s",
              binding->inner.to_string().c_str(),
              inner.error().to_string().c_str());
    return;
  }
  Contact peer = remote.peer().value_or(Contact{"unknown", 0});
  proxy::ForwardRequest req{binding->target, peer};
  if (!inner->write_frame(req.encode()).ok()) {
    ++stats_.handshake_failures;
    return;
  }
  auto reply_frame = inner->read_frame();
  if (!reply_frame.ok()) {
    ++stats_.handshake_failures;
    return;
  }
  auto reply = proxy::ForwardReply::decode(*reply_frame);
  if (!reply.ok() || !reply->ok) {
    ++stats_.handshake_failures;
    return;
  }
  stats_.stage_handshake_ms.observe(ms_since(t0));
  workers_.add_session(std::move(remote), std::move(*inner), &stats_);
}

}  // namespace wacs::nxproxy
