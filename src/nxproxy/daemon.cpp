#include "nxproxy/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/log.hpp"
#include "nxproxy/metrics_http.hpp"
#include "prof/prof.hpp"

namespace wacs::nxproxy {
namespace {
const log::Logger kLog("nxproxy");
constexpr std::size_t kSpliceChunk = 64 * 1024;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dial wrapped with connect-latency accounting (successes only; a refused
/// dial measures the error path, not the network). Bounded by the daemon's
/// dial deadline so a black-holed target cannot park a handler thread.
Result<net::TcpSocket> dial_timed(const Contact& target, DaemonStats& stats,
                                  const DaemonOptions& options) {
  PROF_SCOPE("dial");
  const auto t0 = std::chrono::steady_clock::now();
  auto sock = options.dial_timeout_ms > 0
                  ? net::TcpSocket::dial_timeout(target, options.dial_timeout_ms)
                  : net::TcpSocket::dial(target);
  if (sock.ok()) stats.connect_ms.observe(ms_since(t0));
  return sock;
}

/// Control-frame read under the handshake deadline and the control-surface
/// frame cap: a slowloris peer times out, an absurd length prefix is
/// rejected before any allocation.
Result<Bytes> read_control_frame(net::TcpSocket& conn,
                                 const DaemonOptions& options) {
  if (options.handshake_timeout_ms > 0) {
    return conn.read_frame_timeout(options.handshake_timeout_ms,
                                   proxy::kMaxControlFrameBytes);
  }
  return conn.read_frame(proxy::kMaxControlFrameBytes);
}

/// A failed control read is either the deadline firing or garbage/EOF.
HsFail hs_kind(const Error& e) {
  return e.code() == ErrorCode::kTimeout ? HsFail::kTimeout : HsFail::kMalformed;
}

void apply_keepalive(net::TcpSocket& sock, const DaemonOptions& options) {
  if (!options.tcp_keepalive) return;
  // Best-effort: a socket that dies before setsockopt is caught by the
  // first read anyway.
  (void)sock.set_keepalive(options.keepalive_idle_s,
                           options.keepalive_interval_s,
                           options.keepalive_count);
}

/// Accept with supervision: transient failures (kUnavailable — EMFILE,
/// ECONNABORTED, ENOBUFS, ...) are retried with capped exponential backoff
/// instead of killing the loop; nullopt means the loop must exit (listener
/// shut down or daemon stopping).
std::optional<net::TcpSocket> supervised_accept(net::TcpListener& listener,
                                                const std::atomic<bool>& stopping,
                                                DaemonStats& stats,
                                                const DaemonOptions& options,
                                                const char* who) {
  int backoff_ms = 1;
  while (!stopping.load()) {
    auto conn = listener.accept();
    if (conn.ok()) return std::move(*conn);
    if (stopping.load() || conn.error().code() != ErrorCode::kUnavailable) {
      return std::nullopt;
    }
    stats.accept_retries.fetch_add(1, std::memory_order_relaxed);
    kLog.warn("%s: transient accept failure (%s); retrying in %d ms", who,
              conn.error().to_string().c_str(), backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms =
        std::min(backoff_ms * 2, std::max(options.accept_retry_max_backoff_ms, 1));
  }
  return std::nullopt;
}

/// Admission-gate refusal on a control surface: an explicit Busy frame (a
/// handful of bytes — fits any send buffer without blocking), then a brief
/// drain before close. The drain matters: the peer is usually still writing
/// its request when the verdict arrives, and closing with that request
/// unread turns into an RST that destroys the queued Busy frame before the
/// peer can read it. Callers run this off the accept loop so a shed storm
/// cannot serialize accepts behind the drain.
void shed_control(net::TcpSocket conn, DaemonStats& stats,
                  const DaemonOptions& options) {
  stats.shed_connections.fetch_add(1, std::memory_order_relaxed);
  (void)conn.write_frame(
      proxy::Busy{static_cast<std::uint32_t>(
                      std::max(options.busy_retry_after_ms, 0))}
          .encode());
  for (int i = 0; i < 5; ++i) {
    if (!conn.read_some_timeout(4096, 20).ok()) break;  // EOF, RST, or idle
  }
  conn.shutdown();
}

/// Graceful drain: the listeners are already gone so no new work arrives;
/// give in-flight handshakes and sessions up to `drain_ms` to finish on
/// their own before the forced teardown.
void drain_sessions(const DaemonStats& stats, const std::atomic<int>& inflight,
                    int drain_ms) {
  if (drain_ms <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(drain_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (inflight.load(std::memory_order_relaxed) == 0 &&
        stats.sessions_opened.load(std::memory_order_relaxed) ==
            stats.sessions_closed.load(std::memory_order_relaxed)) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace

void fail_handshake(DaemonStats& stats, HsFail kind) {
  stats.handshake_failures.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case HsFail::kPolicyDenied:
      stats.hs_policy_denied.fetch_add(1, std::memory_order_relaxed);
      break;
    case HsFail::kMalformed:
      stats.hs_malformed.fetch_add(1, std::memory_order_relaxed);
      break;
    case HsFail::kDialFailed:
      stats.hs_dial_failed.fetch_add(1, std::memory_order_relaxed);
      break;
    case HsFail::kTimeout:
      stats.hs_timeout.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

namespace detail {

// ---------------------------------------------------------------- Session

Session::Session(net::TcpSocket a, net::TcpSocket b, DaemonStats* stats,
                 int idle_timeout_ms)
    : a_(std::move(a)),
      b_(std::move(b)),
      stats_(stats),
      idle_timeout_ms_(idle_timeout_ms) {}

Session::~Session() {
  shutdown();
  join();
}

void Session::start() {
  opened_ = std::chrono::steady_clock::now();
  last_activity_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  stats_->sessions_opened.fetch_add(1, std::memory_order_relaxed);
  kLog.debug("session open");
  up_ = std::thread([this] { pump(a_, b_); });
  down_ = std::thread([this] { pump(b_, a_); });
}

void Session::shutdown() {
  a_.shutdown();
  b_.shutdown();
}

void Session::join() {
  if (up_.joinable()) up_.join();
  if (down_.joinable()) down_.join();
}

void Session::pump(net::TcpSocket& from, net::TcpSocket& to) {
  // One scope for the pump's whole lifetime: the self time is wall time the
  // thread spent splicing (mostly blocked in read), which is exactly the
  // "where do relayed connections live" attribution the flame graph needs.
  PROF_SCOPE("session.pump");
  const std::int64_t idle_ns =
      static_cast<std::int64_t>(idle_timeout_ms_) * 1'000'000;
  while (true) {
    auto chunk = [&]() -> Result<Bytes> {
      if (idle_timeout_ms_ <= 0) return from.read_some(kSpliceChunk);
      // Wake at the *shared* idle deadline: activity in either direction
      // (both pumps touch last_activity_ns_) pushes it out.
      std::int64_t wait_ms =
          (last_activity_ns_.load(std::memory_order_relaxed) + idle_ns -
           steady_now_ns()) /
              1'000'000 +
          1;
      wait_ms = std::clamp<std::int64_t>(wait_ms, 1, idle_timeout_ms_);
      return from.read_some_timeout(kSpliceChunk, static_cast<int>(wait_ms));
    }();
    if (!chunk.ok()) {
      if (chunk.error().code() == ErrorCode::kTimeout) {
        if (steady_now_ns() <
            last_activity_ns_.load(std::memory_order_relaxed) + idle_ns) {
          continue;  // the other direction was active; keep waiting
        }
        // Neither direction moved a byte for the whole window: a half-open
        // or parked peer. Evict (counted once per session).
        if (!idle_evicted_.exchange(true)) {
          stats_->idle_evictions.fetch_add(1, std::memory_order_relaxed);
          kLog.debug("session idle-evicted after %d ms", idle_timeout_ms_);
        }
      }
      break;
    }
    last_activity_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    stats_->bytes_relayed.fetch_add(chunk->size(), std::memory_order_relaxed);
    bytes_.fetch_add(chunk->size(), std::memory_order_relaxed);
    if (!to.write_all(*chunk).ok()) break;
  }
  // Half-close semantics: EOF in one direction shuts both ends so the
  // sibling pump unblocks too (the relay treats the link as one unit, like
  // the original Nexus Proxy did).
  from.shutdown();
  to.shutdown();
  // The last pump out records the session's lifetime and close event.
  if (done_.fetch_add(1) + 1 == 2) {
    const double dur_ms = ms_since(opened_);
    stats_->sessions_closed.fetch_add(1, std::memory_order_relaxed);
    stats_->relay_session_ms.observe(dur_ms);
    kLog.debug("session close bytes=%llu dur_ms=%.3f",
               static_cast<unsigned long long>(
                   bytes_.load(std::memory_order_relaxed)),
               dur_ms);
  }
}

// ---------------------------------------------------------------- Workers

void Workers::add_thread(std::thread t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    // Daemon is tearing down: the thread was never started by callers in
    // this state (they check stopping_ first), but be safe.
    if (t.joinable()) t.join();
    return;
  }
  threads_.push_back(std::move(t));
}

Session& Workers::add_session(net::TcpSocket a, net::TcpSocket b,
                              DaemonStats* stats, int idle_timeout_ms) {
  auto session = std::make_unique<Session>(std::move(a), std::move(b), stats,
                                           idle_timeout_ms);
  Session& ref = *session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.push_back(std::move(session));
  }
  ref.start();
  return ref;
}

std::shared_ptr<net::TcpSocket> Workers::track(
    std::shared_ptr<net::TcpSocket> s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    s->shutdown();
  } else {
    tracked_.push_back(s);
  }
  return s;
}

void Workers::untrack(const std::shared_ptr<net::TcpSocket>& s) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase(tracked_, s);
}

void Workers::reap() {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(sessions_, [](const std::unique_ptr<Session>& s) {
    return s->finished();
  });
}

void Workers::stop_all() {
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::shared_ptr<net::TcpSocket>> tracked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    threads.swap(threads_);
    sessions.swap(sessions_);
    tracked.swap(tracked_);
  }
  for (auto& s : tracked) s->shutdown();
  for (auto& s : sessions) s->shutdown();
  for (auto& s : sessions) s->join();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace detail

// ------------------------------------------------------------ InnerDaemon

InnerDaemon::InnerDaemon(std::string bind_ip, std::uint16_t nxport,
                         DaemonOptions options)
    : bind_ip_(std::move(bind_ip)),
      requested_port_(nxport),
      options_(options) {}

InnerDaemon::~InnerDaemon() { stop(); }

Status InnerDaemon::start() {
  WACS_CHECK_MSG(!started_, "inner daemon already started");
  auto listener = net::TcpListener::bind(bind_ip_, requested_port_);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  workers_.add_thread(std::thread([this] { accept_loop(); }));
  kLog.info("inner daemon listening on %s:%u (nxport)", bind_ip_.c_str(),
            static_cast<unsigned>(port_));
  return Status();
}

void InnerDaemon::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  if (metrics_) metrics_->stop();
  listener_.shutdown();
  drain_sessions(stats_, inflight_handshakes_, options_.drain_ms);
  workers_.stop_all();
}

Status InnerDaemon::serve_metrics(const std::string& bind_ip,
                                  std::uint16_t port) {
  metrics_ = std::make_unique<MetricsHttpServer>(
      [this] { return render_metrics(stats_, "inner"); });
  return metrics_->start(bind_ip, port);
}

std::uint16_t InnerDaemon::metrics_port() const {
  return metrics_ ? metrics_->port() : 0;
}

bool InnerDaemon::over_capacity() const {
  if (options_.max_connections <= 0) return false;
  const auto open_sessions =
      stats_.sessions_opened.load(std::memory_order_relaxed) -
      stats_.sessions_closed.load(std::memory_order_relaxed);
  return inflight_handshakes_.load(std::memory_order_relaxed) +
             static_cast<std::int64_t>(open_sessions) >=
         options_.max_connections;
}

void InnerDaemon::accept_loop() {
  while (!stopping_.load()) {
    auto conn =
        supervised_accept(listener_, stopping_, stats_, options_, "inner");
    if (!conn) return;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    workers_.reap();
    if (over_capacity()) {
      auto shed = std::make_shared<net::TcpSocket>(std::move(*conn));
      workers_.add_thread(std::thread(
          [this, shed] { shed_control(std::move(*shed), stats_, options_); }));
      continue;
    }
    apply_keepalive(*conn, options_);
    inflight_handshakes_.fetch_add(1, std::memory_order_relaxed);
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*conn)));
    workers_.add_thread(std::thread([this, sock] {
      handle(*sock);
      workers_.untrack(sock);
      inflight_handshakes_.fetch_sub(1, std::memory_order_relaxed);
    }));
  }
}

void InnerDaemon::handle(net::TcpSocket& conn) {
  PROF_SCOPE("inner.handle");
  const auto accepted = std::chrono::steady_clock::now();
  auto frame = [&] {
    PROF_SCOPE("inner.preamble");
    return read_control_frame(conn, options_);
  }();
  if (!frame.ok()) {
    fail_handshake(stats_, hs_kind(frame.error()));
    return;
  }
  auto req = proxy::ForwardRequest::decode(*frame);
  if (!req.ok()) {
    fail_handshake(stats_, HsFail::kMalformed);
    kLog.warn("inner: bad forward request: %s",
              req.error().to_string().c_str());
    return;
  }
  stats_.stage_preamble_ms.observe(ms_since(accepted));
  auto target = dial_timed(req->target, stats_, options_);
  if (!target.ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    (void)conn.write_frame(
        proxy::ForwardReply{false, target.error().to_string()}.encode());
    return;
  }
  apply_keepalive(*target, options_);
  // Tell the bound client who the true peer is, then acknowledge the outer.
  if (!target->write_frame(proxy::AcceptNotice{req->peer}.encode()).ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    (void)conn.write_frame(
        proxy::ForwardReply{false, "target vanished"}.encode());
    return;
  }
  if (!conn.write_frame(proxy::ForwardReply{true, ""}.encode()).ok()) return;
  stats_.stage_handshake_ms.observe(ms_since(accepted));
  workers_.add_session(std::move(conn), std::move(*target), &stats_,
                       options_.idle_timeout_ms);
}

// ------------------------------------------------------------ OuterDaemon

RelayAccessPolicy& RelayAccessPolicy::allow_target(std::string host,
                                                   std::uint16_t port) {
  deny_by_default_ = true;
  allowed_.push_back(Allowed{std::move(host), port});
  return *this;
}

RelayAccessPolicy& RelayAccessPolicy::deny_by_default() {
  deny_by_default_ = true;
  return *this;
}

bool RelayAccessPolicy::permits(const Contact& target) const {
  if (!deny_by_default_) return true;
  for (const Allowed& a : allowed_) {
    if (a.host == target.host && (a.port == 0 || a.port == target.port)) {
      return true;
    }
  }
  return false;
}

OuterDaemon::OuterDaemon(std::string bind_ip, std::uint16_t control_port,
                         std::string advertise_host, RelayAccessPolicy policy,
                         DaemonOptions options)
    : bind_ip_(std::move(bind_ip)),
      requested_port_(control_port),
      advertise_host_(std::move(advertise_host)),
      policy_(std::move(policy)),
      options_(options) {}

OuterDaemon::~OuterDaemon() { stop(); }

Status OuterDaemon::start() {
  WACS_CHECK_MSG(!started_, "outer daemon already started");
  auto listener = net::TcpListener::bind(bind_ip_, requested_port_);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  workers_.add_thread(std::thread([this] { accept_loop(); }));
  if (options_.bind_lease_ms > 0) {
    workers_.add_thread(std::thread([this] { lease_sweeper(); }));
  }
  kLog.info("outer daemon listening on %s:%u", bind_ip_.c_str(),
            static_cast<unsigned>(port_));
  return Status();
}

Status OuterDaemon::serve_metrics(const std::string& bind_ip,
                                  std::uint16_t port) {
  metrics_ = std::make_unique<MetricsHttpServer>(
      [this] { return render_metrics(stats_, "outer"); });
  return metrics_->start(bind_ip, port);
}

std::uint16_t OuterDaemon::metrics_port() const {
  return metrics_ ? metrics_->port() : 0;
}

void OuterDaemon::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  if (metrics_) metrics_->stop();
  listener_.shutdown();
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    for (auto& b : bindings_) b->listener.shutdown();
  }
  sweep_cv_.notify_all();
  drain_sessions(stats_, inflight_handshakes_, options_.drain_ms);
  workers_.stop_all();
}

bool OuterDaemon::over_capacity() const {
  if (options_.max_connections <= 0) return false;
  const auto open_sessions =
      stats_.sessions_opened.load(std::memory_order_relaxed) -
      stats_.sessions_closed.load(std::memory_order_relaxed);
  return inflight_handshakes_.load(std::memory_order_relaxed) +
             static_cast<std::int64_t>(open_sessions) >=
         options_.max_connections;
}

void OuterDaemon::accept_loop() {
  while (!stopping_.load()) {
    auto conn =
        supervised_accept(listener_, stopping_, stats_, options_, "outer");
    if (!conn) return;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    workers_.reap();
    if (over_capacity()) {
      auto shed = std::make_shared<net::TcpSocket>(std::move(*conn));
      workers_.add_thread(std::thread(
          [this, shed] { shed_control(std::move(*shed), stats_, options_); }));
      continue;
    }
    apply_keepalive(*conn, options_);
    inflight_handshakes_.fetch_add(1, std::memory_order_relaxed);
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*conn)));
    workers_.add_thread(std::thread([this, sock] {
      handle_control(*sock);
      workers_.untrack(sock);
      inflight_handshakes_.fetch_sub(1, std::memory_order_relaxed);
    }));
  }
}

void OuterDaemon::handle_control(net::TcpSocket& conn) {
  PROF_SCOPE("outer.control");
  const auto accepted = std::chrono::steady_clock::now();
  auto frame = [&] {
    PROF_SCOPE("outer.preamble");
    return read_control_frame(conn, options_);
  }();
  if (!frame.ok()) {
    fail_handshake(stats_, hs_kind(frame.error()));
    return;
  }
  auto type = proxy::peek_type(*frame);
  if (!type.ok()) {
    fail_handshake(stats_, HsFail::kMalformed);
    return;
  }
  switch (*type) {
    case proxy::MsgType::kConnectRequest: {
      auto req = proxy::ConnectRequest::decode(*frame);
      if (req.ok()) {
        stats_.stage_preamble_ms.observe(ms_since(accepted));
        handle_connect(conn, *req, accepted);
      } else {
        fail_handshake(stats_, HsFail::kMalformed);
      }
      return;
    }
    case proxy::MsgType::kBindRequest: {
      auto req = proxy::BindRequest::decode(*frame);
      if (req.ok()) {
        stats_.stage_preamble_ms.observe(ms_since(accepted));
        handle_bind(conn, *req, accepted);
      } else {
        fail_handshake(stats_, HsFail::kMalformed);
      }
      return;
    }
    case proxy::MsgType::kBindRenewRequest: {
      auto req = proxy::BindRenewRequest::decode(*frame);
      if (req.ok()) {
        handle_renew(conn, *req);
      } else {
        fail_handshake(stats_, HsFail::kMalformed);
      }
      return;
    }
    default:
      fail_handshake(stats_, HsFail::kMalformed);
      kLog.warn("outer: unexpected control frame type %d",
                static_cast<int>(*type));
      return;
  }
}

void OuterDaemon::handle_connect(net::TcpSocket& conn,
                                 const proxy::ConnectRequest& req,
                                 std::chrono::steady_clock::time_point t0) {
  PROF_SCOPE("outer.connect");
  if (!policy_.permits(req.target)) {
    fail_handshake(stats_, HsFail::kPolicyDenied);
    (void)conn.write_frame(
        proxy::ConnectReply{false, "target " + req.target.to_string() +
                                       " not permitted by relay policy"}
            .encode());
    return;
  }
  // Relay collapsing: a proxied client dialing a proxied peer names one of
  // our own public ports; bridge straight to the inner daemon instead of
  // dialing ourselves. Only live bindings match — a reaped or lease-expired
  // binding must not capture new connections.
  if (req.target.host == advertise_host_) {
    std::shared_ptr<PublicBinding> binding;
    const std::int64_t now = steady_now_ns();
    {
      std::lock_guard<std::mutex> lock(bindings_mu_);
      for (const auto& b : bindings_) {
        if (b->listener.port() == req.target.port && b->alive(now)) binding = b;
      }
    }
    if (binding != nullptr) {
      if (!conn.write_frame(proxy::ConnectReply{true, ""}.encode()).ok()) {
        return;
      }
      bridge_to_inner(conn, binding);
      return;
    }
  }
  auto target = dial_timed(req.target, stats_, options_);
  if (!target.ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    (void)conn.write_frame(
        proxy::ConnectReply{false, target.error().to_string()}.encode());
    return;
  }
  apply_keepalive(*target, options_);
  if (!conn.write_frame(proxy::ConnectReply{true, ""}.encode()).ok()) return;
  stats_.stage_handshake_ms.observe(ms_since(t0));
  workers_.add_session(std::move(conn), std::move(*target), &stats_,
                       options_.idle_timeout_ms);
}

void OuterDaemon::handle_bind(net::TcpSocket& conn,
                              const proxy::BindRequest& req,
                              std::chrono::steady_clock::time_point t0) {
  PROF_SCOPE("outer.bind");
  auto listener = net::TcpListener::bind(bind_ip_, 0);
  if (!listener.ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    (void)conn.write_frame(
        proxy::BindReply{false, Contact{}, 0, listener.error().to_string()}
            .encode());
    return;
  }
  auto binding = std::make_shared<PublicBinding>();
  binding->id = next_bind_id_.fetch_add(1);
  binding->target = req.local;
  binding->inner = req.inner;
  binding->listener = std::move(*listener);
  std::uint32_t lease_ms = 0;
  if (options_.bind_lease_ms > 0) {
    lease_ms = static_cast<std::uint32_t>(options_.bind_lease_ms);
    binding->lease_deadline_ns.store(
        steady_now_ns() +
            static_cast<std::int64_t>(options_.bind_lease_ms) * 1'000'000,
        std::memory_order_relaxed);
    stats_.leases_granted.fetch_add(1, std::memory_order_relaxed);
  }
  const Contact public_contact{advertise_host_, binding->listener.port()};
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    bindings_.push_back(binding);
  }
  ++active_binds_;
  workers_.add_thread(
      std::thread([this, binding] { public_accept_loop(binding); }));
  stats_.stage_handshake_ms.observe(ms_since(t0));
  (void)conn.write_frame(
      proxy::BindReply{true, public_contact, binding->id, "", lease_ms}
          .encode());
  // Bind registration is one-shot; the control connection closes here.
}

void OuterDaemon::handle_renew(net::TcpSocket& conn,
                               const proxy::BindRenewRequest& req) {
  PROF_SCOPE("outer.renew");
  std::shared_ptr<PublicBinding> binding;
  const std::int64_t now = steady_now_ns();
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    for (const auto& b : bindings_) {
      if (b->id == req.bind_id && b->alive(now)) binding = b;
    }
  }
  if (binding == nullptr) {
    // Not a handshake failure: the control exchange itself worked; the
    // client simply renewed a lease that already lapsed (or never existed).
    (void)conn.write_frame(
        proxy::BindRenewReply{false, 0, "unknown or expired bind id"}
            .encode());
    return;
  }
  if (options_.bind_lease_ms > 0) {
    binding->lease_deadline_ns.store(
        now + static_cast<std::int64_t>(options_.bind_lease_ms) * 1'000'000,
        std::memory_order_relaxed);
  }
  stats_.leases_renewed.fetch_add(1, std::memory_order_relaxed);
  (void)conn.write_frame(
      proxy::BindRenewReply{
          true,
          static_cast<std::uint32_t>(std::max(options_.bind_lease_ms, 0)), ""}
          .encode());
}

void OuterDaemon::retire_binding(const std::shared_ptr<PublicBinding>& binding) {
  if (binding->retired.exchange(true)) return;
  binding->listener.shutdown();
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    std::erase(bindings_, binding);
  }
  --active_binds_;
}

void OuterDaemon::lease_sweeper() {
  // Wake often enough that a lease is reaped within ~a quarter of its
  // duration after expiry; the cv cuts the shutdown latency.
  const auto period = std::chrono::milliseconds(
      std::clamp(options_.bind_lease_ms / 4, 5, 250));
  std::unique_lock<std::mutex> lock(sweep_mu_);
  while (!stopping_.load()) {
    sweep_cv_.wait_for(lock, period);
    if (stopping_.load()) return;
    const std::int64_t now = steady_now_ns();
    std::vector<std::shared_ptr<PublicBinding>> expired;
    {
      std::lock_guard<std::mutex> blk(bindings_mu_);
      for (const auto& b : bindings_) {
        const std::int64_t deadline =
            b->lease_deadline_ns.load(std::memory_order_relaxed);
        if (deadline != 0 && now >= deadline &&
            !b->retired.load(std::memory_order_relaxed)) {
          expired.push_back(b);
        }
      }
    }
    for (const auto& b : expired) {
      stats_.leases_expired.fetch_add(1, std::memory_order_relaxed);
      kLog.info("outer: lease expired for bind id=%llu (public port %u)",
                static_cast<unsigned long long>(b->id),
                static_cast<unsigned>(b->listener.port()));
      // Closing the listener pops its accept loop, which retires the
      // binding — one teardown path for expiry, listener death, and stop.
      b->listener.shutdown();
    }
  }
}

void OuterDaemon::public_accept_loop(std::shared_ptr<PublicBinding> binding) {
  while (!stopping_.load()) {
    auto remote = supervised_accept(binding->listener, stopping_, stats_,
                                    options_, "outer[public]");
    if (!remote) break;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    workers_.reap();
    if (over_capacity()) {
      // Public-port peers speak raw bytes, not the proxy protocol; there is
      // no Busy frame they could parse, so shedding is a plain close.
      stats_.shed_connections.fetch_add(1, std::memory_order_relaxed);
      remote->shutdown();
      continue;
    }
    apply_keepalive(*remote, options_);
    inflight_handshakes_.fetch_add(1, std::memory_order_relaxed);
    auto sock =
        workers_.track(std::make_shared<net::TcpSocket>(std::move(*remote)));
    workers_.add_thread(std::thread([this, sock, binding] {
      bridge_to_inner(*sock, binding);
      workers_.untrack(sock);
      inflight_handshakes_.fetch_sub(1, std::memory_order_relaxed);
    }));
  }
  retire_binding(binding);
}

void OuterDaemon::bridge_to_inner(net::TcpSocket& remote,
                                  std::shared_ptr<PublicBinding> binding) {
  PROF_SCOPE("outer.bridge");
  const auto t0 = std::chrono::steady_clock::now();
  auto inner = dial_timed(binding->inner, stats_, options_);
  if (!inner.ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    kLog.warn("outer: cannot reach inner %s: %s",
              binding->inner.to_string().c_str(),
              inner.error().to_string().c_str());
    return;
  }
  apply_keepalive(*inner, options_);
  Contact peer = remote.peer().value_or(Contact{"unknown", 0});
  proxy::ForwardRequest req{binding->target, peer};
  if (!inner->write_frame(req.encode()).ok()) {
    fail_handshake(stats_, HsFail::kDialFailed);
    return;
  }
  auto reply_frame = read_control_frame(*inner, options_);
  if (!reply_frame.ok()) {
    fail_handshake(stats_, hs_kind(reply_frame.error()));
    return;
  }
  if (auto type = proxy::peek_type(*reply_frame);
      type.ok() && *type == proxy::MsgType::kBusy) {
    // The inner daemon's admission gate shed us: upstream overload.
    fail_handshake(stats_, HsFail::kDialFailed);
    return;
  }
  auto reply = proxy::ForwardReply::decode(*reply_frame);
  if (!reply.ok() || !reply->ok) {
    fail_handshake(stats_, HsFail::kDialFailed);
    return;
  }
  stats_.stage_handshake_ms.observe(ms_since(t0));
  workers_.add_session(std::move(remote), std::move(*inner), &stats_,
                       options_.idle_timeout_ms);
}

}  // namespace wacs::nxproxy
