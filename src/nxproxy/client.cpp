#include "nxproxy/client.hpp"

#include <chrono>
#include <thread>

#include "common/bytes.hpp"

namespace wacs::nxproxy {
namespace {

/// Binds retry_call to the wall clock: backoff sleeps block the calling
/// thread, the deadline runs on steady_clock. The jitter seed mixes the
/// target address so concurrent clients decorrelate.
template <typename Op>
auto retry_on_wall_clock(const RetryPolicy& policy, const Contact& target,
                         Op&& op) -> decltype(op()) {
  using Clock = std::chrono::steady_clock;
  const auto epoch = Clock::now();
  return retry_call(
      policy, fnv1a(to_bytes(target.to_string())), std::forward<Op>(op),
      [](std::int64_t delay_ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
      },
      [epoch]() -> std::int64_t {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - epoch)
            .count();
      });
}

}  // namespace

Result<net::TcpSocket> NXProxyConnect(const Contact& outer,
                                      const Contact& target,
                                      const ClientOptions& options) {
  return retry_on_wall_clock(
      options.retry, target, [&]() -> Result<net::TcpSocket> {
        auto conn = net::TcpSocket::dial_timeout(outer,
                                                 options.connect_timeout_ms);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        if (auto s = conn->write_frame(proxy::ConnectRequest{target}.encode());
            !s.ok()) {
          return s.error();
        }
        auto frame = conn->read_frame_timeout(options.reply_timeout_ms);
        if (!frame.ok()) return frame.error();
        auto reply = proxy::ConnectReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          return Error(ErrorCode::kConnectionRefused,
                       "outer server: " + reply->error);
        }
        return std::move(*conn);
      });
}

Result<BoundPort> NXProxyBind(const Contact& outer, const Contact& inner,
                              const std::string& local_ip,
                              const ClientOptions& options) {
  auto listener = net::TcpListener::bind(local_ip, 0);
  if (!listener.ok()) return listener.error();
  const Contact local{local_ip, listener->port()};

  auto registration = retry_on_wall_clock(
      options.retry, outer, [&]() -> Result<proxy::BindReply> {
        auto conn = net::TcpSocket::dial_timeout(outer,
                                                 options.connect_timeout_ms);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        proxy::BindRequest req{local, inner};
        if (auto s = conn->write_frame(req.encode()); !s.ok()) {
          return s.error();
        }
        auto frame = conn->read_frame_timeout(options.reply_timeout_ms);
        if (!frame.ok()) return frame.error();
        auto reply = proxy::BindReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          return Error(ErrorCode::kUnavailable, "outer server: " + reply->error);
        }
        return *reply;
      });
  if (!registration.ok()) return registration.error();
  return BoundPort{std::move(*listener), registration->public_contact,
                   registration->bind_id, options.reply_timeout_ms};
}

Result<std::pair<net::TcpSocket, Contact>> NXProxyAccept(BoundPort& bound) {
  auto conn = bound.listener.accept();
  if (!conn.ok()) return conn.error();
  auto frame = conn->read_frame_timeout(bound.reply_timeout_ms);
  if (!frame.ok()) return frame.error();
  auto notice = proxy::AcceptNotice::decode(*frame);
  if (!notice.ok()) return notice.error();
  return std::make_pair(std::move(*conn), notice->peer);
}

}  // namespace wacs::nxproxy
