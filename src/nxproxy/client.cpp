#include "nxproxy/client.hpp"

namespace wacs::nxproxy {

Result<net::TcpSocket> NXProxyConnect(const Contact& outer,
                                      const Contact& target) {
  auto conn = net::TcpSocket::dial(outer);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "cannot reach outer server: " + conn.error().message());
  }
  if (auto s = conn->write_frame(proxy::ConnectRequest{target}.encode());
      !s.ok()) {
    return s.error();
  }
  auto frame = conn->read_frame();
  if (!frame.ok()) return frame.error();
  auto reply = proxy::ConnectReply::decode(*frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) {
    return Error(ErrorCode::kConnectionRefused,
                 "outer server: " + reply->error);
  }
  return std::move(*conn);
}

Result<BoundPort> NXProxyBind(const Contact& outer, const Contact& inner,
                              const std::string& local_ip) {
  auto listener = net::TcpListener::bind(local_ip, 0);
  if (!listener.ok()) return listener.error();

  auto conn = net::TcpSocket::dial(outer);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "cannot reach outer server: " + conn.error().message());
  }
  proxy::BindRequest req{Contact{local_ip, listener->port()}, inner};
  if (auto s = conn->write_frame(req.encode()); !s.ok()) return s.error();
  auto frame = conn->read_frame();
  if (!frame.ok()) return frame.error();
  auto reply = proxy::BindReply::decode(*frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) {
    return Error(ErrorCode::kUnavailable, "outer server: " + reply->error);
  }
  return BoundPort{std::move(*listener), reply->public_contact,
                   reply->bind_id};
}

Result<std::pair<net::TcpSocket, Contact>> NXProxyAccept(BoundPort& bound) {
  auto conn = bound.listener.accept();
  if (!conn.ok()) return conn.error();
  auto frame = conn->read_frame();
  if (!frame.ok()) return frame.error();
  auto notice = proxy::AcceptNotice::decode(*frame);
  if (!notice.ok()) return notice.error();
  return std::make_pair(std::move(*conn), notice->peer);
}

}  // namespace wacs::nxproxy
