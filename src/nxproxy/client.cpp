#include "nxproxy/client.hpp"

#include <chrono>
#include <optional>
#include <thread>

#include "common/bytes.hpp"

namespace wacs::nxproxy {
namespace {

/// Binds retry_call to the wall clock: backoff sleeps block the calling
/// thread, the deadline runs on steady_clock. The jitter seed mixes the
/// target address so concurrent clients decorrelate.
template <typename Op>
auto retry_on_wall_clock(const RetryPolicy& policy, const Contact& target,
                         Op&& op) -> decltype(op()) {
  using Clock = std::chrono::steady_clock;
  const auto epoch = Clock::now();
  return retry_call(
      policy, fnv1a(to_bytes(target.to_string())), std::forward<Op>(op),
      [](std::int64_t delay_ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
      },
      [epoch]() -> std::int64_t {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - epoch)
            .count();
      });
}

/// A daemon at capacity replies Busy instead of the expected frame. Map it
/// to kUnavailable — retryable under RetryPolicy, so a shed client backs
/// off and tries again instead of failing hard.
std::optional<Error> busy_to_error(const Bytes& frame) {
  auto type = proxy::peek_type(frame);
  if (!type.ok() || *type != proxy::MsgType::kBusy) return std::nullopt;
  auto busy = proxy::Busy::decode(frame);
  const std::uint32_t after = busy.ok() ? busy->retry_after_ms : 0;
  return Error(ErrorCode::kUnavailable,
               "outer server busy (retry_after_ms=" + std::to_string(after) +
                   ")");
}

}  // namespace

Result<net::TcpSocket> NXProxyConnect(const Contact& outer,
                                      const Contact& target,
                                      const ClientOptions& options) {
  return retry_on_wall_clock(
      options.retry, target, [&]() -> Result<net::TcpSocket> {
        auto conn = net::TcpSocket::dial_timeout(outer,
                                                 options.connect_timeout_ms);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        if (auto s = conn->write_frame(proxy::ConnectRequest{target}.encode());
            !s.ok()) {
          return s.error();
        }
        auto frame = conn->read_frame_timeout(options.reply_timeout_ms,
                                              proxy::kMaxControlFrameBytes);
        if (!frame.ok()) return frame.error();
        if (auto busy = busy_to_error(*frame)) return *busy;
        auto reply = proxy::ConnectReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          return Error(ErrorCode::kConnectionRefused,
                       "outer server: " + reply->error);
        }
        return std::move(*conn);
      });
}

Result<BoundPort> NXProxyBind(const Contact& outer, const Contact& inner,
                              const std::string& local_ip,
                              const ClientOptions& options) {
  auto listener = net::TcpListener::bind(local_ip, 0);
  if (!listener.ok()) return listener.error();
  const Contact local{local_ip, listener->port()};

  auto registration = retry_on_wall_clock(
      options.retry, outer, [&]() -> Result<proxy::BindReply> {
        auto conn = net::TcpSocket::dial_timeout(outer,
                                                 options.connect_timeout_ms);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        proxy::BindRequest req{local, inner};
        if (auto s = conn->write_frame(req.encode()); !s.ok()) {
          return s.error();
        }
        auto frame = conn->read_frame_timeout(options.reply_timeout_ms,
                                              proxy::kMaxControlFrameBytes);
        if (!frame.ok()) return frame.error();
        if (auto busy = busy_to_error(*frame)) return *busy;
        auto reply = proxy::BindReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          return Error(ErrorCode::kUnavailable, "outer server: " + reply->error);
        }
        return *reply;
      });
  if (!registration.ok()) return registration.error();
  return BoundPort{std::move(*listener), registration->public_contact,
                   registration->bind_id, options.reply_timeout_ms,
                   registration->lease_ms};
}

Result<std::pair<net::TcpSocket, Contact>> NXProxyAccept(BoundPort& bound) {
  auto conn = bound.listener.accept();
  if (!conn.ok()) return conn.error();
  auto frame = conn->read_frame_timeout(bound.reply_timeout_ms,
                                        proxy::kMaxControlFrameBytes);
  if (!frame.ok()) return frame.error();
  auto notice = proxy::AcceptNotice::decode(*frame);
  if (!notice.ok()) return notice.error();
  return std::make_pair(std::move(*conn), notice->peer);
}

Result<std::uint32_t> NXProxyRenewBind(const Contact& outer,
                                       std::uint64_t bind_id,
                                       const ClientOptions& options) {
  return retry_on_wall_clock(
      options.retry, outer, [&]() -> Result<std::uint32_t> {
        auto conn = net::TcpSocket::dial_timeout(outer,
                                                 options.connect_timeout_ms);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        proxy::BindRenewRequest req{bind_id};
        if (auto s = conn->write_frame(req.encode()); !s.ok()) {
          return s.error();
        }
        auto frame = conn->read_frame_timeout(options.reply_timeout_ms,
                                              proxy::kMaxControlFrameBytes);
        if (!frame.ok()) return frame.error();
        if (auto busy = busy_to_error(*frame)) return *busy;
        auto reply = proxy::BindRenewReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          // Permanent: a lapsed lease will not come back on retry.
          return Error(ErrorCode::kNotFound, "outer server: " + reply->error);
        }
        return reply->lease_ms;
      });
}

}  // namespace wacs::nxproxy
