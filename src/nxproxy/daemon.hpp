// Real-socket Nexus Proxy daemons.
//
// These are genuine TCP relay daemons speaking the proxy wire protocol
// (src/proxy/protocol.hpp) over length-prefixed frames for the control
// handshake, then splicing raw bytes. They run today on localhost or a real
// network — this is the paper's engineering artifact, not a simulation.
//
// Deployment mirrors the paper: the outer daemon binds outside the firewall
// (in 2000: a privileged port, root-only, which is the security argument of
// §1); the inner daemon binds the single "nxport" the firewall opens for
// outer → inner traffic; clients use the NXProxy* functions in client.hpp.
//
// Because the outer daemon lives on the hostile side of the firewall, both
// daemons assume half-dead and malicious peers (DESIGN.md §16): every
// control handshake runs under a deadline, spliced sessions carry an idle
// deadline and TCP keepalive, an admission gate sheds excess connections
// with an explicit Busy reply, accept loops retry transient errnos instead
// of dying, and public bindings are leases that expire unless renewed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.hpp"
#include "proxy/protocol.hpp"
#include "sockets/socket.hpp"

namespace wacs::nxproxy {

class MetricsHttpServer;

/// Supervision knobs shared by both daemons. Defaults keep the relay usable
/// on a friendly LAN while still bounding every hostile behaviour; tests and
/// the chaos bench tighten them to sub-second values.
struct DaemonOptions {
  /// Budget for the whole control handshake (accept → control frame read →
  /// decoded → reply). A slowloris dribbling one header byte per minute is
  /// evicted when this runs out. <=0 disables the deadline (pre-hardening
  /// behaviour; not recommended outside unit tests).
  int handshake_timeout_ms = 10'000;
  /// Per-address bound on outbound dials (target, inner). <=0 = blocking
  /// connect.
  int dial_timeout_ms = 5'000;
  /// Idle deadline on a spliced session: if *neither* direction moves a
  /// byte for this long, the session is evicted — the half-open/parked-peer
  /// defence. 0 = sessions may idle forever.
  int idle_timeout_ms = 0;
  /// Admission gate: at most this many connections in flight (control
  /// handshakes + live sessions). Excess control connections receive a
  /// Busy frame and are closed; excess public-port connections are closed
  /// outright (those peers speak raw bytes, not the proxy protocol).
  int max_connections = 512;
  /// Suggested client backoff carried in the Busy frame.
  int busy_retry_after_ms = 100;
  /// Lease on public bindings: a binding not renewed within this window is
  /// reaped — listener closed, accept loop retired, active_binds
  /// decremented. 0 = bindings live until the daemon stops (the paper's
  /// behaviour, and the leak the lease closes).
  int bind_lease_ms = 0;
  /// TCP keepalive on relay sockets so half-open peers surface as read
  /// errors instead of silent stalls.
  bool tcp_keepalive = true;
  int keepalive_idle_s = 60;
  int keepalive_interval_s = 10;
  int keepalive_count = 3;
  /// Cap on the exponential backoff between retries of transient accept
  /// failures (EMFILE, ECONNABORTED, ENOBUFS, ...).
  int accept_retry_max_backoff_ms = 1'000;
  /// stop(): after closing the listeners, keep pumping in-flight sessions
  /// for up to this long before tearing them down (graceful drain).
  /// 0 = immediate teardown.
  int drain_ms = 0;
};

/// Handshake failure classes: /metrics must be able to tell an attack
/// (malformed, timeout) from an outage (dial failed) from a misconfigured
/// peer (policy denied).
enum class HsFail { kPolicyDenied, kMalformed, kDialFailed, kTimeout };

/// Counters shared by all threads of one daemon. The histograms use the
/// exponential µs→s ladder: a loopback splice and a proxied WAN round trip
/// differ by five orders of magnitude. All values are host wall-clock —
/// these daemons are the real engineering artifact, not the simulation.
struct DaemonStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> bytes_relayed{0};
  /// Total failed handshakes; always equals the sum of the four hs_*
  /// breakdown counters below.
  std::atomic<std::uint64_t> handshake_failures{0};
  std::atomic<std::uint64_t> hs_policy_denied{0};
  std::atomic<std::uint64_t> hs_malformed{0};
  std::atomic<std::uint64_t> hs_dial_failed{0};
  std::atomic<std::uint64_t> hs_timeout{0};
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  /// Connections refused by the admission gate (Busy reply or plain close).
  std::atomic<std::uint64_t> shed_connections{0};
  /// Transient accept() failures survived by retry-with-backoff.
  std::atomic<std::uint64_t> accept_retries{0};
  /// Sessions evicted by the idle deadline (half-open peers).
  std::atomic<std::uint64_t> idle_evictions{0};
  std::atomic<std::uint64_t> leases_granted{0};
  std::atomic<std::uint64_t> leases_renewed{0};
  std::atomic<std::uint64_t> leases_expired{0};
  /// Latency of outbound dials (target, inner) that succeeded.
  telemetry::Histogram connect_ms{telemetry::exponential_ms_buckets()};
  /// Lifetime of a splice session, open to both-pumps-done.
  telemetry::Histogram relay_session_ms{telemetry::exponential_ms_buckets()};
  /// Stage times of the per-connection pipeline (accept→…): preamble is
  /// accept to control-frame-decoded, handshake is accept to spliced
  /// session started. Dial time is connect_ms; pump time is the session
  /// lifetime. Together they attribute where a relayed connection spends
  /// its milliseconds before bytes flow.
  telemetry::Histogram stage_preamble_ms{telemetry::exponential_ms_buckets()};
  telemetry::Histogram stage_handshake_ms{telemetry::exponential_ms_buckets()};
};

/// Counts a failed handshake in the total and its class breakdown.
void fail_handshake(DaemonStats& stats, HsFail kind);

namespace detail {

/// A bidirectional splice between two established sockets. Owns the sockets
/// and its two pump threads. With an idle deadline, a session where neither
/// direction moves a byte for `idle_timeout_ms` is evicted.
class Session {
 public:
  Session(net::TcpSocket a, net::TcpSocket b, DaemonStats* stats,
          int idle_timeout_ms = 0);
  ~Session();

  void start();
  /// Unblocks both pumps (threads then exit on their own).
  void shutdown();
  bool finished() const { return done_.load() == 2; }
  void join();

 private:
  void pump(net::TcpSocket& from, net::TcpSocket& to);

  net::TcpSocket a_;
  net::TcpSocket b_;
  DaemonStats* stats_;
  int idle_timeout_ms_;
  std::thread up_;
  std::thread down_;
  std::atomic<int> done_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::int64_t> last_activity_ns_{0};
  std::atomic<bool> idle_evicted_{false};
  std::chrono::steady_clock::time_point opened_;
};

/// Threads + sessions owned by a daemon; provides orderly teardown.
class Workers {
 public:
  ~Workers() { stop_all(); }

  void add_thread(std::thread t);
  detail::Session& add_session(net::TcpSocket a, net::TcpSocket b,
                               DaemonStats* stats, int idle_timeout_ms = 0);

  /// Registers a socket that a handshake thread may block on; stop_all()
  /// shuts tracked sockets down so those threads become joinable. If the
  /// daemon is already stopping, the socket is shut down immediately.
  std::shared_ptr<net::TcpSocket> track(std::shared_ptr<net::TcpSocket> s);
  void untrack(const std::shared_ptr<net::TcpSocket>& s);

  /// Shuts down all sessions and tracked sockets, joins every thread.
  /// Idempotent.
  void stop_all();
  /// Drops finished sessions (called opportunistically).
  void reap();

 private:
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<net::TcpSocket>> tracked_;
  bool stopped_ = false;
};

}  // namespace detail

/// The inner server: runs inside the firewall, listens on nxport.
class InnerDaemon {
 public:
  /// `bind_ip` is the interface to listen on; port 0 picks an ephemeral
  /// nxport (tests). The firewall must allow outer → bind_ip:port.
  InnerDaemon(std::string bind_ip, std::uint16_t nxport,
              DaemonOptions options = DaemonOptions());
  ~InnerDaemon();

  Status start();
  void stop();

  /// Starts the loopback-side /metrics admin endpoint (text exposition of
  /// stats()). Port 0 picks an ephemeral port; read it back with
  /// metrics_port(). Bind this to 127.0.0.1 — it is an admin interface,
  /// not part of the firewall-audited relay surface.
  Status serve_metrics(const std::string& bind_ip, std::uint16_t port);
  std::uint16_t metrics_port() const;

  Contact contact() const { return Contact{bind_ip_, port_}; }
  const DaemonStats& stats() const { return stats_; }
  const DaemonOptions& options() const { return options_; }

 private:
  void accept_loop();
  void handle(net::TcpSocket& conn);
  bool over_capacity() const;

  std::string bind_ip_;
  std::uint16_t requested_port_;
  std::uint16_t port_ = 0;
  DaemonOptions options_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_handshakes_{0};
  detail::Workers workers_;
  DaemonStats stats_;
  std::unique_ptr<MetricsHttpServer> metrics_;
  bool started_ = false;
};

/// Which targets an outer daemon will relay to. Without a policy the relay
/// would be an open proxy: anyone who can reach the control port could use
/// it to dial arbitrary hosts "from" the proxy machine. The paper's
/// deployment relied on binding to a privileged port for trust; a modern
/// relay needs an explicit allow-list.
class RelayAccessPolicy {
 public:
  /// Default: allow everything (the paper's behaviour; fine for tests).
  RelayAccessPolicy() = default;

  /// Restricts CONNECT targets to the given host names/IPs (exact match).
  /// An empty port range entry means any port on that host.
  RelayAccessPolicy& allow_target(std::string host, std::uint16_t port = 0);
  /// Switches to deny-by-default (call before allow_target).
  RelayAccessPolicy& deny_by_default();

  bool permits(const Contact& target) const;

 private:
  struct Allowed {
    std::string host;
    std::uint16_t port;  // 0 = any
  };
  bool deny_by_default_ = false;
  std::vector<Allowed> allowed_;
};

/// The outer server: runs outside the firewall (DMZ).
class OuterDaemon {
 public:
  /// `advertise_host` is what BindReply tells remote peers to dial (the
  /// outer host's public name); for localhost tests it equals bind_ip.
  OuterDaemon(std::string bind_ip, std::uint16_t control_port,
              std::string advertise_host,
              RelayAccessPolicy policy = RelayAccessPolicy(),
              DaemonOptions options = DaemonOptions());
  ~OuterDaemon();

  Status start();
  void stop();

  /// Loopback-side /metrics admin endpoint; see InnerDaemon::serve_metrics.
  Status serve_metrics(const std::string& bind_ip, std::uint16_t port);
  std::uint16_t metrics_port() const;

  Contact contact() const { return Contact{advertise_host_, port_}; }
  const DaemonStats& stats() const { return stats_; }
  const DaemonOptions& options() const { return options_; }
  std::uint64_t active_binds() const { return active_binds_.load(); }

 private:
  struct PublicBinding {
    std::uint64_t id = 0;
    Contact target;  ///< the registered private endpoint
    Contact inner;   ///< inner daemon that can reach it
    net::TcpListener listener;
    /// Lease expiry as steady-clock nanoseconds; 0 = no lease.
    std::atomic<std::int64_t> lease_deadline_ns{0};
    /// Set exactly once when the binding leaves bindings_ (lease expiry,
    /// listener death, or daemon stop).
    std::atomic<bool> retired{false};

    bool alive(std::int64_t now_ns) const {
      if (retired.load(std::memory_order_relaxed)) return false;
      const std::int64_t deadline =
          lease_deadline_ns.load(std::memory_order_relaxed);
      return deadline == 0 || now_ns < deadline;
    }
  };

  void accept_loop();
  void handle_control(net::TcpSocket& conn);
  /// `t0` is the control connection's accept time, so the handlers can
  /// observe the accept→established handshake stage.
  void handle_connect(net::TcpSocket& conn, const proxy::ConnectRequest& req,
                      std::chrono::steady_clock::time_point t0);
  void handle_bind(net::TcpSocket& conn, const proxy::BindRequest& req,
                   std::chrono::steady_clock::time_point t0);
  void handle_renew(net::TcpSocket& conn,
                    const proxy::BindRenewRequest& req);
  void public_accept_loop(std::shared_ptr<PublicBinding> binding);
  void bridge_to_inner(net::TcpSocket& remote,
                       std::shared_ptr<PublicBinding> binding);
  /// Removes the binding from bindings_ and releases its active_binds_
  /// slot; idempotent (first caller wins).
  void retire_binding(const std::shared_ptr<PublicBinding>& binding);
  /// Background reaper: shuts down the listeners of expired leases so
  /// their accept loops retire them.
  void lease_sweeper();
  bool over_capacity() const;

  std::string bind_ip_;
  std::uint16_t requested_port_;
  std::uint16_t port_ = 0;
  std::string advertise_host_;
  RelayAccessPolicy policy_;
  DaemonOptions options_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_handshakes_{0};
  detail::Workers workers_;
  DaemonStats stats_;
  std::atomic<std::uint64_t> next_bind_id_{1};
  std::atomic<std::uint64_t> active_binds_{0};
  std::mutex bindings_mu_;
  std::vector<std::shared_ptr<PublicBinding>> bindings_;
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  std::unique_ptr<MetricsHttpServer> metrics_;
  bool started_ = false;
};

}  // namespace wacs::nxproxy
