// Critical-path extraction over a parsed trace (DESIGN.md §11).
//
// The walker starts at the end of a terminal span and walks virtual time
// backwards: on each track it finds the latest message arrival that could
// have enabled the work under the cursor, attributes the local interval to
// the spans covering it, jumps through the flow arrow to the sender's track,
// and repeats until it reaches t = 0. The resulting segments PARTITION
// [0, makespan] — every nanosecond of the end-to-end run is attributed to
// exactly one category — so the per-category breakdown sums to the run's
// virtual makespan by construction.
#pragma once

#include <array>
#include <map>
#include <string>

#include "analysis/trace.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace wacs::analysis {

/// Where a nanosecond of the critical path went.
enum class Category {
  kCompute,  ///< application work (knapsack search, gap on a rank track)
  kLanLink,  ///< LAN / loopback hop: queueing + serialization + latency
  kWanLink,  ///< WAN hop: queueing + serialization + latency
  kRelay,    ///< proxy relay pump handling (crossing the firewall)
  kQueue,    ///< waiting: inbox residence, MPI demux, gap on a non-rank track
  kSetup,    ///< connection establishment, RMF / MDS job management
  kStaging,  ///< GASS file staging: transfers, cache pulls, stripe streams
  kRecovery,  ///< crash recovery: journal replay, re-rendezvous, reclaim
};

inline constexpr std::array<Category, 8> kAllCategories = {
    Category::kCompute, Category::kLanLink, Category::kWanLink,
    Category::kRelay,   Category::kQueue,   Category::kSetup,
    Category::kStaging, Category::kRecovery};

/// Stable short name: "compute" / "lan" / "wan" / "relay" / "queueing" /
/// "setup" / "staging" / "recovery".
const char* category_name(Category cat);

/// One attributed interval of the critical path.
struct PathSegment {
  TimeNs begin = 0;
  TimeNs end = 0;
  Category cat = Category::kQueue;
  std::string track;  ///< track the interval was spent on (link name for hops)
  std::string what;   ///< span name, link name, or "idle"

  TimeNs dur() const { return end - begin; }
};

struct CriticalPath {
  TimeNs end = 0;  ///< terminal span end == virtual makespan analysed
  std::string terminal_track;
  std::string terminal_name;
  std::size_t hops = 0;  ///< flow arrows traversed
  /// Ascending, contiguous, covering [0, end].
  std::vector<PathSegment> segments;
  /// Total ns per category; sums to `end`.
  std::map<Category, TimeNs> by_category;

  /// Deterministic JSON report (categories in fixed order, segments listed).
  json::Value to_json() const;
  /// Human-readable breakdown table plus the dominant segments.
  std::string render(std::size_t max_segments = 20) const;
};

struct CriticalPathOptions {
  /// When non-empty, the terminal span is the latest-ending span with this
  /// name; otherwise the latest-ending span in the trace.
  std::string terminal;
  /// When nonzero, only spans of this trace id are considered terminal.
  std::uint64_t trace_id = 0;
};

/// Extracts the critical path. Errors when the trace has no spans (or none
/// matching the options).
Result<CriticalPath> critical_path(const Trace& trace,
                                   const CriticalPathOptions& options = {});

}  // namespace wacs::analysis
