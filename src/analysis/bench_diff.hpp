// Field-by-field comparison of two BENCH_*.json reports (DESIGN.md §11).
//
// Tolerance policy: virtual-time metrics are deterministic under the same
// seed, so integers always compare exactly and doubles compare exactly by
// default. Wall-clock metrics (and anything else environment-dependent) get
// per-field relative tolerances keyed by dotted-path suffix. The "git"
// stamp is ignored by default (baselines are committed from an earlier
// commit than the run that checks against them), as is the "advisory"
// object (host wall-clock and peak RSS vary run to run); "schema_version"
// compares exactly like any other integer.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace wacs::analysis {

struct DiffOptions {
  /// Relative tolerance per dotted-path suffix ("wall_ms" matches
  /// "timing.wall_ms"). A double field matching a suffix passes when
  /// |a - e| <= tol * max(|e|, |a|). First matching suffix wins.
  std::vector<std::pair<std::string, double>> ratio_tol;
  /// Path suffixes excluded from comparison entirely.
  std::vector<std::string> ignore = {"git", "advisory"};
  /// Keys present in the current report but not the baseline: warn (true)
  /// or fail (false).
  bool allow_new_keys = true;
};

struct FieldDiff {
  enum class Verdict {
    kOk,       ///< within tolerance (recorded only when a tolerance applied)
    kChanged,  ///< value regression
    kMissing,  ///< baseline key absent from current report
    kAdded,    ///< current key absent from baseline
  };
  std::string path;
  std::string expected;  ///< baseline value, JSON-rendered ("" when kAdded)
  std::string actual;    ///< current value, JSON-rendered ("" when kMissing)
  double rel = 0;        ///< relative delta for numeric fields
  Verdict verdict = Verdict::kOk;
};

struct DiffResult {
  std::vector<FieldDiff> diffs;  ///< notable fields, baseline order
  std::size_t compared = 0;      ///< leaf fields compared
  bool ok = true;

  bool pass() const { return ok; }
  /// Markdown verdict table plus a one-line summary.
  std::string markdown(const std::string& title = "") const;
};

DiffResult diff_reports(const json::Value& baseline, const json::Value& current,
                        const DiffOptions& options = {});

}  // namespace wacs::analysis
