#include "analysis/timeline.hpp"

#include <algorithm>

namespace wacs::analysis {
namespace {

bool is_rank_track(const std::string& track) {
  return track.find(".rank") != std::string::npos &&
         track.find("mpi.rd") == std::string::npos;
}

/// Adds `dur` of an interval [lo, hi) to buckets, split proportionally.
template <typename Cells, typename Add>
void spread(Cells& cells, TimeNs bucket_ns, TimeNs lo, TimeNs hi, Add add) {
  if (hi <= lo || bucket_ns <= 0) return;
  const auto last = static_cast<std::size_t>(cells.size());
  for (auto i = static_cast<std::size_t>(lo / bucket_ns); i < last; ++i) {
    const TimeNs a = std::max<TimeNs>(lo, static_cast<TimeNs>(i) * bucket_ns);
    const TimeNs b =
        std::min<TimeNs>(hi, static_cast<TimeNs>(i + 1) * bucket_ns);
    if (b <= a) break;
    add(cells[i], b - a);
  }
}

const char* util_glyphs() { return " .:-=+*oO#"; }

char fraction_glyph(double frac) {
  const char* glyphs = util_glyphs();
  int level = static_cast<int>(frac * 9.0 + 0.5);
  level = std::clamp(level, 0, 9);
  return glyphs[level];
}

}  // namespace

Timeline build_timeline(const Trace& trace, const TimelineOptions& options) {
  Timeline tl;
  tl.end = trace.end_ts;
  const int buckets = std::max(1, options.buckets);
  tl.bucket_ns = tl.end > 0 ? (tl.end + buckets - 1) / buckets : 1;

  // ---- rank rows -------------------------------------------------------
  for (const auto& [track, idx] : trace.spans_by_track) {
    if (!is_rank_track(track)) continue;
    auto& row = tl.ranks[track];
    row.assign(static_cast<std::size_t>(buckets), Timeline::RankBucket{});

    // Activity window: first span start to last span end on this track.
    TimeNs first = tl.end;
    TimeNs last = 0;
    for (std::size_t i : idx) {
      first = std::min(first, trace.spans[i].ts);
      last = std::max(last, trace.spans[i].end());
    }
    if (last <= first) continue;

    // Steal and connection-setup coverage; everything else inside the
    // window counts as compute, everything outside as idle.
    for (std::size_t i : idx) {
      const SpanEv& s = trace.spans[i];
      if (s.name == "knapsack.steal") {
        spread(row, tl.bucket_ns, s.ts, s.end(),
               [](Timeline::RankBucket& c, TimeNs d) { c.steal += d; });
      } else if (s.name == "tcp.connect") {
        spread(row, tl.bucket_ns, s.ts, s.end(),
               [](Timeline::RankBucket& c, TimeNs d) { c.comm += d; });
      }
    }
    spread(row, tl.bucket_ns, first, last,
           [](Timeline::RankBucket& c, TimeNs d) { c.compute += d; });
    for (auto& cell : row) {
      cell.compute = std::max<TimeNs>(0, cell.compute - cell.steal - cell.comm);
    }
    // Idle is whatever is left of each bucket (clipped to the horizon).
    for (int i = 0; i < buckets; ++i) {
      const TimeNs a = static_cast<TimeNs>(i) * tl.bucket_ns;
      const TimeNs b = std::min(tl.end, a + tl.bucket_ns);
      if (b <= a) break;
      auto& cell = row[static_cast<std::size_t>(i)];
      cell.idle = std::max<TimeNs>(
          0, (b - a) - cell.compute - cell.steal - cell.comm);
    }
  }

  // ---- link rows -------------------------------------------------------
  for (const FlowEv& f : trace.flows) {
    if (!f.complete() || f.path.empty()) continue;
    TimeNs t = f.src_ts;
    for (const HopDetail& h : f.path) {
      auto [it, inserted] = tl.links.try_emplace(h.link);
      if (inserted) {
        it->second.assign(static_cast<std::size_t>(buckets),
                          Timeline::LinkBucket{});
      }
      auto& row = it->second;
      const TimeNs begin = t + h.queued;  // serialization starts after queue
      spread(row, tl.bucket_ns, begin, begin + h.tx,
             [](Timeline::LinkBucket& c, TimeNs d) { c.busy += d; });
      if (tl.bucket_ns > 0 && begin >= 0) {
        const auto i = static_cast<std::size_t>(begin / tl.bucket_ns);
        if (i < row.size()) row[i].bytes += f.bytes;
      }
      t = begin + h.tx + h.lat;
    }
  }

  return tl;
}

json::Value Timeline::to_json() const {
  json::Value root = json::Value::object();
  root.set("end_ns", end);
  root.set("bucket_ns", bucket_ns);

  json::Value rank_obj = json::Value::object();
  for (const auto& [track, row] : ranks) {
    json::Value cells = json::Value::array();
    for (std::size_t i = 0; i < row.size(); ++i) {
      const RankBucket& c = row[i];
      if (c.compute == 0 && c.steal == 0 && c.comm == 0 && c.idle == 0) {
        continue;
      }
      json::Value cell = json::Value::object();
      cell.set("i", static_cast<std::int64_t>(i));
      cell.set("compute", c.compute);
      cell.set("steal", c.steal);
      cell.set("comm", c.comm);
      cell.set("idle", c.idle);
      cells.push_back(std::move(cell));
    }
    rank_obj.set(track, std::move(cells));
  }
  root.set("ranks", std::move(rank_obj));

  json::Value link_obj = json::Value::object();
  for (const auto& [name, row] : links) {
    json::Value cells = json::Value::array();
    for (std::size_t i = 0; i < row.size(); ++i) {
      const LinkBucket& c = row[i];
      if (c.busy == 0 && c.bytes == 0) continue;
      json::Value cell = json::Value::object();
      cell.set("i", static_cast<std::int64_t>(i));
      cell.set("busy_ns", c.busy);
      cell.set("bytes", c.bytes);
      cells.push_back(std::move(cell));
    }
    link_obj.set(name, std::move(cells));
  }
  root.set("links", std::move(link_obj));
  return root;
}

std::string Timeline::render_ascii() const {
  std::string out;
  std::size_t label_width = 0;
  for (const auto& [track, row] : ranks) {
    label_width = std::max(label_width, track.size());
  }
  for (const auto& [name, row] : links) {
    label_width = std::max(label_width, name.size());
  }

  auto pad = [&](const std::string& s) {
    std::string padded = s;
    padded.resize(label_width, ' ');
    return padded;
  };

  if (!ranks.empty()) {
    out += "ranks (#=compute S=steal c=connect .=idle):\n";
    for (const auto& [track, row] : ranks) {
      out += pad(track) + " |";
      for (const RankBucket& c : row) {
        char glyph = ' ';
        TimeNs best = 0;
        if (c.idle > best) { best = c.idle; glyph = '.'; }
        if (c.compute > best) { best = c.compute; glyph = '#'; }
        if (c.steal > best) { best = c.steal; glyph = 'S'; }
        if (c.comm > best) { best = c.comm; glyph = 'c'; }
        out += glyph;
      }
      out += "|\n";
    }
  }
  if (!links.empty()) {
    out += "links (busy fraction, ' '=idle '#'=saturated):\n";
    for (const auto& [name, row] : links) {
      out += pad(name) + " |";
      for (const LinkBucket& c : row) {
        const double frac =
            bucket_ns > 0
                ? static_cast<double>(c.busy) / static_cast<double>(bucket_ns)
                : 0.0;
        out += fraction_glyph(frac);
      }
      out += "|\n";
    }
  }
  return out;
}

}  // namespace wacs::analysis
