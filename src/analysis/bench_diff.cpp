#include "analysis/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wacs::analysis {
namespace {

bool suffix_matches(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  if (path.size() == suffix.size()) return true;
  const char before = path[path.size() - suffix.size() - 1];
  return before == '.' || before == ']';
}

struct Walker {
  const DiffOptions& options;
  DiffResult& result;

  bool ignored(const std::string& path) const {
    for (const std::string& suffix : options.ignore) {
      if (suffix_matches(path, suffix)) return true;
    }
    return false;
  }

  double tolerance(const std::string& path) const {
    for (const auto& [suffix, tol] : options.ratio_tol) {
      if (suffix_matches(path, suffix)) return tol;
    }
    return 0;
  }

  void note(const std::string& path, const json::Value* e, const json::Value* a,
            double rel, FieldDiff::Verdict verdict) {
    FieldDiff d;
    d.path = path;
    if (e != nullptr) d.expected = e->dump();
    if (a != nullptr) d.actual = a->dump();
    d.rel = rel;
    d.verdict = verdict;
    result.diffs.push_back(std::move(d));
  }

  void walk(const std::string& path, const json::Value& e,
            const json::Value& a) {
    if (ignored(path)) return;
    using Type = json::Value::Type;

    if (e.type() == Type::kObject && a.type() == Type::kObject) {
      for (const auto& [key, child] : e.members()) {
        const std::string child_path = path.empty() ? key : path + "." + key;
        const json::Value* found = a.find(key);
        if (found == nullptr) {
          if (!ignored(child_path)) {
            note(child_path, &child, nullptr, 0, FieldDiff::Verdict::kMissing);
            result.ok = false;
          }
          continue;
        }
        walk(child_path, child, *found);
      }
      for (const auto& [key, child] : a.members()) {
        if (e.find(key) != nullptr) continue;
        const std::string child_path = path.empty() ? key : path + "." + key;
        if (ignored(child_path)) continue;
        note(child_path, nullptr, &child, 0, FieldDiff::Verdict::kAdded);
        if (!options.allow_new_keys) result.ok = false;
      }
      return;
    }

    if (e.type() == Type::kArray && a.type() == Type::kArray) {
      const std::size_t ne = e.items().size();
      const std::size_t na = a.items().size();
      if (ne != na) {
        ++result.compared;
        FieldDiff d;
        d.path = path;
        d.expected = "len " + std::to_string(ne);
        d.actual = "len " + std::to_string(na);
        d.verdict = FieldDiff::Verdict::kChanged;
        result.diffs.push_back(std::move(d));
        result.ok = false;
      }
      for (std::size_t i = 0; i < std::min(ne, na); ++i) {
        walk(path + "[" + std::to_string(i) + "]", e.items()[i], a.items()[i]);
      }
      return;
    }

    // Leaf (or type mismatch, which compares as a changed leaf).
    ++result.compared;
    if (e.is_number() && a.is_number() &&
        (e.type() == Type::kDouble || a.type() == Type::kDouble)) {
      const double ev = e.as_double();
      const double av = a.as_double();
      const double scale = std::max(std::fabs(ev), std::fabs(av));
      const double rel = scale > 0 ? std::fabs(av - ev) / scale : 0;
      const double tol = tolerance(path);
      if (ev == av) return;
      if (tol > 0 && rel <= tol) {
        note(path, &e, &a, rel, FieldDiff::Verdict::kOk);
        return;
      }
      note(path, &e, &a, rel, FieldDiff::Verdict::kChanged);
      result.ok = false;
      return;
    }
    if (e.type() == a.type()) {
      bool same = false;
      switch (e.type()) {
        case Type::kNull: same = true; break;
        case Type::kBool: same = e.as_bool() == a.as_bool(); break;
        case Type::kInt: same = e.as_int() == a.as_int(); break;
        case Type::kString: same = e.as_string() == a.as_string(); break;
        default: same = e.dump() == a.dump(); break;
      }
      if (same) return;
    }
    double rel = 0;
    if (e.is_number() && a.is_number()) {
      const double scale =
          std::max(std::fabs(e.as_double()), std::fabs(a.as_double()));
      rel = scale > 0 ? std::fabs(a.as_double() - e.as_double()) / scale : 0;
    }
    note(path, &e, &a, rel, FieldDiff::Verdict::kChanged);
    result.ok = false;
  }
};

const char* verdict_name(FieldDiff::Verdict v) {
  switch (v) {
    case FieldDiff::Verdict::kOk: return "ok (tol)";
    case FieldDiff::Verdict::kChanged: return "CHANGED";
    case FieldDiff::Verdict::kMissing: return "MISSING";
    case FieldDiff::Verdict::kAdded: return "added";
  }
  return "?";
}

}  // namespace

DiffResult diff_reports(const json::Value& baseline, const json::Value& current,
                        const DiffOptions& options) {
  DiffResult result;
  Walker walker{options, result};
  walker.walk("", baseline, current);
  return result;
}

std::string DiffResult::markdown(const std::string& title) const {
  std::string out;
  if (!title.empty()) out += "### " + title + "\n\n";
  std::size_t regressions = 0;
  for (const FieldDiff& d : diffs) {
    if (d.verdict == FieldDiff::Verdict::kChanged ||
        d.verdict == FieldDiff::Verdict::kMissing) {
      ++regressions;
    }
  }
  char line[160];
  std::snprintf(line, sizeof line,
                "%s — %zu fields compared, %zu notable, %zu regression(s)\n\n",
                pass() ? "**PASS**" : "**FAIL**", compared, diffs.size(),
                regressions);
  out += line;
  if (diffs.empty()) return out;
  out += "| field | baseline | current | rel | verdict |\n";
  out += "|---|---|---|---|---|\n";
  for (const FieldDiff& d : diffs) {
    char rel[32] = "";
    if (d.rel > 0) std::snprintf(rel, sizeof rel, "%.3g", d.rel);
    out += "| `" + d.path + "` | " +
           (d.expected.empty() ? "—" : "`" + d.expected + "`") + " | " +
           (d.actual.empty() ? "—" : "`" + d.actual + "`") + " | " + rel +
           " | " + verdict_name(d.verdict) + " |\n";
  }
  return out;
}

}  // namespace wacs::analysis
