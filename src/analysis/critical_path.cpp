#include "analysis/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>

#include "common/stats.hpp"

namespace wacs::analysis {
namespace {

/// Category of a span, when the span itself determines it; nullopt falls
/// back to the track default (a rank track's uncategorized time is compute,
/// anything else is waiting).
std::optional<Category> span_category(const SpanEv& s) {
  if (s.cat == "relay") return Category::kRelay;
  if (s.name == "tcp.connect") return Category::kSetup;
  // Recovery spans live under the rmf category ("rmf.recovery.*"), so this
  // test must run before the rmf → setup fallback.
  if (s.name.rfind("rmf.recovery", 0) == 0) return Category::kRecovery;
  if (s.cat == "rmf" || s.cat == "mds") return Category::kSetup;
  if (s.cat == "gass") return Category::kStaging;
  if (s.cat == "knapsack") return Category::kCompute;
  return std::nullopt;
}

Category track_default(const std::string& track) {
  return track.find(".rank") != std::string::npos ? Category::kCompute
                                                  : Category::kQueue;
}

Category hop_category(const std::string& kind) {
  return kind == "wan" ? Category::kWanLink : Category::kLanLink;
}

/// Appends one segment to the reverse (descending-time) list, merging with
/// the previously pushed (later-in-time) segment when attribution matches.
void push_desc(std::vector<PathSegment>& rev, PathSegment seg) {
  if (seg.end <= seg.begin) return;
  if (!rev.empty()) {
    PathSegment& later = rev.back();
    if (later.begin == seg.end && later.cat == seg.cat &&
        later.track == seg.track && later.what == seg.what) {
      later.begin = seg.begin;
      return;
    }
  }
  rev.push_back(std::move(seg));
}

/// Attributes the local interval [lo, hi) on `track` to the innermost span
/// covering each instant; instants outside every span get the track default.
void append_local(const Trace& trace, const std::string& track, TimeNs lo,
                  TimeNs hi, std::vector<PathSegment>& rev) {
  if (hi <= lo) return;
  std::vector<const SpanEv*> overlapping;
  if (auto it = trace.spans_by_track.find(track);
      it != trace.spans_by_track.end()) {
    for (std::size_t i : it->second) {
      const SpanEv& s = trace.spans[i];
      if (s.ts < hi && s.end() > lo) overlapping.push_back(&s);
    }
  }
  std::vector<TimeNs> cuts{lo, hi};
  for (const SpanEv* s : overlapping) {
    if (s->ts > lo && s->ts < hi) cuts.push_back(s->ts);
    if (s->end() > lo && s->end() < hi) cuts.push_back(s->end());
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<PathSegment> fwd;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const TimeNs a = cuts[i];
    const TimeNs b = cuts[i + 1];
    // Innermost covering span = latest-starting (ids break the tie: they are
    // allocated in open order, so larger id = deeper nesting).
    const SpanEv* inner = nullptr;
    for (const SpanEv* s : overlapping) {
      if (s->ts > a || s->end() < b) continue;
      if (inner == nullptr || s->ts > inner->ts ||
          (s->ts == inner->ts && s->id > inner->id)) {
        inner = s;
      }
    }
    PathSegment seg;
    seg.begin = a;
    seg.end = b;
    seg.track = track;
    if (inner != nullptr) {
      seg.cat = span_category(*inner).value_or(track_default(track));
      seg.what = inner->name;
    } else {
      seg.cat = track_default(track);
      seg.what = "gap";
    }
    if (!fwd.empty() && fwd.back().end == seg.begin &&
        fwd.back().cat == seg.cat && fwd.back().what == seg.what) {
      fwd.back().end = seg.end;
    } else {
      fwd.push_back(std::move(seg));
    }
  }
  for (auto it = fwd.rbegin(); it != fwd.rend(); ++it) {
    push_desc(rev, std::move(*it));
  }
}

/// Attributes the flow interval [src_ts, dst_ts): per-hop link charges when
/// the flow carries path detail (tcp), pure queueing otherwise (mpi demux).
void append_flow(const FlowEv& f, std::vector<PathSegment>& rev) {
  const TimeNs lo = f.src_ts;
  const TimeNs hi = f.dst_ts;
  if (hi <= lo) return;
  std::vector<PathSegment> fwd;
  TimeNs t = lo;
  for (const HopDetail& h : f.path) {
    const TimeNs e = std::min(hi, t + h.queued + h.tx + h.lat);
    if (e > t) fwd.push_back({t, e, hop_category(h.kind), h.link, "hop"});
    t = e;
  }
  if (f.arrival > t && f.arrival <= hi) {
    fwd.push_back({t, f.arrival, Category::kQueue, f.dst_track, "in-flight"});
    t = f.arrival;
  }
  if (hi > t) {
    // Inbox residence (tcp) or demux queueing (mpi, no hop detail).
    fwd.push_back({t, hi, Category::kQueue, f.dst_track,
                   f.path.empty() ? f.cat + " queue" : "inbox"});
  }
  for (auto it = fwd.rbegin(); it != fwd.rend(); ++it) {
    push_desc(rev, std::move(*it));
  }
}

}  // namespace

const char* category_name(Category cat) {
  switch (cat) {
    case Category::kCompute: return "compute";
    case Category::kLanLink: return "lan";
    case Category::kWanLink: return "wan";
    case Category::kRelay: return "relay";
    case Category::kQueue: return "queueing";
    case Category::kSetup: return "setup";
    case Category::kStaging: return "staging";
    case Category::kRecovery: return "recovery";
  }
  return "?";
}

Result<CriticalPath> critical_path(const Trace& trace,
                                   const CriticalPathOptions& options) {
  const SpanEv* terminal = nullptr;
  for (const SpanEv& s : trace.spans) {
    if (options.trace_id != 0 && s.trace != options.trace_id) continue;
    if (!options.terminal.empty() && s.name != options.terminal) continue;
    if (terminal == nullptr || s.end() > terminal->end() ||
        (s.end() == terminal->end() && s.id > terminal->id)) {
      terminal = &s;
    }
  }
  if (terminal == nullptr) {
    return Error(ErrorCode::kNotFound,
                 options.terminal.empty()
                     ? "trace has no spans"
                     : "no span named '" + options.terminal + "'");
  }

  CriticalPath cp;
  cp.end = terminal->end();
  cp.terminal_track = terminal->track;
  cp.terminal_name = terminal->name;

  std::vector<PathSegment> rev;  // collected newest-first, reversed at the end
  std::set<std::uint64_t> used;
  TimeNs cursor = cp.end;
  std::string track = terminal->track;

  while (cursor > 0) {
    // Latest unused completed arrival on this track at or before the cursor.
    const FlowEv* flow = nullptr;
    if (auto it = trace.arrivals_by_track.find(track);
        it != trace.arrivals_by_track.end()) {
      const auto& idx = it->second;
      for (auto rit = idx.rbegin(); rit != idx.rend(); ++rit) {
        const FlowEv& cand = trace.flows[*rit];
        if (cand.dst_ts > cursor) continue;
        if (cand.src_ts > cand.dst_ts) continue;  // malformed ordering
        if (used.count(cand.id) != 0) continue;
        flow = &cand;
        break;
      }
    }
    if (flow == nullptr) break;
    used.insert(flow->id);
    ++cp.hops;
    append_local(trace, track, flow->dst_ts, cursor, rev);
    append_flow(*flow, rev);
    cursor = flow->src_ts;
    track = flow->src_track;
  }
  append_local(trace, track, 0, cursor, rev);

  cp.segments.assign(rev.rbegin(), rev.rend());
  for (Category cat : kAllCategories) cp.by_category[cat] = 0;
  for (const PathSegment& seg : cp.segments) {
    cp.by_category[seg.cat] += seg.dur();
  }
  return cp;
}

json::Value CriticalPath::to_json() const {
  json::Value root = json::Value::object();
  root.set("makespan_ns", end);
  json::Value term = json::Value::object();
  term.set("track", terminal_track);
  term.set("name", terminal_name);
  root.set("terminal", std::move(term));
  root.set("hops", static_cast<std::int64_t>(hops));
  json::Value cats = json::Value::object();
  for (Category cat : kAllCategories) {
    auto it = by_category.find(cat);
    cats.set(category_name(cat), it == by_category.end() ? TimeNs{0} : it->second);
  }
  root.set("by_category_ns", std::move(cats));
  json::Value segs = json::Value::array();
  for (const PathSegment& seg : segments) {
    json::Value s = json::Value::object();
    s.set("begin", seg.begin);
    s.set("end", seg.end);
    s.set("cat", category_name(seg.cat));
    s.set("track", seg.track);
    s.set("what", seg.what);
    segs.push_back(std::move(s));
  }
  root.set("segments", std::move(segs));
  return root;
}

std::string CriticalPath::render(std::size_t max_segments) const {
  std::string out;
  out += "critical path: " + terminal_name + " on " + terminal_track +
         ", makespan " + format_duration_ms(static_cast<double>(end) / 1e6) +
         ", " + std::to_string(hops) + " hops\n";

  TextTable breakdown({"category", "time", "share"});
  for (Category cat : kAllCategories) {
    auto it = by_category.find(cat);
    const TimeNs ns = it == by_category.end() ? 0 : it->second;
    char share[16];
    std::snprintf(share, sizeof share, "%5.1f%%",
                  end > 0 ? 100.0 * static_cast<double>(ns) /
                                static_cast<double>(end)
                          : 0.0);
    breakdown.add_row({category_name(cat),
                       format_duration_ms(static_cast<double>(ns) / 1e6),
                       share});
  }
  breakdown.add_row({"total",
                     format_duration_ms(static_cast<double>(end) / 1e6),
                     "100.0%"});
  out += breakdown.to_string();

  if (max_segments > 0 && !segments.empty()) {
    std::vector<const PathSegment*> top;
    top.reserve(segments.size());
    for (const PathSegment& seg : segments) top.push_back(&seg);
    std::stable_sort(top.begin(), top.end(),
                     [](const PathSegment* a, const PathSegment* b) {
                       return a->dur() > b->dur();
                     });
    if (top.size() > max_segments) top.resize(max_segments);
    std::stable_sort(top.begin(), top.end(),
                     [](const PathSegment* a, const PathSegment* b) {
                       return a->begin < b->begin;
                     });
    TextTable segs({"begin", "dur", "category", "track", "what"});
    for (const PathSegment* seg : top) {
      segs.add_row({format_duration_ms(static_cast<double>(seg->begin) / 1e6),
                    format_duration_ms(static_cast<double>(seg->dur()) / 1e6),
                    category_name(seg->cat), seg->track, seg->what});
    }
    out += "\ndominant segments (top " + std::to_string(top.size()) + "):\n";
    out += segs.to_string();
  }
  return out;
}

}  // namespace wacs::analysis
