// Utilization timelines reconstructed offline from a trace (DESIGN.md §11).
//
// Two views over the same bucketed time axis [0, trace end):
//  - per-rank rows: how each MPI rank split its time between compute,
//    steal-protocol handling, connection setup, and idling;
//  - per-link rows: busy (serialization) time and bytes on every link that
//    carried traffic, reconstructed from the per-hop charge detail the tcp
//    layer stamps onto flow arrows.
//
// The runtime produces the same link view directly (Network::utilization_*)
// when sampling is enabled; this offline path needs only the trace file.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "common/json.hpp"

namespace wacs::analysis {

struct TimelineOptions {
  int buckets = 60;  ///< time-axis resolution (also the ASCII row width)
};

struct Timeline {
  struct RankBucket {
    TimeNs compute = 0;
    TimeNs steal = 0;
    TimeNs comm = 0;
    TimeNs idle = 0;
  };
  struct LinkBucket {
    TimeNs busy = 0;
    std::uint64_t bytes = 0;
  };

  TimeNs end = 0;        ///< analysed horizon (trace end)
  TimeNs bucket_ns = 0;  ///< width of each bucket
  /// Rank rows keyed by track name; each vector has exactly `buckets` cells.
  std::map<std::string, std::vector<RankBucket>> ranks;
  /// Link rows keyed by link name (from hop detail), same bucketing.
  std::map<std::string, std::vector<LinkBucket>> links;

  /// Deterministic JSON (sparse: all-zero cells omitted).
  json::Value to_json() const;
  /// ASCII rows: ranks use the dominant activity per cell ('#' compute,
  /// 'S' steal, 'c' comm, '.' idle), links use busy-fraction glyphs.
  std::string render_ascii() const;
};

/// Builds the timeline. Works on any trace; rank rows cover tracks matching
/// ".rank" (excluding the mpi reader daemons), link rows need flows with
/// hop detail (tracing must have been on in the traced process).
Timeline build_timeline(const Trace& trace, const TimelineOptions& options = {});

}  // namespace wacs::analysis
