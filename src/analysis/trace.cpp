#include "analysis/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace wacs::analysis {
namespace {

std::string str_field(const json::Value& e, const char* key) {
  const json::Value* v = e.find(key);
  return v == nullptr ? "" : v->as_string();
}

std::int64_t int_field(const json::Value& e, const char* key,
                       std::int64_t fallback = 0) {
  const json::Value* v = e.find(key);
  return v == nullptr ? fallback : v->as_int(fallback);
}

/// Decodes one line's JSON object into the trace; returns false when the
/// object does not look like a trace event.
bool accept_event(Trace& out, const json::Value& e,
                  std::map<std::uint64_t, std::size_t>& flow_index) {
  const std::string type = str_field(e, "type");
  const TimeNs ts = int_field(e, "ts");

  if (type == "span") {
    SpanEv s;
    s.cat = str_field(e, "cat");
    s.name = str_field(e, "name");
    s.track = str_field(e, "track");
    s.ts = ts;
    s.dur = int_field(e, "dur");
    s.trace = static_cast<std::uint64_t>(int_field(e, "trace"));
    s.id = static_cast<std::uint64_t>(int_field(e, "span"));
    s.parent = static_cast<std::uint64_t>(int_field(e, "parent"));
    if (const json::Value* args = e.find("args")) s.args = *args;
    out.end_ts = std::max(out.end_ts, s.end());
    out.spans.push_back(std::move(s));
    return true;
  }

  if (type == "flow_s" || type == "flow_f") {
    const auto id = static_cast<std::uint64_t>(int_field(e, "flow"));
    if (id == 0) return false;
    auto [it, inserted] = flow_index.try_emplace(id, out.flows.size());
    if (inserted) {
      out.flows.emplace_back();
      out.flows.back().id = id;
    }
    FlowEv& f = out.flows[it->second];
    f.trace = static_cast<std::uint64_t>(int_field(e, "trace"));
    if (type == "flow_s") {
      f.cat = str_field(e, "cat");
      f.src_track = str_field(e, "track");
      f.src_ts = ts;
      f.src_span = static_cast<std::uint64_t>(int_field(e, "span"));
      if (const json::Value* args = e.find("args")) {
        f.arrival = int_field(*args, "arr", -1);
        f.bytes = static_cast<std::uint64_t>(int_field(*args, "bytes"));
        if (const json::Value* path = args->find("path")) {
          for (const json::Value& h : path->items()) {
            HopDetail hop;
            hop.link = str_field(h, "l");
            hop.kind = str_field(h, "k");
            hop.queued = int_field(h, "q");
            hop.tx = int_field(h, "tx");
            hop.lat = int_field(h, "lat");
            f.path.push_back(std::move(hop));
          }
        }
      }
    } else {
      f.dst_track = str_field(e, "track");
      f.dst_ts = ts;
    }
    out.end_ts = std::max(out.end_ts, ts);
    return true;
  }

  if (type == "instant") {
    out.end_ts = std::max(out.end_ts, ts);
    return true;  // accepted but not modeled
  }
  return false;
}

}  // namespace

const SpanEv* Trace::span_by_id(std::uint64_t id) const {
  for (const SpanEv& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Trace parse_trace(std::string_view text) {
  Trace out;
  std::map<std::uint64_t, std::size_t> flow_index;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    auto parsed = json::Value::parse(line);
    if (!parsed.ok() || parsed->type() != json::Value::Type::kObject ||
        !accept_event(out, *parsed, flow_index)) {
      ++out.malformed;
      continue;
    }
    ++out.events;
  }

  for (std::size_t i = 0; i < out.spans.size(); ++i) {
    out.spans_by_track[out.spans[i].track].push_back(i);
  }
  for (auto& [track, idx] : out.spans_by_track) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return out.spans[a].ts != out.spans[b].ts
                 ? out.spans[a].ts < out.spans[b].ts
                 : out.spans[a].id < out.spans[b].id;
    });
  }
  for (std::size_t i = 0; i < out.flows.size(); ++i) {
    if (!out.flows[i].complete()) continue;
    out.arrivals_by_track[out.flows[i].dst_track].push_back(i);
  }
  for (auto& [track, idx] : out.arrivals_by_track) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return out.flows[a].dst_ts != out.flows[b].dst_ts
                 ? out.flows[a].dst_ts < out.flows[b].dst_ts
                 : out.flows[a].id < out.flows[b].id;
    });
  }
  return out;
}

Result<Trace> load_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_trace(text);
}

TraceGraph TraceGraph::build(const Trace& trace) {
  TraceGraph g;
  // Same-track program order.
  for (const auto& [track, idx] : trace.spans_by_track) {
    for (std::size_t i = 1; i < idx.size(); ++i) {
      g.edges.push_back(Edge{idx[i - 1], idx[i], Edge::Kind::kTrackOrder, 0});
    }
  }
  // Flow arrows: sender context span -> innermost receiving span.
  std::map<std::uint64_t, std::size_t> span_pos;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    span_pos[trace.spans[i].id] = i;
  }
  for (const FlowEv& f : trace.flows) {
    if (!f.complete() || f.src_span == 0) continue;
    auto from = span_pos.find(f.src_span);
    if (from == span_pos.end()) continue;
    auto tracked = trace.spans_by_track.find(f.dst_track);
    if (tracked == trace.spans_by_track.end()) continue;
    // Innermost = latest-starting span on the track covering the dequeue.
    const SpanEv* best = nullptr;
    std::size_t best_idx = 0;
    for (std::size_t i : tracked->second) {
      const SpanEv& s = trace.spans[i];
      if (s.ts > f.dst_ts) break;
      if (s.covers(f.dst_ts) && (best == nullptr || s.ts >= best->ts)) {
        best = &s;
        best_idx = i;
      }
    }
    if (best == nullptr) continue;
    g.edges.push_back(Edge{from->second, best_idx, Edge::Kind::kFlow, f.id});
  }
  return g;
}

}  // namespace wacs::analysis
