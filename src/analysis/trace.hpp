// Offline model of a telemetry trace (the JSONL the Tracer exports).
//
// This is the input layer of the trace-analytics engine (DESIGN.md §11):
// it parses span / flow-arrow JSONL into typed events, indexes them per
// track, and builds the causal DAG (spans as nodes; edges from flow arrows
// and same-track ordering). Parsing is lenient by construction — a trace
// cut short by a crash ends mid-line — so malformed lines are skipped and
// counted, never fatal.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace wacs::analysis {

/// Virtual-time nanoseconds (mirrors sim::Time; analysis/ sits on common/).
using TimeNs = std::int64_t;

/// One completed span: an interval of one simulated process's execution.
struct SpanEv {
  std::string cat;
  std::string name;
  std::string track;
  TimeNs ts = 0;
  TimeNs dur = 0;
  std::uint64_t trace = 0;
  std::uint64_t id = 0;      ///< span id
  std::uint64_t parent = 0;  ///< parent span id (0 = root)
  json::Value args;

  TimeNs end() const { return ts + dur; }
  bool covers(TimeNs t) const { return ts <= t && t < end(); }
};

/// One hop of a message's network charge, decoded from the flow's "path"
/// args (stamped by the tcp layer from Network::deliver detail).
struct HopDetail {
  std::string link;
  std::string kind;  ///< "local" / "lan" / "wan"
  TimeNs queued = 0;
  TimeNs tx = 0;
  TimeNs lat = 0;
};

/// One flow arrow, matched across its start (send) and end (dequeue) events.
struct FlowEv {
  std::uint64_t id = 0;
  std::string cat;  ///< category of the start event ("tcp", "mpi", ...)
  std::uint64_t trace = 0;
  std::string src_track;
  std::string dst_track;
  TimeNs src_ts = -1;       ///< -1 until the start event is seen
  TimeNs dst_ts = -1;       ///< -1 until the end event is seen
  std::uint64_t src_span = 0;  ///< sender's context span id (0 = none)
  TimeNs arrival = -1;      ///< inbox-enqueue time ("arr" arg); -1 unknown
  std::uint64_t bytes = 0;  ///< wire bytes ("bytes" arg); 0 unknown
  std::vector<HopDetail> path;

  bool complete() const { return src_ts >= 0 && dst_ts >= 0; }
};

/// A parsed trace plus per-track indexes.
struct Trace {
  std::vector<SpanEv> spans;  ///< file order (record order = causal order)
  std::vector<FlowEv> flows;  ///< by first appearance; includes half flows
  std::size_t events = 0;     ///< well-formed events accepted
  std::size_t malformed = 0;  ///< lines skipped (parse failure / bad shape)
  TimeNs end_ts = 0;          ///< latest timestamp (span ends included)

  /// Span indexes (into `spans`) per track, sorted by (ts, id).
  std::map<std::string, std::vector<std::size_t>> spans_by_track;
  /// Completed flows (indexes into `flows`) per destination track, sorted
  /// by dst_ts.
  std::map<std::string, std::vector<std::size_t>> arrivals_by_track;

  const SpanEv* span_by_id(std::uint64_t id) const;
};

/// Parses trace JSONL text. Never fails: malformed lines (unparseable JSON,
/// non-objects, missing type) are counted in Trace::malformed and skipped.
Trace parse_trace(std::string_view text);

/// Reads and parses a trace file; errors only on I/O.
Result<Trace> load_trace(const std::string& path);

/// The causal DAG over spans: same-track program order plus flow arrows.
struct TraceGraph {
  struct Edge {
    enum class Kind { kTrackOrder, kFlow };
    std::size_t from = 0;  ///< index into Trace::spans
    std::size_t to = 0;
    Kind kind = Kind::kTrackOrder;
    std::uint64_t flow = 0;  ///< flow id for kFlow edges
  };
  std::vector<Edge> edges;

  /// Flow edges connect the sender's context span to the innermost span
  /// covering the dequeue on the receiving track (dropped when either side
  /// cannot be resolved — e.g. the receive happened outside any span).
  static TraceGraph build(const Trace& trace);
};

}  // namespace wacs::analysis
