#include "mds/directory.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace wacs::mds {
namespace {

/// Numeric parse for comparison filters; false when not a number.
bool to_number(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void put_entry(BufWriter& w, const Entry& e) {
  w.str(e.dn);
  w.u32(static_cast<std::uint32_t>(e.attributes.size()));
  for (const auto& [k, v] : e.attributes) {
    w.str(k);
    w.str(v);
  }
}

Result<Entry> get_entry(BufReader& r) {
  Entry out;
  auto dn = r.str();
  if (!dn) return dn.error();
  out.dn = std::move(*dn);
  auto n = r.u32();
  if (!n) return n.error();
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto k = r.str();
    if (!k) return k.error();
    auto v = r.str();
    if (!v) return v.error();
    out.attributes.emplace(std::move(*k), std::move(*v));
  }
  return out;
}

Error bad_frame(const char* what) {
  return Error(ErrorCode::kProtocolError, std::string("mds frame: ") + what);
}

Result<MsgType> expect_type(BufReader& r, MsgType want) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  if (*tag != static_cast<std::uint8_t>(want)) return bad_frame("wrong tag");
  return want;
}

}  // namespace

bool FilterTerm::matches(const Entry& entry) const {
  auto it = entry.attributes.find(attribute);
  if (it == entry.attributes.end()) return false;
  switch (op) {
    case Op::kPresent:
      return true;
    case Op::kEquals:
      return it->second == value;
    case Op::kGreaterOrEqual: {
      double lhs, rhs;
      return to_number(it->second, &lhs) && to_number(value, &rhs) &&
             lhs >= rhs;
    }
    case Op::kLessOrEqual: {
      double lhs, rhs;
      return to_number(it->second, &lhs) && to_number(value, &rhs) &&
             lhs <= rhs;
    }
  }
  return false;
}

bool Filter::matches(const Entry& entry) const {
  return std::all_of(terms.begin(), terms.end(),
                     [&](const FilterTerm& t) { return t.matches(entry); });
}

Result<Filter> Filter::parse(const std::string& text) {
  auto bad = [&](const char* why) {
    return Error(ErrorCode::kInvalidArgument,
                 "bad filter '" + text + "': " + why);
  };
  Filter out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    if (text[pos] != '(') return bad("expected '('");
    const std::size_t close = text.find(')', pos);
    if (close == std::string::npos) return bad("unterminated '('");
    const std::string term = text.substr(pos + 1, close - pos - 1);
    pos = close + 1;

    FilterTerm parsed;
    std::size_t op_pos;
    if ((op_pos = term.find(">=")) != std::string::npos) {
      parsed.op = FilterTerm::Op::kGreaterOrEqual;
      parsed.attribute = term.substr(0, op_pos);
      parsed.value = term.substr(op_pos + 2);
    } else if ((op_pos = term.find("<=")) != std::string::npos) {
      parsed.op = FilterTerm::Op::kLessOrEqual;
      parsed.attribute = term.substr(0, op_pos);
      parsed.value = term.substr(op_pos + 2);
    } else if ((op_pos = term.find('=')) != std::string::npos) {
      parsed.attribute = term.substr(0, op_pos);
      parsed.value = term.substr(op_pos + 1);
      parsed.op = parsed.value == "*" ? FilterTerm::Op::kPresent
                                      : FilterTerm::Op::kEquals;
    } else {
      return bad("term has no operator");
    }
    if (parsed.attribute.empty()) return bad("empty attribute name");
    if (parsed.op != FilterTerm::Op::kPresent && parsed.value.empty()) {
      return bad("empty comparison value");
    }
    out.terms.push_back(std::move(parsed));
  }
  return out;
}

bool dn_in_subtree(const std::string& dn, const std::string& base) {
  if (dn == base) return true;
  return dn.size() > base.size() + 1 && dn.rfind(base + "/", 0) == 0;
}

void Directory::register_entry(Entry entry, std::int64_t expires_at) {
  WACS_CHECK_MSG(!entry.dn.empty(), "entry needs a DN");
  // The key must be copied before the move: the RHS of an assignment is
  // sequenced before the subscript expression (C++17), so
  // `entries_[entry.dn] = ...std::move(entry)...` would key on an empty
  // string.
  const std::string dn = entry.dn;
  entries_[dn] = Stored{std::move(entry), expires_at};
}

void Directory::unregister_entry(const std::string& dn) {
  entries_.erase(dn);
}

std::vector<Entry> Directory::search(const std::string& base, Scope scope,
                                     const Filter& filter, std::int64_t now) {
  // Lazy expiry: drop stale entries as we walk.
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.expires_at <= now ? entries_.erase(it) : std::next(it);
  }
  std::vector<Entry> out;
  for (const auto& [dn, stored] : entries_) {
    const bool in_scope = scope == Scope::kBase ? dn == base
                                                : dn_in_subtree(dn, base);
    if (in_scope && filter.matches(stored.entry)) out.push_back(stored.entry);
  }
  return out;  // map iteration is already DN-sorted
}

// ---- wire protocol -------------------------------------------------------

Bytes RegisterRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRegister));
  put_entry(w, entry);
  w.i64(ttl_ns);
  return std::move(w).take();
}

Result<RegisterRequest> RegisterRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kRegister); !t) return t.error();
  RegisterRequest out;
  auto e = get_entry(r);
  if (!e) return e.error();
  out.entry = std::move(*e);
  auto ttl = r.i64();
  if (!ttl) return ttl.error();
  out.ttl_ns = *ttl;
  return out;
}

Bytes UnregisterRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUnregister));
  w.str(dn);
  return std::move(w).take();
}

Result<UnregisterRequest> UnregisterRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kUnregister); !t) return t.error();
  auto dn = r.str();
  if (!dn) return dn.error();
  return UnregisterRequest{std::move(*dn)};
}

Bytes SearchRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSearch));
  w.str(base);
  w.u8(static_cast<std::uint8_t>(scope));
  w.str(filter);
  return std::move(w).take();
}

Result<SearchRequest> SearchRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSearch); !t) return t.error();
  SearchRequest out;
  auto base = r.str();
  if (!base) return base.error();
  out.base = std::move(*base);
  auto scope = r.u8();
  if (!scope) return scope.error();
  if (*scope > 1) return bad_frame("bad scope");
  out.scope = static_cast<Scope>(*scope);
  auto filter = r.str();
  if (!filter) return filter.error();
  out.filter = std::move(*filter);
  return out;
}

Bytes SearchReply::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSearchReply));
  w.boolean(ok);
  w.str(error);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) put_entry(w, e);
  return std::move(w).take();
}

Result<SearchReply> SearchReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSearchReply); !t) return t.error();
  SearchReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  auto n = r.u32();
  if (!n) return n.error();
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto e = get_entry(r);
    if (!e) return e.error();
    out.entries.push_back(std::move(*e));
  }
  return out;
}

Bytes Ack::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAck));
  w.boolean(ok);
  w.str(error);
  return std::move(w).take();
}

Result<Ack> Ack::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kAck); !t) return t.error();
  Ack out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

}  // namespace wacs::mds
