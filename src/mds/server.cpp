#include "mds/server.hpp"

#include "common/log.hpp"

namespace wacs::mds {
namespace {
const log::Logger kLog("mds");
}

DirectoryServer::DirectoryServer(sim::Host& host, std::uint16_t port)
    : host_(&host), port_(port) {}

void DirectoryServer::start() {
  WACS_CHECK_MSG(!started_, "MDS already started");
  started_ = true;
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "MDS cannot bind its port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "mds@" + host_->name(), [this](sim::Process& self) { serve(self); });
}

void DirectoryServer::serve(sim::Process& self) {
  while (true) {
    auto conn = listener_->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    host_->network().engine().spawn(
        "mds@" + host_->name() + ".req",
        [this, sock](sim::Process& handler) { handle(handler, sock); });
  }
}

void DirectoryServer::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  if (frame->empty()) {
    conn->close();
    return;
  }
  const sim::Time now = host_->network().engine().now();

  switch (static_cast<MsgType>((*frame)[0])) {
    case MsgType::kRegister: {
      auto req = RegisterRequest::decode(*frame);
      if (!req.ok() || req->ttl_ns <= 0 || req->entry.dn.empty()) {
        (void)conn->send(Ack{false, "malformed register"}.encode());
        break;
      }
      ++registrations_;
      directory_.register_entry(std::move(req->entry), now + req->ttl_ns);
      (void)conn->send(Ack{true, ""}.encode());
      break;
    }
    case MsgType::kUnregister: {
      auto req = UnregisterRequest::decode(*frame);
      if (!req.ok()) {
        (void)conn->send(Ack{false, "malformed unregister"}.encode());
        break;
      }
      directory_.unregister_entry(req->dn);
      (void)conn->send(Ack{true, ""}.encode());
      break;
    }
    case MsgType::kSearch: {
      auto req = SearchRequest::decode(*frame);
      SearchReply reply;
      if (!req.ok()) {
        reply.error = "malformed search";
      } else {
        auto filter = Filter::parse(req->filter);
        if (!filter.ok()) {
          reply.error = filter.error().to_string();
        } else {
          ++searches_;
          reply.ok = true;
          reply.entries = directory_.search(req->base, req->scope, *filter,
                                            now);
        }
      }
      (void)conn->send(reply.encode());
      break;
    }
    default:
      kLog.warn("mds: unexpected frame type %d", static_cast<int>((*frame)[0]));
      break;
  }
  conn->close();
}

Status MdsClient::publish(sim::Process& self, Entry entry,
                          double ttl_seconds) {
  auto conn = host_->stack().connect(self, server_);
  if (!conn.ok()) return conn.error();
  RegisterRequest req{std::move(entry), sim::from_sec(ttl_seconds)};
  if (auto s = (*conn)->send(req.encode()); !s.ok()) return s;
  auto reply_frame = (*conn)->recv(self);
  if (!reply_frame.ok()) return reply_frame.error();
  auto ack = Ack::decode(*reply_frame);
  if (!ack.ok()) return ack.error();
  if (!ack->ok) return Status(ErrorCode::kInvalidArgument, ack->error);
  return Status();
}

Status MdsClient::withdraw(sim::Process& self, const std::string& dn) {
  auto conn = host_->stack().connect(self, server_);
  if (!conn.ok()) return conn.error();
  if (auto s = (*conn)->send(UnregisterRequest{dn}.encode()); !s.ok()) {
    return s;
  }
  auto reply_frame = (*conn)->recv(self);
  if (!reply_frame.ok()) return reply_frame.error();
  auto ack = Ack::decode(*reply_frame);
  if (!ack.ok()) return ack.error();
  return Status();
}

Result<std::vector<Entry>> MdsClient::search(sim::Process& self,
                                             const std::string& base,
                                             Scope scope,
                                             const std::string& filter) {
  auto conn = host_->stack().connect(self, server_);
  if (!conn.ok()) return conn.error();
  if (auto s = (*conn)->send(SearchRequest{base, scope, filter}.encode());
      !s.ok()) {
    return s.error();
  }
  auto reply_frame = (*conn)->recv(self);
  if (!reply_frame.ok()) return reply_frame.error();
  auto reply = SearchReply::decode(*reply_frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) return Error(ErrorCode::kInvalidArgument, reply->error);
  return std::move(reply->entries);
}

}  // namespace wacs::mds
