// The MDS daemon and its client, over the simulated network.
#pragma once

#include "mds/directory.hpp"
#include "simnet/tcp.hpp"

namespace wacs::mds {

/// Directory daemon; one per grid (typically on a DMZ host so every site
/// can publish and query it — the directory is public information).
class DirectoryServer {
 public:
  DirectoryServer(sim::Host& host, std::uint16_t port);

  void start();
  Contact contact() const { return Contact{host_->name(), port_}; }

  /// Direct access for tests and in-process publication at boot time.
  Directory& directory() { return directory_; }

  std::uint64_t registrations() const { return registrations_; }
  std::uint64_t searches() const { return searches_; }

 private:
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);

  sim::Host* host_;
  std::uint16_t port_;
  Directory directory_;
  sim::ListenerPtr listener_;
  std::uint64_t registrations_ = 0;
  std::uint64_t searches_ = 0;
  bool started_ = false;
};

/// Client-side helpers; each call is a one-shot connection.
class MdsClient {
 public:
  MdsClient(sim::Host& host, Contact server)
      : host_(&host), server_(std::move(server)) {}

  Status publish(sim::Process& self, Entry entry, double ttl_seconds);
  Status withdraw(sim::Process& self, const std::string& dn);
  Result<std::vector<Entry>> search(sim::Process& self,
                                    const std::string& base, Scope scope,
                                    const std::string& filter);

 private:
  sim::Host* host_;
  Contact server_;
};

}  // namespace wacs::mds
