// MDS — a Metacomputing Directory Service.
//
// Globus's "network information" mechanism was the LDAP-based MDS: a
// hierarchical directory where sites publish entries describing hosts,
// clusters, and services, and tools discover resources by filtered search
// (the paper lists this among the basic Globus mechanisms; cf. "Usage of
// LDAP in Globus" in the related work).
//
// This is an LDAP-shaped subset: entries are named by slash-separated
// distinguished names ("o=grid/ou=rwcp/host=rwcp-sun"), carry string
// attribute maps, expire after a TTL (publishers re-register periodically),
// and are found by base+scope searches with equality / presence / numeric
// comparison filters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/contact.hpp"
#include "common/error.hpp"

namespace wacs::mds {

/// A directory entry.
struct Entry {
  std::string dn;  ///< "o=grid/ou=rwcp/host=rwcp-sun"
  std::map<std::string, std::string> attributes;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Search scope relative to the base DN.
enum class Scope {
  kBase,     ///< the base entry only
  kSubtree,  ///< the base entry and everything below it
};

/// One filter term; all terms of a Filter must match (AND semantics).
struct FilterTerm {
  enum class Op {
    kPresent,  ///< attribute exists
    kEquals,   ///< string equality
    kGreaterOrEqual,  ///< numeric comparison (non-numeric attr fails)
    kLessOrEqual,
  };
  std::string attribute;
  Op op = Op::kPresent;
  std::string value;

  bool matches(const Entry& entry) const;
};

struct Filter {
  std::vector<FilterTerm> terms;

  bool matches(const Entry& entry) const;

  /// Parses "(cpus>=8)(site=rwcp)(gatekeeper=*)" — LDAP-ish syntax where
  /// "=*" means presence. Errors on malformed input.
  static Result<Filter> parse(const std::string& text);
};

/// True when `dn` equals `base` or lies beneath it.
bool dn_in_subtree(const std::string& dn, const std::string& base);

/// The in-memory directory (used directly by unit tests; served over the
/// network by DirectoryServer in server.hpp).
class Directory {
 public:
  /// Adds or replaces an entry; it expires at `expires_at` (virtual ns).
  void register_entry(Entry entry, std::int64_t expires_at);
  /// Removes an entry; no-op when absent.
  void unregister_entry(const std::string& dn);

  /// Entries under (base, scope) matching `filter`, at time `now`,
  /// DN-sorted. Expired entries are dropped lazily.
  std::vector<Entry> search(const std::string& base, Scope scope,
                            const Filter& filter, std::int64_t now);

  std::size_t size() const { return entries_.size(); }

 private:
  struct Stored {
    Entry entry;
    std::int64_t expires_at;
  };
  std::map<std::string, Stored> entries_;  // keyed by DN
};

// ---- wire protocol -------------------------------------------------------

enum class MsgType : std::uint8_t {
  kRegister = 1,
  kUnregister = 2,
  kSearch = 3,
  kSearchReply = 4,
  kAck = 5,
};

struct RegisterRequest {
  Entry entry;
  std::int64_t ttl_ns = 0;  ///< lifetime from the server's current time
  Bytes encode() const;
  static Result<RegisterRequest> decode(const Bytes& frame);
};

struct UnregisterRequest {
  std::string dn;
  Bytes encode() const;
  static Result<UnregisterRequest> decode(const Bytes& frame);
};

struct SearchRequest {
  std::string base;
  Scope scope = Scope::kSubtree;
  std::string filter;  ///< Filter::parse syntax
  Bytes encode() const;
  static Result<SearchRequest> decode(const Bytes& frame);
};

struct SearchReply {
  bool ok = false;
  std::string error;
  std::vector<Entry> entries;
  Bytes encode() const;
  static Result<SearchReply> decode(const Bytes& frame);
};

struct Ack {
  bool ok = false;
  std::string error;
  Bytes encode() const;
  static Result<Ack> decode(const Bytes& frame);
};

}  // namespace wacs::mds
