// The Nexus Proxy daemons (simulated).
//
// OuterServer runs on a host *outside* the firewall (DMZ); InnerServer runs
// inside, listening on the one port ("nxport") the firewall opens for
// outer → inner traffic. Together they implement the two mechanisms of
// Figures 3 and 4:
//
//   active open  (Fig 3): client → outer → target, one relay process.
//   passive open (Fig 4): remote → outer(public port) → inner → bound
//                         client, two relay processes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "proxy/protocol.hpp"
#include "proxy/relay.hpp"
#include "simnet/tcp.hpp"

namespace wacs::proxy {

/// The inner server daemon. start() spawns the accept loop.
class InnerServer {
 public:
  /// `nxport` must be opened in the site firewall for the outer host.
  InnerServer(sim::Host& host, std::uint16_t nxport, RelayParams params);

  void start();
  Contact contact() const { return Contact{host_->name(), nxport_}; }
  const RelayStats& stats() const { return stats_; }

 private:
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);

  sim::Host* host_;
  std::uint16_t nxport_;
  RelayParams params_;
  RelayStats stats_;
  sim::ListenerPtr listener_;
  bool started_ = false;
};

/// The outer server daemon. start() spawns the control accept loop; bind
/// registrations each get their own public listener + acceptor process.
class OuterServer {
 public:
  OuterServer(sim::Host& host, std::uint16_t control_port, RelayParams params);

  void start();

  /// Simulated daemon crash: closes the control listener and every public
  /// listener, so new control exchanges and relayed connects are refused.
  /// In-flight relay pumps are not touched here — when the stop models a
  /// host crash, the fault layer resets their connections.
  void stop();

  /// Daemon restart after stop(): re-binds the control port, re-creates
  /// every registered binding's public listener on its original port, and
  /// respawns the accept loops. Bind registrations survive because peers
  /// cache the advertised public contacts across a daemon restart.
  void restart();

  Contact contact() const { return Contact{host_->name(), control_port_}; }
  const RelayStats& stats() const { return stats_; }
  std::uint64_t active_binds() const { return active_binds_; }

 private:
  struct Binding {
    Contact target;  ///< the client's private listener
    Contact inner;   ///< inner server to route through
    sim::ListenerPtr public_listener;
  };

  /// `listener` is captured at spawn time so a restart's reassignment of
  /// listener_ cannot destroy the object a stale loop is blocked inside.
  void serve(sim::Process& self, sim::ListenerPtr listener);
  void handle_control(sim::Process& self, sim::SocketPtr conn);
  void handle_connect(sim::Process& self, sim::SocketPtr conn,
                      const ConnectRequest& req);
  void handle_bind(sim::Process& self, sim::SocketPtr conn,
                   const BindRequest& req);
  /// `listener` is captured at spawn time: after a restart replaces the
  /// binding's listener, a stale loop must exit instead of accepting on
  /// the replacement.
  void accept_loop(sim::Process& self, std::shared_ptr<Binding> binding,
                   sim::ListenerPtr listener);
  void spawn_accept_loop(std::shared_ptr<Binding> binding);
  void bridge_to_inner(sim::Process& self, sim::SocketPtr remote,
                       std::shared_ptr<Binding> binding);

  sim::Host* host_;
  std::uint16_t control_port_;
  RelayParams params_;
  RelayStats stats_;
  sim::ListenerPtr listener_;
  std::uint64_t next_bind_id_ = 1;
  std::uint64_t active_binds_ = 0;
  /// public port -> binding: lets handle_connect() short-circuit a relay
  /// request that targets one of our own public ports (a proxied client
  /// dialing a proxied peer) instead of dialing ourselves over TCP.
  std::map<std::uint16_t, std::shared_ptr<Binding>> bindings_by_port_;
  bool started_ = false;
};

}  // namespace wacs::proxy
