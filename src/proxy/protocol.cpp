#include "proxy/protocol.hpp"

namespace wacs::proxy {
namespace {

Error bad_frame(const char* what) {
  return Error(ErrorCode::kProtocolError, std::string("proxy frame: ") + what);
}

Result<MsgType> expect_type(BufReader& r, MsgType want) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  if (*tag != static_cast<std::uint8_t>(want)) return bad_frame("wrong type tag");
  return want;
}

void put_contact(BufWriter& w, const Contact& c) {
  w.str(c.host);
  w.u16(c.port);
}

Result<Contact> get_contact(BufReader& r) {
  auto host = r.str();
  if (!host) return host.error();
  auto port = r.u16();
  if (!port) return port.error();
  return Contact{std::move(*host), *port};
}

}  // namespace

Result<MsgType> peek_type(const Bytes& frame) {
  if (frame.empty()) return bad_frame("empty frame");
  const std::uint8_t tag = frame[0];
  if (tag < 1 || tag > 10) return bad_frame("unknown type tag");
  return static_cast<MsgType>(tag);
}

Bytes ConnectRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kConnectRequest));
  put_contact(w, target);
  return std::move(w).take();
}

Result<ConnectRequest> ConnectRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kConnectRequest); !t) return t.error();
  auto target = get_contact(r);
  if (!target) return target.error();
  return ConnectRequest{std::move(*target)};
}

Bytes ConnectReply::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kConnectReply));
  w.boolean(ok);
  w.str(error);
  return std::move(w).take();
}

Result<ConnectReply> ConnectReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kConnectReply); !t) return t.error();
  auto ok = r.boolean();
  if (!ok) return ok.error();
  auto error = r.str();
  if (!error) return error.error();
  return ConnectReply{*ok, std::move(*error)};
}

Bytes BindRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBindRequest));
  put_contact(w, local);
  put_contact(w, inner);
  return std::move(w).take();
}

Result<BindRequest> BindRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kBindRequest); !t) return t.error();
  auto local = get_contact(r);
  if (!local) return local.error();
  auto inner = get_contact(r);
  if (!inner) return inner.error();
  return BindRequest{std::move(*local), std::move(*inner)};
}

Bytes BindReply::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBindReply));
  w.boolean(ok);
  put_contact(w, public_contact);
  w.u64(bind_id);
  w.str(error);
  // Optional tail: a zero lease encodes byte-identically to the pre-lease
  // wire format. The simulated relay never grants leases, so its traffic
  // (and the committed bench baselines derived from it) is unchanged.
  if (lease_ms != 0) w.u32(lease_ms);
  return std::move(w).take();
}

Result<BindReply> BindReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kBindReply); !t) return t.error();
  auto ok = r.boolean();
  if (!ok) return ok.error();
  auto pub = get_contact(r);
  if (!pub) return pub.error();
  auto id = r.u64();
  if (!id) return id.error();
  auto error = r.str();
  if (!error) return error.error();
  // Pre-lease frames end here; a present tail must be a whole u32.
  std::uint32_t lease_ms = 0;
  if (r.remaining() > 0) {
    auto lease = r.u32();
    if (!lease) return lease.error();
    lease_ms = *lease;
  }
  return BindReply{*ok, std::move(*pub), *id, std::move(*error), lease_ms};
}

Bytes ForwardRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kForwardRequest));
  put_contact(w, target);
  put_contact(w, peer);
  return std::move(w).take();
}

Result<ForwardRequest> ForwardRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kForwardRequest); !t) return t.error();
  auto target = get_contact(r);
  if (!target) return target.error();
  auto peer = get_contact(r);
  if (!peer) return peer.error();
  return ForwardRequest{std::move(*target), std::move(*peer)};
}

Bytes ForwardReply::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kForwardReply));
  w.boolean(ok);
  w.str(error);
  return std::move(w).take();
}

Result<ForwardReply> ForwardReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kForwardReply); !t) return t.error();
  auto ok = r.boolean();
  if (!ok) return ok.error();
  auto error = r.str();
  if (!error) return error.error();
  return ForwardReply{*ok, std::move(*error)};
}

Bytes AcceptNotice::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAcceptNotice));
  put_contact(w, peer);
  return std::move(w).take();
}

Result<AcceptNotice> AcceptNotice::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kAcceptNotice); !t) return t.error();
  auto peer = get_contact(r);
  if (!peer) return peer.error();
  return AcceptNotice{std::move(*peer)};
}

Bytes Busy::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBusy));
  w.u32(retry_after_ms);
  return std::move(w).take();
}

Result<Busy> Busy::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kBusy); !t) return t.error();
  auto retry = r.u32();
  if (!retry) return retry.error();
  return Busy{*retry};
}

Bytes BindRenewRequest::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBindRenewRequest));
  w.u64(bind_id);
  return std::move(w).take();
}

Result<BindRenewRequest> BindRenewRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kBindRenewRequest); !t) {
    return t.error();
  }
  auto id = r.u64();
  if (!id) return id.error();
  return BindRenewRequest{*id};
}

Bytes BindRenewReply::encode() const {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBindRenewReply));
  w.boolean(ok);
  w.u32(lease_ms);
  w.str(error);
  return std::move(w).take();
}

Result<BindRenewReply> BindRenewReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kBindRenewReply); !t) return t.error();
  auto ok = r.boolean();
  if (!ok) return ok.error();
  auto lease = r.u32();
  if (!lease) return lease.error();
  auto error = r.str();
  if (!error) return error.error();
  return BindRenewReply{*ok, *lease, std::move(*error)};
}

}  // namespace wacs::proxy
