#include "proxy/server.hpp"

#include "common/log.hpp"

namespace wacs::proxy {
namespace {
const log::Logger kLog("proxy");
}

// ------------------------------------------------------------ InnerServer

InnerServer::InnerServer(sim::Host& host, std::uint16_t nxport,
                         RelayParams params)
    : host_(&host), nxport_(nxport), params_(params) {}

void InnerServer::start() {
  WACS_CHECK_MSG(!started_, "inner server already started");
  started_ = true;
  auto listener = host_->stack().listen(nxport_);
  WACS_CHECK_MSG(listener.ok(), "inner server cannot bind nxport");
  listener_ = *listener;
  host_->network().engine().spawn(
      "inner@" + host_->name(), [this](sim::Process& self) { serve(self); });
}

void InnerServer::serve(sim::Process& self) {
  while (true) {
    auto conn = listener_->accept(self);
    if (!conn.ok()) return;
    ++stats_.connections;
    auto sock = *conn;
    host_->network().engine().spawn(
        "inner@" + host_->name() + ".sess",
        [this, sock](sim::Process& handler) { handle(handler, sock); });
  }
}

void InnerServer::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  auto req = ForwardRequest::decode(*frame);
  if (!req.ok()) {
    kLog.warn("inner@%s: bad forward request: %s", host_->name().c_str(),
              req.error().to_string().c_str());
    conn->close();
    return;
  }
  // Per-request processing cost (daemon wakeup, registry lookup).
  self.sleep(params_.per_message_s);

  auto target = host_->stack().connect(self, req->target);
  if (!target.ok()) {
    (void)conn->send(ForwardReply{false, target.error().to_string()}.encode());
    conn->close();
    return;
  }
  // Tell the bound client who is really on the other end (the client's
  // accept() otherwise only ever sees the inner server).
  if (!(*target)->send(AcceptNotice{req->peer}.encode()).ok()) {
    (void)conn->send(ForwardReply{false, "target vanished"}.encode());
    conn->close();
    return;
  }
  if (!conn->send(ForwardReply{true, ""}.encode()).ok()) {
    (*target)->close();
    return;
  }
  spawn_pumps(host_->network().engine(), "inner@" + host_->name() + ".pump",
              conn, *target, params_, &stats_);
}

// ------------------------------------------------------------ OuterServer

OuterServer::OuterServer(sim::Host& host, std::uint16_t control_port,
                         RelayParams params)
    : host_(&host), control_port_(control_port), params_(params) {}

void OuterServer::start() {
  WACS_CHECK_MSG(!started_, "outer server already started");
  started_ = true;
  auto listener = host_->stack().listen(control_port_);
  WACS_CHECK_MSG(listener.ok(), "outer server cannot bind control port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "outer@" + host_->name(),
      [this, l = listener_](sim::Process& self) { serve(self, l); });
}

void OuterServer::stop() {
  WACS_CHECK_MSG(started_, "stop before start");
  listener_->close();
  for (auto& [port, binding] : bindings_by_port_) {
    binding->public_listener->close();
  }
}

void OuterServer::restart() {
  WACS_CHECK_MSG(started_, "restart before start");
  stop();  // a crash leaves the old listeners bound; drop them first
  auto listener = host_->stack().listen(control_port_);
  WACS_CHECK_MSG(listener.ok(), "outer server cannot re-bind control port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "outer@" + host_->name(),
      [this, l = listener_](sim::Process& self) { serve(self, l); });
  for (auto& [port, binding] : bindings_by_port_) {
    auto pub = host_->stack().listen(port);
    WACS_CHECK_MSG(pub.ok(), "outer server cannot re-bind public port");
    binding->public_listener = *pub;
    spawn_accept_loop(binding);
  }
  kLog.info("outer@%s restarted (%zu bindings rebuilt)",
            host_->name().c_str(), bindings_by_port_.size());
}

void OuterServer::serve(sim::Process& self, sim::ListenerPtr listener) {
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    ++stats_.connections;
    auto sock = *conn;
    host_->network().engine().spawn(
        "outer@" + host_->name() + ".ctl",
        [this, sock](sim::Process& handler) { handle_control(handler, sock); });
  }
}

void OuterServer::handle_control(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  auto type = peek_type(*frame);
  if (!type.ok()) {
    conn->close();
    return;
  }
  // Per-request daemon processing cost.
  self.sleep(params_.per_message_s);

  switch (*type) {
    case MsgType::kConnectRequest: {
      auto req = ConnectRequest::decode(*frame);
      if (req.ok()) {
        handle_connect(self, conn, *req);
      } else {
        conn->close();
      }
      return;
    }
    case MsgType::kBindRequest: {
      auto req = BindRequest::decode(*frame);
      if (req.ok()) {
        handle_bind(self, conn, *req);
      } else {
        conn->close();
      }
      return;
    }
    default:
      kLog.warn("outer@%s: unexpected control frame type %d",
                host_->name().c_str(), static_cast<int>(*type));
      conn->close();
      return;
  }
}

void OuterServer::handle_connect(sim::Process& self, sim::SocketPtr conn,
                                 const ConnectRequest& req) {
  // Relay collapsing: when the target is one of our own public ports (a
  // proxied client dialing a proxied peer's advertised contact), bridge
  // straight to the inner server instead of connecting to ourselves —
  // one relay process less on the path.
  if (req.target.host == host_->name()) {
    auto it = bindings_by_port_.find(req.target.port);
    if (it != bindings_by_port_.end()) {
      if (!conn->send(ConnectReply{true, ""}.encode()).ok()) return;
      bridge_to_inner(self, conn, it->second);
      return;
    }
  }
  auto target = host_->stack().connect(self, req.target);
  if (!target.ok()) {
    (void)conn->send(ConnectReply{false, target.error().to_string()}.encode());
    conn->close();
    return;
  }
  if (!conn->send(ConnectReply{true, ""}.encode()).ok()) {
    (*target)->close();
    return;
  }
  spawn_pumps(host_->network().engine(), "outer@" + host_->name() + ".pump",
              conn, *target, params_, &stats_);
}

void OuterServer::handle_bind(sim::Process& self, sim::SocketPtr conn,
                              const BindRequest& req) {
  auto public_listener = host_->stack().listen(0);
  if (!public_listener.ok()) {
    (void)conn->send(
        BindReply{false, Contact{}, 0, public_listener.error().to_string()}
            .encode());
    conn->close();
    return;
  }
  auto binding = std::make_shared<Binding>();
  binding->target = req.local;
  binding->inner = req.inner;
  binding->public_listener = *public_listener;
  const std::uint64_t id = next_bind_id_++;
  bindings_by_port_[(*public_listener)->port()] = binding;
  spawn_accept_loop(binding);

  const Contact public_contact{host_->name(), (*public_listener)->port()};
  (void)conn->send(BindReply{true, public_contact, id, ""}.encode());
  conn->close();  // bind registration is a one-shot exchange
  (void)self;
}

void OuterServer::spawn_accept_loop(std::shared_ptr<Binding> binding) {
  ++active_binds_;
  sim::ListenerPtr listener = binding->public_listener;
  host_->network().engine().spawn(
      "outer@" + host_->name() + ".bind" +
          std::to_string(listener->port()),
      [this, binding, listener](sim::Process& acceptor) {
        accept_loop(acceptor, binding, listener);
      });
}

void OuterServer::accept_loop(sim::Process& self,
                              std::shared_ptr<Binding> binding,
                              sim::ListenerPtr listener) {
  while (true) {
    auto remote = listener->accept(self);
    if (!remote.ok()) {
      --active_binds_;
      return;
    }
    ++stats_.connections;
    auto sock = *remote;
    host_->network().engine().spawn(
        "outer@" + host_->name() + ".fwd",
        [this, sock, binding](sim::Process& bridge) {
          bridge_to_inner(bridge, sock, binding);
        });
  }
}

void OuterServer::bridge_to_inner(sim::Process& self, sim::SocketPtr remote,
                                  std::shared_ptr<Binding> binding) {
  // Per-connection daemon processing.
  self.sleep(params_.per_message_s);
  auto inner = host_->stack().connect(self, binding->inner);
  if (!inner.ok()) {
    kLog.warn("outer@%s: cannot reach inner %s: %s", host_->name().c_str(),
              binding->inner.to_string().c_str(),
              inner.error().to_string().c_str());
    remote->close();
    return;
  }
  ForwardRequest req{binding->target, remote->peer_contact()};
  if (!(*inner)->send(req.encode()).ok()) {
    remote->close();
    return;
  }
  auto reply_frame = (*inner)->recv(self);
  if (!reply_frame.ok()) {
    remote->close();
    return;
  }
  auto reply = ForwardReply::decode(*reply_frame);
  if (!reply.ok() || !reply->ok) {
    remote->close();
    (*inner)->close();
    return;
  }
  spawn_pumps(host_->network().engine(), "outer@" + host_->name() + ".pump",
              remote, *inner, params_, &stats_);
}

}  // namespace wacs::proxy
