// Relay cost model and the byte-pump shared by the outer and inner servers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "simnet/tcp.hpp"

namespace wacs::proxy {

/// Cost of user-level relaying on a proxy host. Calibrated in
/// core/testbeds.cpp against the paper's Table 2 (the ~25 ms proxied latency
/// and the order-of-magnitude LAN bandwidth drop both come from these).
struct RelayParams {
  /// Fixed per-message cost: select() wakeup, scheduling, protocol framing.
  double per_message_s = 0.0;
  /// User-space copy rate through the relay process (two socket crossings).
  double copy_rate_bps = 1e12;
};

/// Shared counters for one relay daemon.
struct RelayStats {
  std::uint64_t connections = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Copies frames from `from` to `to` until EOF or error, charging the relay
/// cost per frame. Runs inside a dedicated sim process (one per direction).
/// Closes `to` when `from` reaches EOF.
void pump(sim::Process& self, sim::SocketPtr from, sim::SocketPtr to,
          const RelayParams& params, RelayStats* stats);

/// Spawns the two pump processes for an established relay pair.
void spawn_pumps(sim::Engine& engine, const std::string& tag,
                 sim::SocketPtr a, sim::SocketPtr b, const RelayParams& params,
                 RelayStats* stats);

}  // namespace wacs::proxy
