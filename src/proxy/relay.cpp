#include "proxy/relay.hpp"

#include "common/telemetry.hpp"

namespace wacs::proxy {

void pump(sim::Process& self, sim::SocketPtr from, sim::SocketPtr to,
          const RelayParams& params, RelayStats* stats) {
  static telemetry::Counter& msgs = telemetry::metrics().counter("relay.msgs");
  static telemetry::Counter& bytes = telemetry::metrics().counter("relay.bytes");
  static telemetry::Histogram& hop_ms =
      telemetry::metrics().histogram("proxy.hop_ms");
  static telemetry::Gauge& active =
      telemetry::metrics().gauge("relay.pumps.active");
  active.add(1);
  while (true) {
    auto frame = from->recv(self);
    if (!frame.ok()) {
      // A reset must cross the relay as a reset: a bridged endpoint that
      // saw only an orderly EOF could not tell a crashed peer from a
      // finished one, and the recovery layers key off kConnectionReset.
      if (frame.error().code() == ErrorCode::kConnectionReset) to->abort();
      break;
    }
    const telemetry::MsgMeta rx = from->last_rx_meta();
    hop_ms.observe(sim::to_ms(self.engine().now() - rx.sent_at));
    msgs.add();
    bytes.add(frame->size());
    // Store-and-forward: the relay holds the whole frame while it is being
    // processed, which is what Nexus Proxy did with RSR messages.
    const double cost = params.per_message_s +
                        static_cast<double>(frame->size()) /
                            params.copy_rate_bps;
    if (stats != nullptr) {
      ++stats->messages;
      stats->bytes += frame->size();
    }
    // The hop span parents to the *sender's* context (stamped on the frame)
    // and is open across the forwarding send, so the next hop chains to it:
    // a message is reconstructable client → outer → inner → endpoint.
    telemetry::Span span("relay", "relay.hop", rx.ctx);
    if (span.active()) span.arg("bytes", frame->size());
    if (cost > 0) self.sleep(cost);
    Status sent = to->send(std::move(*frame));
    if (!sent.ok()) {
      if (sent.error().code() == ErrorCode::kConnectionReset) from->abort();
      break;
    }
  }
  active.add(-1);
  to->close();
  from->close();
}

void spawn_pumps(sim::Engine& engine, const std::string& tag,
                 sim::SocketPtr a, sim::SocketPtr b, const RelayParams& params,
                 RelayStats* stats) {
  engine.spawn(tag + ".fwd", [a, b, params, stats](sim::Process& self) {
    pump(self, a, b, params, stats);
  });
  engine.spawn(tag + ".rev", [a, b, params, stats](sim::Process& self) {
    pump(self, b, a, params, stats);
  });
}

}  // namespace wacs::proxy
