#include "proxy/relay.hpp"

namespace wacs::proxy {

void pump(sim::Process& self, sim::SocketPtr from, sim::SocketPtr to,
          const RelayParams& params, RelayStats* stats) {
  while (true) {
    auto frame = from->recv(self);
    if (!frame.ok()) {
      // A reset must cross the relay as a reset: a bridged endpoint that
      // saw only an orderly EOF could not tell a crashed peer from a
      // finished one, and the recovery layers key off kConnectionReset.
      if (frame.error().code() == ErrorCode::kConnectionReset) to->abort();
      break;
    }
    // Store-and-forward: the relay holds the whole frame while it is being
    // processed, which is what Nexus Proxy did with RSR messages.
    const double cost = params.per_message_s +
                        static_cast<double>(frame->size()) /
                            params.copy_rate_bps;
    if (cost > 0) self.sleep(cost);
    if (stats != nullptr) {
      ++stats->messages;
      stats->bytes += frame->size();
    }
    Status sent = to->send(std::move(*frame));
    if (!sent.ok()) {
      if (sent.error().code() == ErrorCode::kConnectionReset) from->abort();
      break;
    }
  }
  to->close();
  from->close();
}

void spawn_pumps(sim::Engine& engine, const std::string& tag,
                 sim::SocketPtr a, sim::SocketPtr b, const RelayParams& params,
                 RelayStats* stats) {
  engine.spawn(tag + ".fwd", [a, b, params, stats](sim::Process& self) {
    pump(self, a, b, params, stats);
  });
  engine.spawn(tag + ".rev", [a, b, params, stats](sim::Process& self) {
    pump(self, b, a, params, stats);
  });
}

}  // namespace wacs::proxy
