// Nexus Proxy wire protocol.
//
// Small framed control messages exchanged between the proxy client library,
// the outer server, and the inner server (paper §3, Figures 3-4). After the
// control handshake on a relay connection succeeds, every subsequent frame
// on that connection is opaque payload and is copied through verbatim.
//
// The same encoding is used by the simulated proxy (src/proxy) and — with
// stream framing added — by the real-socket proxy (src/nxproxy), so protocol
// tests cover both.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/contact.hpp"
#include "common/error.hpp"

namespace wacs::proxy {

enum class MsgType : std::uint8_t {
  kConnectRequest = 1,  ///< client → outer: relay an active open (Fig 3)
  kConnectReply = 2,    ///< outer → client
  kBindRequest = 3,     ///< client → outer: register a passive open (Fig 4)
  kBindReply = 4,       ///< outer → client: the public contact to advertise
  kForwardRequest = 5,  ///< outer → inner: dial the registered endpoint
  kForwardReply = 6,    ///< inner → outer
  kAcceptNotice = 7,    ///< inner → bound client: true peer of this link
  kBusy = 8,            ///< daemon → peer: admission gate shed this connection
  kBindRenewRequest = 9,  ///< client → outer: extend a binding's lease
  kBindRenewReply = 10,   ///< outer → client
};

/// Ceiling on a *control* frame (the pre-splice handshake surface). Every
/// control message is a few hundred bytes at most; a network-facing daemon
/// must reject an absurd length prefix before allocating for it, so this is
/// far below the generic net::kMaxFrameBytes relay limit.
constexpr std::uint32_t kMaxControlFrameBytes = 4096;

/// Reads just the type tag of a frame.
Result<MsgType> peek_type(const Bytes& frame);

struct ConnectRequest {
  Contact target;

  Bytes encode() const;
  static Result<ConnectRequest> decode(const Bytes& frame);
};

struct ConnectReply {
  bool ok = false;
  std::string error;  ///< empty when ok

  Bytes encode() const;
  static Result<ConnectReply> decode(const Bytes& frame);
};

struct BindRequest {
  Contact local;  ///< the client's private listener (inner dials this)
  Contact inner;  ///< the inner server responsible for the client's site

  Bytes encode() const;
  static Result<BindRequest> decode(const Bytes& frame);
};

struct BindReply {
  bool ok = false;
  Contact public_contact;  ///< advertise this instead of `local`
  std::uint64_t bind_id = 0;
  std::string error;
  /// Lease on the binding in milliseconds; 0 = the binding never expires.
  /// A leased binding must be renewed (BindRenewRequest) before the lease
  /// runs out or the outer server reaps it, listener and all.
  /// On the wire this is an OPTIONAL trailing u32: a zero lease encodes
  /// byte-identically to the pre-lease format, and a decoder treats a frame
  /// ending after `error` as lease_ms = 0 — so lease-free peers (the
  /// simulated relay, old clients) interoperate unchanged.
  std::uint32_t lease_ms = 0;

  Bytes encode() const;
  static Result<BindReply> decode(const Bytes& frame);
};

struct ForwardRequest {
  Contact target;  ///< the registered private endpoint
  Contact peer;    ///< the true remote peer (for AcceptNotice)

  Bytes encode() const;
  static Result<ForwardRequest> decode(const Bytes& frame);
};

struct ForwardReply {
  bool ok = false;
  std::string error;

  Bytes encode() const;
  static Result<ForwardReply> decode(const Bytes& frame);
};

struct AcceptNotice {
  Contact peer;

  Bytes encode() const;
  static Result<AcceptNotice> decode(const Bytes& frame);
};

/// Sent instead of the expected reply when a daemon's admission gate sheds
/// the connection: the peer should back off and retry instead of hanging.
struct Busy {
  std::uint32_t retry_after_ms = 0;  ///< suggested backoff; 0 = caller's choice

  Bytes encode() const;
  static Result<Busy> decode(const Bytes& frame);
};

/// Keepalive for a leased binding: extends the lease by the daemon's
/// configured lease duration.
struct BindRenewRequest {
  std::uint64_t bind_id = 0;

  Bytes encode() const;
  static Result<BindRenewRequest> decode(const Bytes& frame);
};

struct BindRenewReply {
  bool ok = false;
  std::uint32_t lease_ms = 0;  ///< the renewed lease duration when ok
  std::string error;

  Bytes encode() const;
  static Result<BindRenewReply> decode(const Bytes& frame);
};

}  // namespace wacs::proxy
