#include "proxy/client.hpp"

#include "common/bytes.hpp"
#include "simnet/sim_retry.hpp"

namespace wacs::proxy {
namespace {

/// Deterministic jitter seed per (host, operation) pair so two clients on
/// the same host never share a backoff sequence, yet every run of the same
/// configuration replays identically.
std::uint64_t retry_seed(const sim::Host& host, const std::string& what) {
  return fnv1a(to_bytes(host.name() + ">" + what));
}

}  // namespace

ProxyClient::ProxyClient(sim::Host& host, const Env& env) : host_(&host) {
  auto outer = env.get_contact(env_keys::kProxyOuterServer);
  auto inner = env.get_contact(env_keys::kProxyInnerServer);
  WACS_CHECK_MSG(outer.ok() && inner.ok(),
                 "malformed NEXUS_PROXY_* environment");
  // The paper's rule: the proxy is used iff both variables are defined.
  if (outer->has_value() && inner->has_value()) {
    configured_ = true;
    outer_ = **outer;
    inner_ = **inner;
  }
}

ProxyClient::ProxyClient(sim::Host& host, Contact outer, Contact inner)
    : host_(&host),
      configured_(true),
      outer_(std::move(outer)),
      inner_(std::move(inner)) {}

Result<sim::SocketPtr> ProxyClient::connect_once(sim::Process& self,
                                                 const Contact& target) {
  auto conn = host_->stack().connect(self, outer_);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "cannot reach outer server: " + conn.error().message());
  }
  if (auto sent = (*conn)->send(ConnectRequest{target}.encode()); !sent.ok()) {
    return sent.error();
  }
  auto frame = (*conn)->recv_deadline(
      self, self.engine().now() + sim::from_sec(control_timeout_s_));
  if (!frame.ok()) return frame.error();
  auto reply = ConnectReply::decode(*frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) {
    (*conn)->close();
    return Error(ErrorCode::kConnectionRefused,
                 "outer server: " + reply->error);
  }
  return *conn;
}

Result<sim::SocketPtr> ProxyClient::nx_connect(sim::Process& self,
                                               const Contact& target) {
  WACS_CHECK_MSG(configured_, "nx_connect without proxy configuration");
  return sim::retry_in_sim(
      self, retry_, retry_seed(*host_, "connect>" + target.to_string()),
      [&] { return connect_once(self, target); });
}

Result<NxProxyListenerPtr> ProxyClient::nx_bind(sim::Process& self) {
  WACS_CHECK_MSG(configured_, "nx_bind without proxy configuration");
  // Private listener the inner server will dial (Fig 4 step 4-2). Created
  // once; only the outer-server registration is retried.
  auto local = host_->stack().listen(0);
  if (!local.ok()) return local.error();

  auto public_contact = sim::retry_in_sim(
      self, retry_, retry_seed(*host_, "bind"),
      [&]() -> Result<Contact> {
        auto conn = host_->stack().connect(self, outer_);
        if (!conn.ok()) {
          return Error(conn.error().code(),
                       "cannot reach outer server: " + conn.error().message());
        }
        BindRequest req{Contact{host_->name(), (*local)->port()}, inner_};
        if (auto sent = (*conn)->send(req.encode()); !sent.ok()) {
          return sent.error();
        }
        auto frame = (*conn)->recv_deadline(
            self, self.engine().now() + sim::from_sec(control_timeout_s_));
        (*conn)->close();
        if (!frame.ok()) return frame.error();
        auto reply = BindReply::decode(*frame);
        if (!reply.ok()) return reply.error();
        if (!reply->ok) {
          return Error(ErrorCode::kUnavailable, "outer server: " + reply->error);
        }
        return reply->public_contact;
      });
  if (!public_contact.ok()) return public_contact.error();
  return NxProxyListenerPtr(new NxProxyListener(
      std::move(*local), *public_contact, control_timeout_s_));
}

Result<sim::SocketPtr> NxProxyListener::nx_accept(sim::Process& self,
                                                  Contact* true_peer) {
  while (true) {
    auto conn = local_->accept(self);
    if (!conn.ok()) return conn.error();
    // First frame is the AcceptNotice preamble from the inner server. No
    // deadline here: on a congested shared LAN the tiny preamble can queue
    // many seconds behind bulk transfers, and dropping an established
    // relayed connection on a false timeout silently discards the remote
    // peer's in-flight data (the dialer is never told). An inner server
    // that dies still wakes this recv — process death and link faults
    // surface as a reset, orderly teardown as EOF — so a failure is scoped
    // to this one connection: drop it and accept the next instead of
    // tearing down the whole endpoint.
    auto frame = (*conn)->recv(self);
    if (!frame.ok()) continue;
    auto notice = AcceptNotice::decode(*frame);
    if (!notice.ok()) continue;
    if (true_peer != nullptr) *true_peer = notice->peer;
    return *conn;
  }
}

}  // namespace wacs::proxy
