// The Nexus Proxy client library — the paper's Table 1.
//
//   NXProxyConnect()  sends a connect request to the outer server and
//                     returns a descriptor communicating with the target.
//   NXProxyBind()     sends a bind request and returns a descriptor the
//                     client can listen on, plus the *public* contact that
//                     peers must dial (the outer server rewrite).
//   NXProxyAccept()   accepts a relayed connection on that descriptor.
//
// The library is configured per process through the same environment
// variables Globus used: NEXUS_PROXY_OUTER_SERVER / NEXUS_PROXY_INNER_SERVER.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "common/retry.hpp"
#include "proxy/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::proxy {

/// A passively-opened proxy endpoint: the local listener plus the public
/// contact the outer server advertises on our behalf.
class NxProxyListener {
 public:
  /// The address other processes must connect to (outer server public port).
  const Contact& public_contact() const { return public_contact_; }
  /// The private listener the inner server dials; exposed for tests.
  std::uint16_t local_port() const { return local_->port(); }

  /// Accepts one relayed connection. The returned socket's reported peer is
  /// the inner server; `true_peer` (from the AcceptNotice preamble) is the
  /// original remote endpoint. The AcceptNotice preamble is read under a
  /// deadline so a dying inner server cannot wedge the accept loop.
  Result<sim::SocketPtr> nx_accept(sim::Process& self, Contact* true_peer = nullptr);

  void close() { local_->close(); }

 private:
  friend class ProxyClient;
  NxProxyListener(sim::ListenerPtr local, Contact public_contact,
                  double control_timeout_s)
      : local_(std::move(local)),
        public_contact_(std::move(public_contact)),
        control_timeout_s_(control_timeout_s) {}

  sim::ListenerPtr local_;
  Contact public_contact_;
  double control_timeout_s_;
};

using NxProxyListenerPtr = std::shared_ptr<NxProxyListener>;

/// Per-process client handle for the proxy system.
class ProxyClient {
 public:
  /// Reads NEXUS_PROXY_OUTER_SERVER / NEXUS_PROXY_INNER_SERVER from `env`.
  /// configured() is false when they are absent (direct communication).
  ProxyClient(sim::Host& host, const Env& env);

  /// Explicit contacts (used by daemons and tests).
  ProxyClient(sim::Host& host, Contact outer, Contact inner);

  bool configured() const { return configured_; }
  const Contact& outer() const { return outer_; }
  const Contact& inner() const { return inner_; }

  /// Fig 3: active open through the outer server.
  Result<sim::SocketPtr> nx_connect(sim::Process& self, const Contact& target);

  /// Fig 4: passive open. Registers with the outer server and returns the
  /// listener + public contact.
  Result<NxProxyListenerPtr> nx_bind(sim::Process& self);

  /// Policy for the outer-server control exchanges (connect + request +
  /// reply). Transient failures — outer daemon restarting, WAN flap — are
  /// retried with deterministic backoff; permanent refusals pass through.
  void set_retry_policy(RetryPolicy policy) { retry_ = std::move(policy); }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Bound on any single control-reply wait (virtual seconds).
  void set_control_timeout_s(double s) { control_timeout_s_ = s; }
  double control_timeout_s() const { return control_timeout_s_; }

 private:
  Result<sim::SocketPtr> connect_once(sim::Process& self,
                                      const Contact& target);

  sim::Host* host_;
  bool configured_ = false;
  Contact outer_;
  Contact inner_;
  RetryPolicy retry_;
  double control_timeout_s_ = 10.0;
};

}  // namespace wacs::proxy
