// nxproxy-ping: measure a deployed Nexus Proxy pair, Table-2 style.
//
//   nxproxy-ping --outer HOST:PORT --target HOST:PORT [--size N] [--count N]
//     Active open (Fig 3): round-trip to a peer running `nxproxy-ping
//     --echo PORT` at the target, via the outer server.
//
//   nxproxy-ping --echo PORT
//     Plain TCP echo server, the measurement peer.
//
//   nxproxy-ping --outer HOST:PORT --inner HOST:PORT --serve
//     Passive open (Fig 4): binds through the proxy, prints the public
//     contact to give the --outer/--target side, and echoes.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "nxproxy/client.hpp"

using namespace wacs;

namespace {

int run_echo(std::uint16_t port) {
  auto listener = net::TcpListener::bind("0.0.0.0", port);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.error().to_string().c_str());
    return 1;
  }
  std::printf("echo server on port %u\n",
              static_cast<unsigned>(listener->port()));
  while (true) {
    auto conn = listener->accept();
    if (!conn.ok()) return 0;
    while (true) {
      auto chunk = conn->read_some(1 << 16);
      if (!chunk.ok()) break;
      if (!conn->write_all(*chunk).ok()) break;
    }
  }
}

int run_serve(const Contact& outer, const Contact& inner) {
  auto bound = nxproxy::NXProxyBind(outer, inner, "0.0.0.0");
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.error().to_string().c_str());
    return 1;
  }
  std::printf("bound through the proxy; peers should dial %s\n",
              bound->public_contact.to_string().c_str());
  while (true) {
    auto accepted = nxproxy::NXProxyAccept(*bound);
    if (!accepted.ok()) return 0;
    std::printf("accepted relayed connection from %s\n",
                accepted->second.to_string().c_str());
    auto& conn = accepted->first;
    while (true) {
      auto chunk = conn.read_some(1 << 16);
      if (!chunk.ok()) break;
      if (!conn.write_all(*chunk).ok()) break;
    }
  }
}

int run_ping(const Contact& outer, const Contact& target, std::size_t size,
             int count) {
  auto sock = nxproxy::NXProxyConnect(outer, target);
  if (!sock.ok()) {
    std::fprintf(stderr, "%s\n", sock.error().to_string().c_str());
    return 1;
  }
  Bytes payload = pattern_bytes(size, 1);
  using Clock = std::chrono::steady_clock;
  double total_us = 0, best_us = 1e18;
  for (int i = 0; i < count; ++i) {
    const auto start = Clock::now();
    if (!sock->write_all(payload).ok()) return 1;
    auto back = sock->read_exact(size);
    if (!back.ok()) return 1;
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    total_us += us;
    best_us = std::min(best_us, us);
  }
  std::printf("%d round trips of %zu bytes via %s: avg %.1f us, best %.1f "
              "us, %.2f MB/s\n",
              count, size, outer.to_string().c_str(), total_us / count,
              best_us, 2.0 * static_cast<double>(size) * count /
                           (total_us / 1e6) / 1e6);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outer_text, inner_text, target_text;
  std::size_t size = 64;
  int count = 100;
  int echo_port = -1;
  bool serve = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--outer") {
      outer_text = next();
    } else if (arg == "--inner") {
      inner_text = next();
    } else if (arg == "--target") {
      target_text = next();
    } else if (arg == "--size") {
      size = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--count") {
      count = std::atoi(next());
    } else if (arg == "--echo") {
      echo_port = std::atoi(next());
    } else if (arg == "--serve") {
      serve = true;
    } else {
      std::fprintf(stderr, "see the file header for usage\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  if (echo_port >= 0) return run_echo(static_cast<std::uint16_t>(echo_port));

  auto outer = Contact::parse(outer_text);
  if (!outer.ok()) {
    std::fprintf(stderr, "--outer: %s\n", outer.error().to_string().c_str());
    return 2;
  }
  if (serve) {
    auto inner = Contact::parse(inner_text);
    if (!inner.ok()) {
      std::fprintf(stderr, "--inner: %s\n",
                   inner.error().to_string().c_str());
      return 2;
    }
    return run_serve(*outer, *inner);
  }
  auto target = Contact::parse(target_text);
  if (!target.ok()) {
    std::fprintf(stderr, "--target: %s\n",
                 target.error().to_string().c_str());
    return 2;
  }
  if (size == 0 || count <= 0) {
    std::fprintf(stderr, "bad --size/--count\n");
    return 2;
  }
  return run_ping(*outer, *target, size, count);
}
