// bench-diff — compare BENCH_*.json reports and gate on regressions.
//
//   bench-diff <baseline.json> <current.json> [options]
//   bench-diff --baseline-dir <dir> <current-dir> [options]
//
// Options:
//   --tol SUFFIX=REL   relative tolerance for double fields whose dotted
//                      path ends in SUFFIX (repeatable); everything else
//                      compares exactly — same-seed runs are deterministic
//   --ignore SUFFIX    exclude fields (repeatable; "git" is always ignored)
//   --strict-keys      fail on keys added since the baseline (default: warn)
//   --out FILE         also write the markdown verdict to FILE
//
// Directory mode compares every BENCH_*.json in the baseline dir against
// the same-named file in the current dir; a baseline without a counterpart
// is a failure (a bench silently disappearing is a regression too).
//
// Exit codes: 0 = pass, 1 = regression, 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bench_diff.hpp"
#include "common/json.hpp"

namespace {

namespace fs = std::filesystem;
using wacs::analysis::DiffOptions;
using wacs::analysis::DiffResult;

struct Options {
  std::string baseline;  // file, or dir in directory mode
  std::string current;
  std::string out;
  bool dir_mode = false;
  DiffOptions diff;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--tol SUFFIX=REL] "
               "[--ignore SUFFIX] [--strict-keys] [--out FILE]\n"
               "       %s --baseline-dir <dir> <current-dir> [options]\n",
               argv0, argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.dir_mode = true;
      opt.baseline = v;
    } else if (arg == "--tol") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      opt.diff.ratio_tol.emplace_back(spec.substr(0, eq),
                                      std::atof(spec.c_str() + eq + 1));
    } else if (arg == "--ignore") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.diff.ignore.push_back(v);
    } else if (arg == "--strict-keys") {
      opt.diff.allow_new_keys = false;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.out = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (opt.dir_mode) {
    if (positional.size() != 1) return false;
    opt.current = positional[0];
  } else {
    if (positional.size() != 2) return false;
    opt.baseline = positional[0];
    opt.current = positional[1];
  }
  return true;
}

bool load_json(const std::string& path, wacs::json::Value& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = wacs::json::Value::parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 parsed.error().to_string().c_str());
    return false;
  }
  out = std::move(*parsed);
  return true;
}

/// (baseline path, current path) pairs to compare.
using Pair = std::pair<std::string, std::string>;

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  std::string markdown = "## bench-diff verdict\n\n";
  bool regression = false;

  std::vector<Pair> pairs;
  if (!opt.dir_mode) {
    pairs.emplace_back(opt.baseline, opt.current);
  } else {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(opt.baseline, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        names.push_back(name);
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot list %s: %s\n", opt.baseline.c_str(),
                   ec.message().c_str());
      return 2;
    }
    if (names.empty()) {
      std::fprintf(stderr, "no BENCH_*.json in %s\n", opt.baseline.c_str());
      return 2;
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      const fs::path current = fs::path(opt.current) / name;
      if (!fs::exists(current)) {
        markdown += "### " + name +
                    "\n\n**FAIL** — current report missing (" +
                    current.string() + ")\n\n";
        std::fprintf(stderr, "FAIL %s: current report missing\n",
                     name.c_str());
        regression = true;
        continue;
      }
      pairs.emplace_back((fs::path(opt.baseline) / name).string(),
                         current.string());
    }
  }

  for (const auto& [base_path, cur_path] : pairs) {
    wacs::json::Value baseline;
    wacs::json::Value current;
    if (!load_json(base_path, baseline) || !load_json(cur_path, current)) {
      return 2;
    }
    const std::string title =
        opt.dir_mode ? fs::path(base_path).filename().string()
                     : base_path + " vs " + cur_path;
    const DiffResult result =
        wacs::analysis::diff_reports(baseline, current, opt.diff);
    markdown += result.markdown(title) + "\n";
    std::fprintf(stderr, "%s %s: %zu fields, %zu notable\n",
                 result.pass() ? "PASS" : "FAIL", title.c_str(),
                 result.compared, result.diffs.size());
    if (!result.pass()) regression = true;
  }

  std::printf("%s", markdown.c_str());
  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 2;
    }
    out << markdown;
  }
  return regression ? 1 : 0;
}
