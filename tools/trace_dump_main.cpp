// trace-dump — pretty-print and filter telemetry trace JSONL files.
//
//   trace-dump <trace.jsonl> [--cat CAT] [--name SUBSTR] [--track SUBSTR]
//              [--trace ID] [--limit N] [--summary] [--strict]
//
// Filters compose (AND). --summary aggregates span durations per (cat,name)
// instead of listing events: count, mean, min, max milliseconds — a quick
// "where did the virtual time go" without loading Perfetto.
//
// Malformed lines (unparseable JSON, non-object documents, events without a
// type) are skipped and counted — traces cut short by a crash end mid-line
// and must still dump. --strict turns any malformed line into exit code 1
// for use in pipelines that require a clean trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace {

struct Options {
  std::string path;
  std::string cat;
  std::string name;
  std::string track;
  std::int64_t trace_id = 0;
  std::size_t limit = 0;  // 0 = unlimited
  bool summary = false;
  bool strict = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--cat CAT] [--name SUBSTR] "
               "[--track SUBSTR] [--trace ID] [--limit N] [--summary] "
               "[--strict]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cat") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.cat = v;
    } else if (arg == "--name") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.name = v;
    } else if (arg == "--track") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.track = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.trace_id = std::atoll(v);
    } else if (arg == "--limit") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.limit = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--summary") {
      opt.summary = true;
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      return false;
    }
  }
  return !opt.path.empty();
}

std::string field(const wacs::json::Value& e, const char* key) {
  const wacs::json::Value* v = e.find(key);
  return v == nullptr ? "" : v->as_string();
}

std::int64_t int_field(const wacs::json::Value& e, const char* key) {
  const wacs::json::Value* v = e.find(key);
  return v == nullptr ? 0 : v->as_int();
}

bool matches(const wacs::json::Value& e, const Options& opt) {
  if (!opt.cat.empty() && field(e, "cat") != opt.cat) return false;
  if (!opt.name.empty() &&
      field(e, "name").find(opt.name) == std::string::npos) {
    return false;
  }
  if (!opt.track.empty() &&
      field(e, "track").find(opt.track) == std::string::npos) {
    return false;
  }
  if (opt.trace_id != 0 && int_field(e, "trace") != opt.trace_id) return false;
  return true;
}

void print_event(const wacs::json::Value& e) {
  const std::string type = field(e, "type");
  const double ts_ms = static_cast<double>(int_field(e, "ts")) * 1e-6;
  char head[160];
  std::snprintf(head, sizeof head, "%12.3f ms  %-7s %-10s %-24s",
                ts_ms, type.c_str(), field(e, "cat").c_str(),
                field(e, "name").c_str());
  std::string line = head;
  if (type == "span") {
    char dur[48];
    std::snprintf(dur, sizeof dur, " %10.3f ms",
                  static_cast<double>(int_field(e, "dur")) * 1e-6);
    line += dur;
  } else {
    line += std::string(14, ' ');
  }
  line += "  " + field(e, "track");
  if (const wacs::json::Value* args = e.find("args");
      args != nullptr && !args->members().empty()) {
    line += "  " + args->dump();
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  std::ifstream in(opt.path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.path.c_str());
    return 1;
  }

  std::map<std::string, wacs::RunningStats> summary;  // "cat name" -> dur ms
  std::size_t printed = 0, total = 0, malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = wacs::json::Value::parse(line);
    if (!parsed.ok() ||
        parsed->type() != wacs::json::Value::Type::kObject ||
        field(*parsed, "type").empty()) {
      ++malformed;
      continue;
    }
    ++total;
    if (!matches(*parsed, opt)) continue;
    if (opt.summary) {
      if (field(*parsed, "type") == "span") {
        summary[field(*parsed, "cat") + " " + field(*parsed, "name")].add(
            static_cast<double>(int_field(*parsed, "dur")) * 1e-6);
      }
      continue;
    }
    print_event(*parsed);
    if (opt.limit != 0 && ++printed >= opt.limit) break;
  }

  if (opt.summary) {
    wacs::TextTable table({"span", "count", "mean ms", "min ms", "max ms",
                           "total ms"});
    for (const auto& [key, s] : summary) {
      char mean[32], mn[32], mx[32], sum[32];
      std::snprintf(mean, sizeof mean, "%.3f", s.mean());
      std::snprintf(mn, sizeof mn, "%.3f", s.min());
      std::snprintf(mx, sizeof mx, "%.3f", s.max());
      std::snprintf(sum, sizeof sum, "%.3f", s.sum());
      table.add_row({key, std::to_string(s.count()), mean, mn, mx, sum});
    }
    std::printf("%s", table.to_string().c_str());
  }
  if (malformed != 0) {
    std::fprintf(stderr, "warning: %zu malformed lines skipped\n", malformed);
  }
  std::fprintf(stderr, "%zu events read from %s\n", total, opt.path.c_str());
  return opt.strict && malformed != 0 ? 1 : 0;
}
