// nxproxy-outer: the Nexus Proxy outer server as a deployable daemon.
//
//   nxproxy-outer --port 9911 --advertise outer.example.org
//                 [--bind 0.0.0.0] [--allow host[:port]]... [--metrics PORT]
//
// Runs until SIGINT/SIGTERM. Deploy outside the firewall; clients use
// NXProxyConnect/NXProxyBind against <advertise>:<port>. Without --allow
// the relay forwards anywhere (the paper's behaviour); with one or more
// --allow flags it is deny-by-default.
//
// SIGUSR1 writes a wacs-prof JSON profile dump (scope stacks + stage
// histograms) to --prof-dump PATH (default nxproxy-outer.prof.json) without
// stopping the daemon; render it with `wacs-prof PATH`. Scope recording is
// on whenever the daemon runs with WACS_PROF=1 in the environment or
// --prof on the command line.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>

#include "common/log.hpp"
#include "nxproxy/daemon.hpp"
#include "nxproxy/metrics_http.hpp"
#include "prof/prof.hpp"

namespace {
std::binary_semaphore g_stop{0};
volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;
// Only async-signal-safe work here: set a flag; the main loop polls both
// flags with a timed semaphore wait, so the release is best-effort.
void handle_signal(int) {
  g_stop_requested = 1;
  g_stop.release();
}
void handle_dump_signal(int) { g_dump_requested = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::string bind_ip = "0.0.0.0";
  std::string advertise;
  int port = 9911;
  int metrics_port = -1;
  std::string prof_dump_path = "nxproxy-outer.prof.json";
  nxproxy::RelayAccessPolicy policy;
  nxproxy::DaemonOptions daemon_options;
  (void)prof::enable_from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--bind") {
      bind_ip = next();
    } else if (arg == "--advertise") {
      advertise = next();
    } else if (arg == "--allow") {
      const std::string target = next();
      const auto colon = target.rfind(':');
      if (colon == std::string::npos) {
        policy.allow_target(target);
      } else {
        policy.allow_target(target.substr(0, colon),
                            static_cast<std::uint16_t>(
                                std::atoi(target.c_str() + colon + 1)));
      }
    } else if (arg == "--metrics") {
      metrics_port = std::atoi(next());
    } else if (arg == "--handshake-timeout-ms") {
      daemon_options.handshake_timeout_ms = std::atoi(next());
    } else if (arg == "--idle-timeout-ms") {
      daemon_options.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--max-conns") {
      daemon_options.max_connections = std::atoi(next());
    } else if (arg == "--lease-ms") {
      daemon_options.bind_lease_ms = std::atoi(next());
    } else if (arg == "--drain-ms") {
      daemon_options.drain_ms = std::atoi(next());
    } else if (arg == "--no-keepalive") {
      daemon_options.tcp_keepalive = false;
    } else if (arg == "--prof") {
      prof::enable();
    } else if (arg == "--prof-dump") {
      prof_dump_path = next();
    } else if (arg == "--verbose") {
      log::set_level(log::Level::kInfo);
    } else {
      std::fprintf(stderr,
                   "usage: %s --port N --advertise HOST [--bind IP] "
                   "[--allow HOST[:PORT]]... [--metrics PORT] "
                   "[--handshake-timeout-ms N] [--idle-timeout-ms N] "
                   "[--max-conns N] [--lease-ms N] [--drain-ms N] "
                   "[--no-keepalive] [--prof] "
                   "[--prof-dump PATH] [--verbose]\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (advertise.empty()) advertise = bind_ip;
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port\n");
    return 2;
  }

  nxproxy::OuterDaemon daemon(bind_ip, static_cast<std::uint16_t>(port),
                              advertise, policy, daemon_options);
  if (auto s = daemon.start(); !s.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("nxproxy-outer listening on %s:%d, advertising %s\n",
              bind_ip.c_str(), port, advertise.c_str());
  if (metrics_port >= 0) {
    // Admin endpoint: always loopback — it must never widen the audited
    // relay surface.
    if (auto s = daemon.serve_metrics("127.0.0.1", static_cast<std::uint16_t>(
                                                       metrics_port));
        !s.ok()) {
      std::fprintf(stderr, "cannot serve metrics: %s\n",
                   s.error().to_string().c_str());
      daemon.stop();
      return 1;
    }
    std::printf("metrics on 127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(daemon.metrics_port()));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);
  while (g_stop_requested == 0) {
    // Timed wait instead of a blocking acquire so a SIGUSR1 that arrives
    // without a matching release still gets serviced promptly.
    (void)g_stop.try_acquire_for(std::chrono::milliseconds(200));
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      const std::string body = nxproxy::profile_dump(daemon.stats(), "outer");
      if (prof::write_file(prof_dump_path, body)) {
        std::printf("profile dump written to %s\n", prof_dump_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write profile dump to %s\n",
                     prof_dump_path.c_str());
      }
    }
  }

  std::printf("shutting down: %llu connections, %llu bytes relayed\n",
              static_cast<unsigned long long>(daemon.stats().connections.load()),
              static_cast<unsigned long long>(
                  daemon.stats().bytes_relayed.load()));
  daemon.stop();
  return 0;
}
