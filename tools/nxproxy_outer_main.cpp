// nxproxy-outer: the Nexus Proxy outer server as a deployable daemon.
//
//   nxproxy-outer --port 9911 --advertise outer.example.org
//                 [--bind 0.0.0.0] [--allow host[:port]]... [--metrics PORT]
//
// Runs until SIGINT/SIGTERM. Deploy outside the firewall; clients use
// NXProxyConnect/NXProxyBind against <advertise>:<port>. Without --allow
// the relay forwards anywhere (the paper's behaviour); with one or more
// --allow flags it is deny-by-default.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>

#include "common/log.hpp"
#include "nxproxy/daemon.hpp"

namespace {
std::binary_semaphore g_stop{0};
void handle_signal(int) { g_stop.release(); }
}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::string bind_ip = "0.0.0.0";
  std::string advertise;
  int port = 9911;
  int metrics_port = -1;
  nxproxy::RelayAccessPolicy policy;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--bind") {
      bind_ip = next();
    } else if (arg == "--advertise") {
      advertise = next();
    } else if (arg == "--allow") {
      const std::string target = next();
      const auto colon = target.rfind(':');
      if (colon == std::string::npos) {
        policy.allow_target(target);
      } else {
        policy.allow_target(target.substr(0, colon),
                            static_cast<std::uint16_t>(
                                std::atoi(target.c_str() + colon + 1)));
      }
    } else if (arg == "--metrics") {
      metrics_port = std::atoi(next());
    } else if (arg == "--verbose") {
      log::set_level(log::Level::kInfo);
    } else {
      std::fprintf(stderr,
                   "usage: %s --port N --advertise HOST [--bind IP] "
                   "[--allow HOST[:PORT]]... [--metrics PORT] [--verbose]\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (advertise.empty()) advertise = bind_ip;
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port\n");
    return 2;
  }

  nxproxy::OuterDaemon daemon(bind_ip, static_cast<std::uint16_t>(port),
                              advertise, policy);
  if (auto s = daemon.start(); !s.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("nxproxy-outer listening on %s:%d, advertising %s\n",
              bind_ip.c_str(), port, advertise.c_str());
  if (metrics_port >= 0) {
    // Admin endpoint: always loopback — it must never widen the audited
    // relay surface.
    if (auto s = daemon.serve_metrics("127.0.0.1", static_cast<std::uint16_t>(
                                                       metrics_port));
        !s.ok()) {
      std::fprintf(stderr, "cannot serve metrics: %s\n",
                   s.error().to_string().c_str());
      daemon.stop();
      return 1;
    }
    std::printf("metrics on 127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(daemon.metrics_port()));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  g_stop.acquire();

  std::printf("shutting down: %llu connections, %llu bytes relayed\n",
              static_cast<unsigned long long>(daemon.stats().connections.load()),
              static_cast<unsigned long long>(
                  daemon.stats().bytes_relayed.load()));
  daemon.stop();
  return 0;
}
