// nxproxy-inner: the Nexus Proxy inner server as a deployable daemon.
//
//   nxproxy-inner --port 9900 [--bind 0.0.0.0] [--metrics PORT] [--verbose]
//
// Runs until SIGINT/SIGTERM. Deploy inside the firewall and open exactly
// one inbound rule: <outer host> -> <this host>:<port> ("only the
// communication port from the outer server to the inner server must be
// opened in advance").
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <semaphore>

#include "common/log.hpp"
#include "nxproxy/daemon.hpp"

namespace {
std::binary_semaphore g_stop{0};
void handle_signal(int) { g_stop.release(); }
}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::string bind_ip = "0.0.0.0";
  int port = 9900;
  int metrics_port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--bind") {
      bind_ip = next();
    } else if (arg == "--metrics") {
      metrics_port = std::atoi(next());
    } else if (arg == "--verbose") {
      log::set_level(log::Level::kInfo);
    } else {
      std::fprintf(stderr,
                   "usage: %s --port N [--bind IP] [--metrics PORT] "
                   "[--verbose]\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port\n");
    return 2;
  }

  nxproxy::InnerDaemon daemon(bind_ip, static_cast<std::uint16_t>(port));
  if (auto s = daemon.start(); !s.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("nxproxy-inner listening on %s:%d (nxport)\n", bind_ip.c_str(),
              port);
  if (metrics_port >= 0) {
    // Admin endpoint: always loopback — it must never widen the audited
    // relay surface.
    if (auto s = daemon.serve_metrics("127.0.0.1", static_cast<std::uint16_t>(
                                                       metrics_port));
        !s.ok()) {
      std::fprintf(stderr, "cannot serve metrics: %s\n",
                   s.error().to_string().c_str());
      daemon.stop();
      return 1;
    }
    std::printf("metrics on 127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(daemon.metrics_port()));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  g_stop.acquire();

  std::printf("shutting down: %llu connections, %llu bytes relayed\n",
              static_cast<unsigned long long>(daemon.stats().connections.load()),
              static_cast<unsigned long long>(
                  daemon.stats().bytes_relayed.load()));
  daemon.stop();
  return 0;
}
