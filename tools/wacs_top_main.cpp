// wacs-top: terminal view over a collector journal.
//
//   wacs-top journal.jsonl            one-shot render of the final state
//   wacs-top --json journal.jsonl     full snapshot as JSON (CI artifact)
//   wacs-top --follow journal.jsonl   live: re-read appended lines and
//                                     redraw until the journal goes final
//
// The journal is the collector's JSONL report log (one SiteReport per
// line). wacs-top replays it through the same TimelineState the live
// collector runs, so what it shows is exactly what the SLO engine saw —
// per-site verdicts, component health, breaches, and sparklines for the
// utilization series. "now" is the newest report timestamp (virtual time),
// so a recorded run renders identically anywhere.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/timeline.hpp"

namespace {

struct Replay {
  wacs::obs::TimelineState state;
  std::int64_t now_ns = 0;
  std::size_t lines = 0;
  std::size_t malformed = 0;
  bool all_final = false;

  void apply_line(const std::string& line) {
    if (line.empty()) return;
    ++lines;
    auto report = wacs::obs::report_from_jsonl(line);
    if (!report.ok()) {
      ++malformed;
      return;
    }
    state.apply(*report);
    if (report->t_ns > now_ns) now_ns = report->t_ns;
  }

  // The run is over once every site's newest report carried the final
  // flag — the agents' parting words before the simulation drained.
  void refresh_final() {
    all_final = !state.sites().empty();
    const auto snapshot = state.snapshot_json(now_ns);
    for (const auto& [name, s] : snapshot.find("sites")->members()) {
      const wacs::json::Value* fin = s.find("final");
      if (fin == nullptr || !fin->as_bool()) all_final = false;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::string path;
  bool as_json = false;
  bool follow = false;
  int interval_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s [--json] [--follow] [--interval MS] "
                   "JOURNAL.jsonl\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--json] [--follow] JOURNAL.jsonl\n",
                 argv[0]);
    return 2;
  }

  Replay replay;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  std::string line;
  do {
    // Drain whatever the collector has appended since the last pass. The
    // stream keeps its offset across passes: clear eof and keep reading.
    in.clear();
    while (std::getline(in, line)) replay.apply_line(line);
    replay.refresh_final();

    if (!as_json) {
      if (follow) std::fputs("\033[2J\033[H", stdout);
      std::fputs(replay.state.render_top(replay.now_ns).c_str(), stdout);
      std::fflush(stdout);
    }
    if (follow && !replay.all_final) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } while (follow && !replay.all_final);

  if (as_json) {
    std::printf("%s\n", replay.state.snapshot_json(replay.now_ns)
                            .dump()
                            .c_str());
  }
  if (replay.malformed > 0) {
    std::fprintf(stderr, "%zu malformed lines skipped\n", replay.malformed);
  }
  return 0;
}
