// wacs-top: terminal view over a collector journal.
//
//   wacs-top journal.jsonl            one-shot render of the final state
//   wacs-top --json journal.jsonl     full snapshot as JSON (CI artifact)
//   wacs-top --follow journal.jsonl   live: re-read appended lines and
//                                     redraw until the journal goes final
//
// The journal is the collector's JSONL report log (one SiteReport per
// line). wacs-top replays it through the same TimelineState the live
// collector runs, so what it shows is exactly what the SLO engine saw —
// per-site verdicts, component health, breaches, and sparklines for the
// utilization series. "now" is the newest report timestamp (virtual time),
// so a recorded run renders identically anywhere.
//
// --follow is robust against the two things a live writer does to the
// file: a half-written last line is buffered until its newline lands
// (never counted malformed), and a rotation (journal moved to `.1`, fresh
// file at the same path) is detected by inode change or truncation and
// followed to the new file.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>

#include "obs/timeline.hpp"

namespace {

struct Replay {
  wacs::obs::TimelineState state;
  std::int64_t now_ns = 0;
  std::size_t lines = 0;
  std::size_t malformed = 0;
  bool all_final = false;

  void apply_line(const std::string& line) {
    if (line.empty()) return;
    ++lines;
    auto report = wacs::obs::report_from_jsonl(line);
    if (!report.ok()) {
      ++malformed;
      return;
    }
    state.apply(*report);
    if (report->t_ns > now_ns) now_ns = report->t_ns;
  }

  // The run is over once every site's newest report carried the final
  // flag — the agents' parting words before the simulation drained.
  void refresh_final() {
    all_final = !state.sites().empty();
    const auto snapshot = state.snapshot_json(now_ns);
    for (const auto& [name, s] : snapshot.find("sites")->members()) {
      const wacs::json::Value* fin = s.find("final");
      if (fin == nullptr || !fin->as_bool()) all_final = false;
    }
  }
};

/// Incremental journal reader: keeps its offset between drain() passes,
/// holds a half-written trailing line until its newline arrives, and
/// reopens from the start when the file at `path` was rotated out from
/// under it (new inode) or truncated.
class JournalTail {
 public:
  explicit JournalTail(std::string path) : path_(std::move(path)) { reopen(); }

  bool ok() const { return static_cast<bool>(in_); }

  /// Reads every newly completed line into `replay`. Returns false when
  /// the file cannot be (re)opened.
  bool drain(Replay& replay) {
    if (rotated()) {
      // The writer moved the journal to `.1` and started fresh: what we
      // already replayed lives in the old generation, the new file starts
      // its own complete lines. A partial tail of the old file is gone
      // with the rotation (the writer rotates on line boundaries).
      pending_.clear();
      reopen();
    }
    if (!in_) return false;
    in_.clear();  // clear eofbit from the previous pass, keep the offset
    std::string line;
    while (std::getline(in_, line)) {
      if (in_.eof()) {
        // No trailing newline yet: the writer is mid-line. Hold the
        // fragment; the next pass reads the rest.
        pending_ += line;
        break;
      }
      if (!pending_.empty()) {
        line = pending_ + line;
        pending_.clear();
      }
      replay.apply_line(line);
    }
    in_.clear();
    const auto pos = in_.tellg();
    if (pos >= 0) read_ = static_cast<off_t>(pos);
    return true;
  }

  /// One-shot mode: the file is complete, so a missing final newline just
  /// means the last line is done — apply what's buffered.
  void flush(Replay& replay) {
    if (!pending_.empty()) {
      replay.apply_line(pending_);
      pending_.clear();
    }
  }

 private:
  struct FileId {
    dev_t dev = 0;
    ino_t ino = 0;
    off_t size = 0;
    bool operator==(const FileId& o) const {
      return dev == o.dev && ino == o.ino;
    }
  };

  static FileId stat_id(const std::string& p) {
    struct stat st {};
    FileId id;
    if (::stat(p.c_str(), &st) == 0) {
      id.dev = st.st_dev;
      id.ino = st.st_ino;
      id.size = st.st_size;
    }
    return id;
  }

  bool rotated() const {
    if (!in_) return false;
    const FileId now = stat_id(path_);
    if (now.ino == 0) return false;  // mid-rename: retry next pass
    if (!(now == opened_)) return true;  // replaced: new inode
    return now.size < read_;  // truncated in place
  }

  void reopen() {
    in_ = std::ifstream(path_);
    opened_ = stat_id(path_);
    read_ = 0;
  }

  std::string path_;
  std::ifstream in_;
  FileId opened_;
  off_t read_ = 0;
  std::string pending_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::string path;
  bool as_json = false;
  bool follow = false;
  int interval_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s [--json] [--follow] [--interval MS] "
                   "JOURNAL.jsonl\n",
                   argv[0]);
      return arg == "--help" ? 0 : 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--json] [--follow] JOURNAL.jsonl\n",
                 argv[0]);
    return 2;
  }

  Replay replay;
  JournalTail tail(path);
  if (!tail.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  do {
    // Drain whatever the collector has appended (or rotated) since the
    // last pass; a half-written trailing line is buffered, not applied.
    if (!tail.drain(replay)) {
      std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
      return 1;
    }
    if (!follow) tail.flush(replay);  // complete file: last line is done
    replay.refresh_final();

    if (!as_json) {
      if (follow) std::fputs("\033[2J\033[H", stdout);
      std::fputs(replay.state.render_top(replay.now_ns).c_str(), stdout);
      std::fflush(stdout);
    }
    if (follow && !replay.all_final) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } while (follow && !replay.all_final);

  if (as_json) {
    std::printf("%s\n", replay.state.snapshot_json(replay.now_ns)
                            .dump()
                            .c_str());
  }
  if (replay.malformed > 0) {
    std::fprintf(stderr, "%zu malformed lines skipped\n", replay.malformed);
  }
  return 0;
}
