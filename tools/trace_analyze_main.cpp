// trace-analyze — offline trace analytics: critical path and timelines.
//
//   trace-analyze <trace.jsonl> [--critical-path] [--timeline]
//                 [--buckets N] [--terminal SPAN] [--trace ID]
//                 [--segments N] [--json FILE]
//
// With no mode flag, --critical-path is implied. --critical-path walks the
// causal chain backwards from the terminal span and prints the per-category
// breakdown of the end-to-end virtual makespan (the categories sum to the
// makespan by construction — see DESIGN.md §11). --timeline renders
// per-rank activity and per-link utilization rows over a bucketed time
// axis. --json writes the selected reports as one deterministic JSON
// document (used by the determinism tests).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/critical_path.hpp"
#include "analysis/timeline.hpp"
#include "analysis/trace.hpp"
#include "common/json.hpp"

namespace {

struct Options {
  std::string path;
  std::string json_out;
  bool critical_path = false;
  bool timeline = false;
  int buckets = 60;
  std::size_t segments = 20;
  wacs::analysis::CriticalPathOptions cp;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--critical-path] [--timeline] "
               "[--buckets N] [--terminal SPAN] [--trace ID] [--segments N] "
               "[--json FILE]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--critical-path") {
      opt.critical_path = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--buckets") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.buckets = std::atoi(v);
    } else if (arg == "--segments") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.segments = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--terminal") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.cp.terminal = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.cp.trace_id = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.json_out = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      return false;
    }
  }
  if (!opt.critical_path && !opt.timeline) opt.critical_path = true;
  return !opt.path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  auto loaded = wacs::analysis::load_trace(opt.path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().to_string().c_str());
    return 1;
  }
  const wacs::analysis::Trace& trace = *loaded;
  std::fprintf(stderr, "%zu events, %zu spans, %zu flows from %s\n",
               trace.events, trace.spans.size(), trace.flows.size(),
               opt.path.c_str());
  if (trace.malformed != 0) {
    std::fprintf(stderr, "warning: %zu malformed lines skipped\n",
                 trace.malformed);
  }

  wacs::json::Value report = wacs::json::Value::object();

  if (opt.critical_path) {
    auto cp = wacs::analysis::critical_path(trace, opt.cp);
    if (!cp.ok()) {
      std::fprintf(stderr, "%s\n", cp.error().to_string().c_str());
      return 1;
    }
    std::printf("%s", cp->render(opt.segments).c_str());
    report.set("critical_path", cp->to_json());
  }

  if (opt.timeline) {
    wacs::analysis::TimelineOptions tl_opt;
    tl_opt.buckets = opt.buckets;
    const wacs::analysis::Timeline tl =
        wacs::analysis::build_timeline(trace, tl_opt);
    if (opt.critical_path) std::printf("\n");
    std::printf("%s", tl.render_ascii().c_str());
    report.set("timeline", tl.to_json());
  }

  if (!opt.json_out.empty()) {
    std::FILE* out = std::fopen(opt.json_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
      return 1;
    }
    const std::string text = report.dump();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }
  return 0;
}
