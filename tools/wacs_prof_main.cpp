// wacs-prof: merge and render host-time profile dumps.
//
//   wacs-prof [--top N] [--json] [--folded] FILE...
//
// FILEs are wacs-prof JSON dumps (written by bench --prof artifact mode or
// a daemon's SIGUSR1 handler) or raw flamegraph folded text; the format is
// sniffed per file. The default report is the top-N hotspot table, the
// per-event-type engine summary, and the lookahead report(s). --folded
// emits flamegraph.pl-compatible text for the merged scopes ("wacs-prof
// --folded *.prof.json | flamegraph.pl > flame.svg"); --json emits the
// whole merged profile as one JSON document (the CI artifact).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/report.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--top N] [--json] [--folded] FILE...\n"
               "  FILE: wacs-prof JSON dump or flamegraph folded text\n",
               argv0);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wacs;
  std::size_t top_n = 20;
  bool as_json = false;
  bool as_folded = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) return usage(argv[0], 2);
      top_n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--folded") {
      as_folded = true;
    } else if (arg == "--help") {
      return usage(argv[0], 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0], 2);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0], 2);

  prof::MergedProfile merged;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "wacs-prof: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto dump = prof::parse_any(buf.str(), path);
    if (!dump.ok()) {
      std::fprintf(stderr, "wacs-prof: %s: %s\n", path.c_str(),
                   dump.error().to_string().c_str());
      return 1;
    }
    merged.add(*dump);
  }

  if (as_json) {
    std::printf("%s\n", merged.json().dump().c_str());
    return 0;
  }
  if (as_folded) {
    std::fputs(merged.folded().c_str(), stdout);
    return 0;
  }
  std::printf("merged %zu dump(s):", merged.sources.size());
  for (const std::string& s : merged.sources) std::printf(" %s", s.c_str());
  std::printf("\n\n%s", merged.render_hotspots(top_n).c_str());
  const std::string events = merged.render_events();
  if (!events.empty()) std::printf("\n%s", events.c_str());
  const std::string lookahead = merged.render_lookahead();
  if (!lookahead.empty()) std::printf("\n%s", lookahead.c_str());
  return 0;
}
