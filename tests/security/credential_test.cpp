// GSI-like credential chains: issuance, delegation, expiry, tampering.
#include "security/credential.hpp"

#include <gtest/gtest.h>

namespace wacs::security {
namespace {

constexpr sim::Time kHour = 3600 * sim::kSecond;

TEST(Credential, IssueAndVerify) {
  CertAuthority ca("top-secret");
  auto chain = ca.issue("yoshio", kHour);
  EXPECT_TRUE(ca.verify(chain, 0).ok());
  EXPECT_TRUE(ca.verify(chain, kHour - 1).ok());
  EXPECT_EQ(chain.leaf().subject, "yoshio");
}

TEST(Credential, ExpiryIsEnforced) {
  CertAuthority ca("top-secret");
  auto chain = ca.issue("yoshio", kHour);
  auto verdict = ca.verify(chain, kHour);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.error().message().find("expired"), std::string::npos);
}

TEST(Credential, WrongCaSecretRejects) {
  CertAuthority ca("top-secret");
  CertAuthority imposter("different-secret");
  auto chain = ca.issue("yoshio", kHour);
  EXPECT_FALSE(imposter.verify(chain, 0).ok());
}

TEST(Credential, TamperedFieldsAreDetected) {
  CertAuthority ca("top-secret");
  auto chain = ca.issue("yoshio", kHour);
  {
    auto forged = chain;
    forged.links[0].subject = "mallory";
    EXPECT_FALSE(ca.verify(forged, 0).ok());
  }
  {
    auto forged = chain;
    forged.links[0].expires_at = 100 * kHour;  // lifetime extension
    EXPECT_FALSE(ca.verify(forged, 0).ok());
  }
  {
    auto forged = chain;
    forged.links[0].max_delegation_depth = 99;
    EXPECT_FALSE(ca.verify(forged, 0).ok());
  }
}

TEST(Credential, DelegationProducesVerifiableChain) {
  CertAuthority ca("top-secret");
  auto user = ca.issue("yoshio", kHour, 2);
  auto jm = delegate(user, "jobmanager", kHour);
  ASSERT_TRUE(jm.ok());
  EXPECT_TRUE(ca.verify(*jm, 0).ok());
  EXPECT_EQ(jm->leaf().subject, "yoshio/jobmanager");
  EXPECT_EQ(jm->leaf().issuer, "yoshio");

  auto rank = delegate(*jm, "rank0", kHour);
  ASSERT_TRUE(rank.ok());
  EXPECT_TRUE(ca.verify(*rank, 0).ok());
  EXPECT_EQ(rank->leaf().subject, "yoshio/jobmanager/rank0");
}

TEST(Credential, DelegationDepthIsExhausted) {
  CertAuthority ca("top-secret");
  auto user = ca.issue("yoshio", kHour, 1);
  auto jm = delegate(user, "jobmanager", kHour);
  ASSERT_TRUE(jm.ok());
  auto too_deep = delegate(*jm, "rank0", kHour);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.error().code(), ErrorCode::kPermissionDenied);
}

TEST(Credential, DelegatedLifetimeClipsToParent) {
  CertAuthority ca("top-secret");
  auto user = ca.issue("yoshio", kHour, 2);
  auto jm = delegate(user, "jobmanager", 100 * kHour);  // asks too long
  ASSERT_TRUE(jm.ok());
  EXPECT_EQ(jm->leaf().expires_at, kHour);  // clipped
  EXPECT_TRUE(ca.verify(*jm, kHour - 1).ok());
}

TEST(Credential, ForgedDelegationWithoutParentMacFails) {
  CertAuthority ca("top-secret");
  auto user = ca.issue("yoshio", kHour, 2);
  // Attacker knows the chain's public fields but not a valid parent MAC
  // relationship: graft a hand-built child.
  Credential fake;
  fake.subject = "yoshio/mallory";
  fake.issuer = "yoshio";
  fake.expires_at = kHour;
  fake.max_delegation_depth = 1;
  fake.mac = sha256(std::string("guess"));
  auto forged = user;
  forged.links.push_back(fake);
  EXPECT_FALSE(ca.verify(forged, 0).ok());
}

TEST(Credential, HexWireFormatRoundTrips) {
  CertAuthority ca("top-secret");
  auto user = ca.issue("yoshio", kHour, 2);
  auto jm = delegate(user, "jobmanager", kHour);
  ASSERT_TRUE(jm.ok());
  auto decoded = CredentialChain::decode_hex(jm->encode_hex());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(ca.verify(*decoded, 0).ok());
  EXPECT_EQ(decoded->leaf().subject, "yoshio/jobmanager");
}

TEST(Credential, MalformedWireFormsAreRejected) {
  EXPECT_FALSE(CredentialChain::decode_hex("odd").ok());
  EXPECT_FALSE(CredentialChain::decode_hex("zz").ok());
  EXPECT_FALSE(CredentialChain::decode_hex("").ok());
  CertAuthority ca("s");
  auto chain = ca.issue("u", kHour);
  std::string hex = chain.encode_hex();
  EXPECT_FALSE(CredentialChain::decode_hex(hex.substr(0, hex.size() - 4)).ok());
}

TEST(Credential, SubjectNestingIsEnforced) {
  CertAuthority ca("top-secret");
  auto a = ca.issue("alice", kHour, 2);
  auto b = ca.issue("bob", kHour, 2);
  // Splice bob's root under alice's chain: issuer/subject rules reject it.
  auto spliced = a;
  auto bob_delegated = delegate(b, "jm", kHour);
  ASSERT_TRUE(bob_delegated.ok());
  spliced.links.push_back(bob_delegated->links.back());
  EXPECT_FALSE(ca.verify(spliced, 0).ok());
}

}  // namespace
}  // namespace wacs::security
