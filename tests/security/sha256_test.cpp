// SHA-256 and HMAC-SHA-256 against the official test vectors.
#include "security/sha256.hpp"

#include <gtest/gtest.h>

namespace wacs::security {
namespace {

TEST(Sha256, Fips180Vectors) {
  // NIST FIPS 180-4 examples.
  EXPECT_EQ(to_hex(sha256(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, HexConvenienceMatchesVectors) {
  // sha256_hex() is the content-address function of the GASS object store;
  // pin it to the same FIPS 180-4 vectors in all three overloads.
  EXPECT_EQ(sha256_hex(std::string("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex(std::string("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  const Bytes data = pattern_bytes(4096, 8);
  EXPECT_EQ(sha256_hex(std::span<const std::uint8_t>(data)),
            to_hex(sha256(data)));
}

TEST(Sha256, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(to_hex(sha256(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data = pattern_bytes(100000, 5);
  // Feed in awkward chunk sizes that straddle block boundaries.
  Sha256 h;
  std::size_t off = 0;
  std::size_t chunk = 1;
  while (off < data.size()) {
    const std::size_t take = std::min(chunk, data.size() - off);
    h.update(std::span<const std::uint8_t>(data.data() + off, take));
    off += take;
    chunk = (chunk * 7 + 3) % 200 + 1;
  }
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(data)));
}

TEST(Sha256, HexRoundTrip) {
  const Digest d = sha256(std::string("round trip"));
  auto parsed = digest_from_hex(to_hex(d));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(digest_equal(*parsed, d));
  EXPECT_FALSE(digest_from_hex("abc").ok());
  EXPECT_FALSE(digest_from_hex(std::string(64, 'z')).ok());
}

TEST(HmacSha256, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: "Jefe" / "what do ya want for nothing?".
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 3: 20 bytes of 0xaa / 50 bytes of 0xdd.
  Bytes key3(20, 0xaa);
  Bytes msg3(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key3, msg3)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestEqual, DetectsAnyBitFlip) {
  Digest a = sha256(std::string("x"));
  for (std::size_t i = 0; i < a.size(); ++i) {
    Digest b = a;
    b[i] ^= 1;
    EXPECT_FALSE(digest_equal(a, b)) << "byte " << i;
  }
  EXPECT_TRUE(digest_equal(a, a));
}

}  // namespace
}  // namespace wacs::security
