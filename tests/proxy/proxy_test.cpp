// End-to-end tests of the simulated Nexus Proxy on a miniature version of
// the paper's Figure 5 topology.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "proxy/client.hpp"
#include "proxy/server.hpp"

namespace wacs::proxy {
namespace {

constexpr std::uint16_t kNxPort = 9900;
constexpr std::uint16_t kOuterPort = 9911;

struct Grid {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<OuterServer> outer;
  std::unique_ptr<InnerServer> inner;

  explicit Grid(RelayParams relay = {.per_message_s = msec(2),
                                     .copy_rate_bps = mbyte_per_sec(5)}) {
    sim::LinkParams lan{.name = "", .latency_s = msec(0.4),
                        .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
    net.add_site("rwcp", fw::Policy::typical(), lan);
    net.add_site("etl", fw::Policy::open(), lan);
    net.add_host({.name = "rwcp-sun", .site = "rwcp"});
    net.add_host({.name = "rwcp-inner", .site = "rwcp"});
    net.add_host({.name = "rwcp-outer", .site = "rwcp", .zone = sim::Zone::kDmz});
    net.add_host({.name = "etl-sun", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      sim::LinkParams{.name = "imnet", .latency_s = msec(3.1),
                                      .bandwidth_bps = kbit_per_sec(1500)});
    // The single firewall hole the paper requires: outer -> inner on nxport.
    net.site("rwcp").firewall().set_policy(
        fw::Policy::typical().open_inbound_from(
            "rwcp-outer", fw::PortRange::single(kNxPort), "nxport"));

    outer = std::make_unique<OuterServer>(net.host("rwcp-outer"), kOuterPort,
                                          relay);
    inner = std::make_unique<InnerServer>(net.host("rwcp-inner"), kNxPort,
                                          relay);
    outer->start();
    inner->start();
  }

  ProxyClient client_for(const std::string& host) {
    return ProxyClient(net.host(host), Contact{"rwcp-outer", kOuterPort},
                       Contact{"rwcp-inner", kNxPort});
  }
};

TEST(ProxyClient, EnvConfigurationRules) {
  Grid g;
  Env empty;
  EXPECT_FALSE(ProxyClient(g.net.host("rwcp-sun"), empty).configured());

  Env only_outer;
  only_outer.set(env_keys::kProxyOuterServer, "rwcp-outer:9911");
  EXPECT_FALSE(ProxyClient(g.net.host("rwcp-sun"), only_outer).configured());

  Env both = only_outer;
  both.set(env_keys::kProxyInnerServer, "rwcp-inner:9900");
  ProxyClient c(g.net.host("rwcp-sun"), both);
  EXPECT_TRUE(c.configured());
  EXPECT_EQ(c.outer(), (Contact{"rwcp-outer", 9911}));
  EXPECT_EQ(c.inner(), (Contact{"rwcp-inner", 9900}));
}

TEST(NexusProxy, ActiveOpenRelaysAcrossTheWan) {
  // Fig 3: rwcp-sun (inside) reaches etl-sun through the outer server.
  Grid g;
  std::string got_at_target, got_back;

  g.engine.spawn("target", [&](sim::Process& self) {
    auto l = g.net.host("etl-sun").stack().listen(31000);
    ASSERT_TRUE(l.ok());
    auto s = (*l)->accept(self);
    ASSERT_TRUE(s.ok());
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_at_target = to_string(*m);
    ASSERT_TRUE((*s)->send(to_bytes("reply-from-etl")).ok());
  });

  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.01);  // let daemons and the target bind
    auto c = g.client_for("rwcp-sun");
    auto s = c.nx_connect(self, Contact{"etl-sun", 31000});
    ASSERT_TRUE(s.ok()) << s.error().to_string();
    ASSERT_TRUE((*s)->send(to_bytes("hello-via-proxy")).ok());
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_back = to_string(*m);
  });

  g.engine.run();
  EXPECT_EQ(got_at_target, "hello-via-proxy");
  EXPECT_EQ(got_back, "reply-from-etl");
  EXPECT_GE(g.outer->stats().messages, 2u);
}

TEST(NexusProxy, PassiveOpenTraversesOuterAndInner) {
  // Fig 4: rwcp-sun binds via the proxy; etl-sun dials the public contact;
  // the link runs etl-sun -> outer -> inner -> rwcp-sun.
  Grid g;
  std::string got_inside, got_outside;
  Contact true_peer;
  Contact public_contact;

  g.engine.spawn("bound-client", [&](sim::Process& self) {
    auto c = g.client_for("rwcp-sun");
    auto listener = c.nx_bind(self);
    ASSERT_TRUE(listener.ok()) << listener.error().to_string();
    public_contact = (*listener)->public_contact();
    EXPECT_EQ(public_contact.host, "rwcp-outer");  // the advertised rewrite
    auto s = (*listener)->nx_accept(self, &true_peer);
    ASSERT_TRUE(s.ok());
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_inside = to_string(*m);
    ASSERT_TRUE((*s)->send(to_bytes("pong-from-inside")).ok());
  });

  g.engine.spawn("remote", [&](sim::Process& self) {
    self.sleep(0.05);  // bind must complete first
    ASSERT_NE(public_contact.port, 0);
    auto s = g.net.host("etl-sun").stack().connect(self, public_contact);
    ASSERT_TRUE(s.ok()) << s.error().to_string();
    ASSERT_TRUE((*s)->send(to_bytes("ping-from-etl")).ok());
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_outside = to_string(*m);
  });

  g.engine.run();
  EXPECT_EQ(got_inside, "ping-from-etl");
  EXPECT_EQ(got_outside, "pong-from-inside");
  EXPECT_EQ(true_peer.host, "etl-sun");
  EXPECT_GE(g.inner->stats().messages, 2u);  // both directions crossed inner
  EXPECT_GE(g.outer->stats().messages, 2u);
}

TEST(NexusProxy, AcceptSurvivesBogusPreambleConnection) {
  // A connection that reaches the bound endpoint's private listener without
  // a valid AcceptNotice preamble (a stray dial, or a relay whose preamble
  // never arrives) must only cost that one connection — the endpoint keeps
  // accepting, and a genuine relayed connect still lands.
  Grid g;
  std::string got_inside;
  Contact true_peer;
  Contact public_contact;
  std::uint16_t private_port = 0;

  g.engine.spawn("bound-client", [&](sim::Process& self) {
    auto c = g.client_for("rwcp-sun");
    auto listener = c.nx_bind(self);
    ASSERT_TRUE(listener.ok()) << listener.error().to_string();
    public_contact = (*listener)->public_contact();
    private_port = (*listener)->local_port();
    auto s = (*listener)->nx_accept(self, &true_peer);
    ASSERT_TRUE(s.ok()) << s.error().to_string();
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_inside = to_string(*m);
  });

  g.engine.spawn("stray", [&](sim::Process& self) {
    self.sleep(0.05);  // bind must complete first
    ASSERT_NE(private_port, 0);
    // Same-site dial straight at the private listener: no preamble follows.
    auto s = g.net.host("rwcp-inner").stack().connect(
        self, Contact{"rwcp-sun", private_port});
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->send(to_bytes("not-an-accept-notice")).ok());
    (*s)->close();
  });

  g.engine.spawn("remote", [&](sim::Process& self) {
    self.sleep(0.1);  // after the stray connection is queued
    auto s = g.net.host("etl-sun").stack().connect(self, public_contact);
    ASSERT_TRUE(s.ok()) << s.error().to_string();
    ASSERT_TRUE((*s)->send(to_bytes("real-payload")).ok());
  });

  g.engine.run();
  EXPECT_EQ(got_inside, "real-payload");
  EXPECT_EQ(true_peer.host, "etl-sun");
}

TEST(NexusProxy, DirectInboundStillDeniedWhileProxyWorks) {
  // The security claim: the firewall stays deny-based; only the nxport is
  // open. A direct dial from outside must keep failing.
  Grid g;
  ErrorCode direct_code = ErrorCode::kOk;
  bool proxy_ok = false;
  Contact public_contact;

  g.engine.spawn("bound-client", [&](sim::Process& self) {
    auto c = g.client_for("rwcp-sun");
    auto listener = c.nx_bind(self);
    ASSERT_TRUE(listener.ok());
    public_contact = (*listener)->public_contact();
    auto s = (*listener)->nx_accept(self);
    proxy_ok = s.ok();
  });

  g.engine.spawn("remote", [&](sim::Process& self) {
    self.sleep(0.05);
    // Attempt 1: direct to the private listener -> firewall denies.
    auto direct = g.net.host("etl-sun").stack().connect(
        self, Contact{"rwcp-sun", 12345});
    if (!direct.ok()) direct_code = direct.error().code();
    // Attempt 2: via the public contact -> succeeds.
    auto relayed = g.net.host("etl-sun").stack().connect(self, public_contact);
    ASSERT_TRUE(relayed.ok());
    (*relayed)->close();
  });

  g.engine.run();
  EXPECT_EQ(direct_code, ErrorCode::kPermissionDenied);
  EXPECT_GE(g.net.site("rwcp").firewall().denied(), 1u);
  (void)proxy_ok;  // nx_accept may still be parked if close won the race
}

TEST(NexusProxy, ConnectToDeadTargetReportsRefusal) {
  Grid g;
  ErrorCode code = ErrorCode::kOk;
  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.01);
    auto c = g.client_for("rwcp-sun");
    auto s = c.nx_connect(self, Contact{"etl-sun", 59999});  // nobody there
    ASSERT_FALSE(s.ok());
    code = s.error().code();
  });
  g.engine.run();
  EXPECT_EQ(code, ErrorCode::kConnectionRefused);
}

TEST(NexusProxy, PayloadIntegrityThroughTwoRelays) {
  Grid g;
  for (std::size_t size : {1UL, 4096UL, 65536UL, 1048576UL}) {
    Bytes sent = pattern_bytes(size, size);
    Bytes received;
    Contact public_contact;
    g.engine.spawn("bound", [&](sim::Process& self) {
      auto c = g.client_for("rwcp-sun");
      auto l = c.nx_bind(self);
      ASSERT_TRUE(l.ok());
      public_contact = (*l)->public_contact();
      auto s = (*l)->nx_accept(self);
      ASSERT_TRUE(s.ok());
      auto m = (*s)->recv(self);
      ASSERT_TRUE(m.ok());
      received = std::move(*m);
    });
    g.engine.spawn("remote", [&](sim::Process& self) {
      self.sleep(0.05);
      auto s = g.net.host("etl-sun").stack().connect(self, public_contact);
      ASSERT_TRUE(s.ok());
      ASSERT_TRUE((*s)->send(sent).ok());
    });
    g.engine.run();
    EXPECT_EQ(received.size(), sent.size()) << "size=" << size;
    EXPECT_EQ(fnv1a(received), fnv1a(sent)) << "size=" << size;
  }
}

TEST(NexusProxy, RelayLatencyIsChargedPerHop) {
  // With per_message_s = 2 ms and two relay processes on the passive path,
  // a small message takes >= 4 ms longer than the raw network path.
  Grid g;
  double sent_at = 0, got_at = 0;
  Contact public_contact;
  g.engine.spawn("bound", [&](sim::Process& self) {
    auto c = g.client_for("rwcp-sun");
    auto l = c.nx_bind(self);
    ASSERT_TRUE(l.ok());
    public_contact = (*l)->public_contact();
    auto s = (*l)->nx_accept(self);
    ASSERT_TRUE(s.ok());
    auto m = (*s)->recv(self);
    ASSERT_TRUE(m.ok());
    got_at = sim::to_sec(g.engine.now());
  });
  g.engine.spawn("remote", [&](sim::Process& self) {
    self.sleep(0.05);
    auto s = g.net.host("etl-sun").stack().connect(self, public_contact);
    ASSERT_TRUE(s.ok());
    sent_at = sim::to_sec(g.engine.now());
    ASSERT_TRUE((*s)->send(to_bytes("x")).ok());
  });
  g.engine.run();
  const double one_way = got_at - sent_at;
  EXPECT_GE(one_way, 0.004);  // two relay crossings at 2 ms each
  EXPECT_LT(one_way, 0.050);
}

TEST(NexusProxy, ManyConcurrentRelayedConnections) {
  Grid g;
  constexpr int kConns = 8;
  int completed = 0;
  Contact public_contact;

  g.engine.spawn("bound", [&](sim::Process& self) {
    auto c = g.client_for("rwcp-sun");
    auto l = c.nx_bind(self);
    ASSERT_TRUE(l.ok());
    public_contact = (*l)->public_contact();
    for (int i = 0; i < kConns; ++i) {
      auto s = (*l)->nx_accept(self);
      ASSERT_TRUE(s.ok());
      auto sock = *s;
      g.engine.spawn("echo" + std::to_string(i),
                     [sock](sim::Process& echo) {
                       while (true) {
                         auto m = sock->recv(echo);
                         if (!m.ok()) break;
                         if (!sock->send(std::move(*m)).ok()) break;
                       }
                     });
    }
  });

  for (int i = 0; i < kConns; ++i) {
    g.engine.spawn("remote" + std::to_string(i), [&, i](sim::Process& self) {
      self.sleep(0.05 + 0.001 * i);
      auto s = g.net.host("etl-sun").stack().connect(self, public_contact);
      ASSERT_TRUE(s.ok());
      Bytes payload = pattern_bytes(1000, static_cast<std::uint64_t>(i));
      ASSERT_TRUE((*s)->send(payload).ok());
      auto m = (*s)->recv(self);
      ASSERT_TRUE(m.ok());
      EXPECT_EQ(*m, payload);
      ++completed;
      (*s)->close();
    });
  }

  g.engine.run();
  EXPECT_EQ(completed, kConns);
}

TEST(NexusProxy, StatsCountRelayedTraffic) {
  Grid g;
  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.01);
    auto c = g.client_for("rwcp-sun");
    auto t = g.net.host("etl-sun").stack().listen(31000);
    // listen on etl from this process is fine in the simulator: listeners
    // are data, not processes.
    ASSERT_TRUE(t.ok());
    auto s = c.nx_connect(self, Contact{"etl-sun", 31000});
    ASSERT_TRUE(s.ok());
    auto at_target = (*t)->accept(self);
    ASSERT_TRUE(at_target.ok());
    ASSERT_TRUE((*s)->send(pattern_bytes(5000)).ok());
    auto m = (*at_target)->recv(self);
    ASSERT_TRUE(m.ok());
  });
  g.engine.run();
  EXPECT_EQ(g.outer->stats().bytes, 5000u);
  EXPECT_EQ(g.outer->stats().messages, 1u);
  EXPECT_GE(g.outer->stats().connections, 1u);
}

}  // namespace
}  // namespace wacs::proxy
