#include "proxy/protocol.hpp"

#include <gtest/gtest.h>

namespace wacs::proxy {
namespace {

TEST(ProxyProtocol, ConnectRequestRoundTrip) {
  ConnectRequest req{Contact{"etl-sun", 31000}};
  auto decoded = ConnectRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->target, req.target);
}

TEST(ProxyProtocol, ConnectReplyRoundTripBothOutcomes) {
  {
    auto d = ConnectReply::decode(ConnectReply{true, ""}.encode());
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d->ok);
    EXPECT_EQ(d->error, "");
  }
  {
    auto d = ConnectReply::decode(
        ConnectReply{false, "ConnectionRefused: nobody home"}.encode());
    ASSERT_TRUE(d.ok());
    EXPECT_FALSE(d->ok);
    EXPECT_EQ(d->error, "ConnectionRefused: nobody home");
  }
}

TEST(ProxyProtocol, BindRequestRoundTrip) {
  BindRequest req{Contact{"rwcp-sun", 40001}, Contact{"rwcp-inner", 9900}};
  auto d = BindRequest::decode(req.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->local, req.local);
  EXPECT_EQ(d->inner, req.inner);
}

TEST(ProxyProtocol, BindReplyRoundTrip) {
  BindReply rep{true, Contact{"rwcp-outer", 33012}, 42, ""};
  auto d = BindReply::decode(rep.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->ok);
  EXPECT_EQ(d->public_contact, rep.public_contact);
  EXPECT_EQ(d->bind_id, 42u);
}

TEST(ProxyProtocol, ForwardRequestRoundTrip) {
  ForwardRequest req{Contact{"rwcp-sun", 40001}, Contact{"etl-sun", 55123}};
  auto d = ForwardRequest::decode(req.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->target, req.target);
  EXPECT_EQ(d->peer, req.peer);
}

TEST(ProxyProtocol, ForwardReplyAndAcceptNoticeRoundTrip) {
  auto fr = ForwardReply::decode(ForwardReply{false, "no route"}.encode());
  ASSERT_TRUE(fr.ok());
  EXPECT_FALSE(fr->ok);
  EXPECT_EQ(fr->error, "no route");

  auto an = AcceptNotice::decode(AcceptNotice{Contact{"peer", 1}}.encode());
  ASSERT_TRUE(an.ok());
  EXPECT_EQ(an->peer, (Contact{"peer", 1}));
}

TEST(ProxyProtocol, PeekTypeIdentifiesEveryMessage) {
  EXPECT_EQ(*peek_type(ConnectRequest{{"h", 1}}.encode()),
            MsgType::kConnectRequest);
  EXPECT_EQ(*peek_type(ConnectReply{true, ""}.encode()),
            MsgType::kConnectReply);
  EXPECT_EQ(*peek_type(BindRequest{{"h", 1}, {"i", 2}}.encode()),
            MsgType::kBindRequest);
  EXPECT_EQ(*peek_type(BindReply{true, {"h", 1}, 0, ""}.encode()),
            MsgType::kBindReply);
  EXPECT_EQ(*peek_type(ForwardRequest{{"h", 1}, {"p", 2}}.encode()),
            MsgType::kForwardRequest);
  EXPECT_EQ(*peek_type(ForwardReply{true, ""}.encode()),
            MsgType::kForwardReply);
  EXPECT_EQ(*peek_type(AcceptNotice{{"p", 2}}.encode()),
            MsgType::kAcceptNotice);
}

TEST(ProxyProtocol, PeekTypeRejectsGarbage) {
  EXPECT_FALSE(peek_type(Bytes{}).ok());
  EXPECT_FALSE(peek_type(Bytes{0}).ok());
  EXPECT_FALSE(peek_type(Bytes{200}).ok());
}

TEST(ProxyProtocol, DecodeRejectsWrongType) {
  Bytes frame = ConnectRequest{{"h", 1}}.encode();
  EXPECT_FALSE(BindRequest::decode(frame).ok());
  EXPECT_FALSE(ConnectReply::decode(frame).ok());
}

TEST(ProxyProtocol, DecodeRejectsTruncatedFrames) {
  Bytes frame = BindReply{true, {"rwcp-outer", 33012}, 42, ""}.encode();
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    Bytes truncated(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(BindReply::decode(truncated).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace wacs::proxy
