// Corpus-driven decoder robustness tests for the Nexus Proxy wire protocol.
//
// The daemons feed attacker-controlled bytes straight into these decoders,
// so every one of them must fail *cleanly* on anything that is not a valid
// frame: every strict prefix of a valid encoding, and random mutations of
// it, must come back as a typed error — never a crash, hang, or oversized
// allocation. Mirrors the tests/obs wire corpus style.
#include "proxy/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace wacs::proxy {
namespace {

/// One corpus entry: a named valid frame plus its decoder. `decode` returns
/// ok/not-ok; the payload round-trip itself is asserted separately per type.
struct CorpusEntry {
  std::string name;
  Bytes frame;
  std::function<bool(const Bytes&)> decode;
};

std::vector<CorpusEntry> corpus() {
  const Contact a{"host-a.example", 4101};
  const Contact b{"10.0.0.7", 65535};
  std::vector<CorpusEntry> entries;
  entries.push_back({"ConnectRequest", ConnectRequest{a}.encode(),
                     [](const Bytes& f) { return ConnectRequest::decode(f).ok(); }});
  entries.push_back({"ConnectReply(ok)", ConnectReply{true, ""}.encode(),
                     [](const Bytes& f) { return ConnectReply::decode(f).ok(); }});
  entries.push_back({"ConnectReply(err)",
                     ConnectReply{false, "relay policy denied"}.encode(),
                     [](const Bytes& f) { return ConnectReply::decode(f).ok(); }});
  entries.push_back({"BindRequest", BindRequest{a, b}.encode(),
                     [](const Bytes& f) { return BindRequest::decode(f).ok(); }});
  // Lease-free form: the optional lease tail is absent, so every strict
  // prefix is invalid. The leased form's tail semantics get their own test.
  entries.push_back({"BindReply",
                     BindReply{true, b, 77, "", 0}.encode(),
                     [](const Bytes& f) { return BindReply::decode(f).ok(); }});
  entries.push_back({"ForwardRequest", ForwardRequest{a, b}.encode(),
                     [](const Bytes& f) { return ForwardRequest::decode(f).ok(); }});
  entries.push_back({"ForwardReply",
                     ForwardReply{false, "target vanished"}.encode(),
                     [](const Bytes& f) { return ForwardReply::decode(f).ok(); }});
  entries.push_back({"AcceptNotice", AcceptNotice{b}.encode(),
                     [](const Bytes& f) { return AcceptNotice::decode(f).ok(); }});
  entries.push_back({"Busy", Busy{250}.encode(),
                     [](const Bytes& f) { return Busy::decode(f).ok(); }});
  entries.push_back({"BindRenewRequest", BindRenewRequest{77}.encode(),
                     [](const Bytes& f) { return BindRenewRequest::decode(f).ok(); }});
  entries.push_back({"BindRenewReply",
                     BindRenewReply{true, 30000, ""}.encode(),
                     [](const Bytes& f) { return BindRenewReply::decode(f).ok(); }});
  return entries;
}

TEST(ProtocolCorpus, EveryEntryDecodesItsOwnEncoding) {
  for (const auto& e : corpus()) {
    EXPECT_TRUE(e.decode(e.frame)) << e.name;
    EXPECT_TRUE(peek_type(e.frame).ok()) << e.name;
  }
}

TEST(ProtocolCorpus, EveryStrictPrefixFailsCleanly) {
  for (const auto& e : corpus()) {
    for (std::size_t len = 0; len < e.frame.size(); ++len) {
      const Bytes prefix(e.frame.begin(), e.frame.begin() + len);
      EXPECT_FALSE(e.decode(prefix))
          << e.name << " accepted a strict prefix of length " << len;
    }
  }
}

TEST(ProtocolCorpus, CrossTypeDecodingFails) {
  // Feeding frame X into decoder Y must fail (the tag mismatch guard), for
  // every ordered pair of distinct types.
  const auto entries = corpus();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (entries[i].frame[0] == entries[j].frame[0]) continue;
      EXPECT_FALSE(entries[j].decode(entries[i].frame))
          << entries[j].name << " accepted a " << entries[i].name << " frame";
    }
  }
}

TEST(ProtocolCorpus, SeededRandomMutationsNeverCrash) {
  // 500 single-site mutations per corpus entry, seeded so a failure
  // reproduces byte for byte. Decoders may accept a mutation that happens
  // to stay wire-valid (e.g. a flipped port bit); they must never crash,
  // hang, or throw.
  Rng rng(0x5eedf00dULL);
  for (const auto& e : corpus()) {
    for (int round = 0; round < 500; ++round) {
      Bytes mutated = e.frame;
      const auto site =
          static_cast<std::size_t>(rng.uniform(0, mutated.size() - 1));
      switch (rng.uniform(0, 2)) {
        case 0:  // flip a byte
          mutated[site] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
          break;
        case 1:  // truncate at the site
          mutated.resize(site);
          break;
        default: {  // duplicate the tail from the site
          const Bytes tail(mutated.begin() + site, mutated.end());
          mutated.insert(mutated.end(), tail.begin(), tail.end());
          break;
        }
      }
      (void)e.decode(mutated);
      (void)peek_type(mutated);
    }
  }
}

TEST(ProtocolCorpus, HugeInnerLengthPrefixFailsWithoutOverAllocation) {
  // Strings inside frames are length-prefixed too; a frame whose inner
  // string claims 256 MiB but carries 3 bytes must be rejected by the
  // remaining-bytes check, not answered with a 256 MiB allocation.
  for (const auto& e : corpus()) {
    Bytes evil = e.frame;
    if (evil.size() < 6) continue;
    // Overwrite the 4 bytes after the tag with a huge little-endian length;
    // for Contact/string-bearing frames this is the first inner prefix.
    evil[1] = 0x00;
    evil[2] = 0x00;
    evil[3] = 0x00;
    evil[4] = 0x10;  // 0x10000000 = 256 MiB
    (void)e.decode(evil);  // must return, not OOM or crash
  }
  // Directly: a BufReader-backed string decode against a tiny buffer.
  Bytes tiny = ConnectRequest{Contact{"x", 1}}.encode();
  tiny.resize(5);
  EXPECT_FALSE(ConnectRequest::decode(tiny).ok());
}

TEST(ProtocolCorpus, BindReplyLeaseTailIsOptionalAndBackwardCompatible) {
  const Contact b{"10.0.0.7", 65535};
  // A zero lease encodes byte-identically to the pre-lease wire format.
  const Bytes lease_free = BindReply{true, b, 77, "", 0}.encode();
  const Bytes leased = BindReply{true, b, 77, "", 30000}.encode();
  ASSERT_EQ(leased.size(), lease_free.size() + 4);
  EXPECT_TRUE(std::equal(lease_free.begin(), lease_free.end(),
                         leased.begin()));
  // The leased frame round-trips its lease.
  auto full = BindReply::decode(leased);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->lease_ms, 30000u);
  // Cutting the tail exactly yields the pre-lease frame: decodes, lease 0 —
  // the compatibility contract with lease-free peers.
  Bytes cut(leased.begin(), leased.end() - 4);
  auto compat = BindReply::decode(cut);
  ASSERT_TRUE(compat.ok());
  EXPECT_EQ(compat->lease_ms, 0u);
  // A partial tail (1..3 bytes) is malformed, never silently dropped.
  for (int keep = 1; keep <= 3; ++keep) {
    Bytes partial(leased.begin(), leased.end() - (4 - keep));
    EXPECT_FALSE(BindReply::decode(partial).ok()) << keep;
  }
}

TEST(ProtocolCorpus, PeekTypeRejectsOutOfRangeTags) {
  EXPECT_FALSE(peek_type(Bytes{}).ok());
  EXPECT_FALSE(peek_type(Bytes{0}).ok());
  EXPECT_FALSE(peek_type(Bytes{11}).ok());
  EXPECT_FALSE(peek_type(Bytes{255}).ok());
  for (std::uint8_t tag = 1; tag <= 10; ++tag) {
    EXPECT_TRUE(peek_type(Bytes{tag}).ok()) << static_cast<int>(tag);
  }
}

}  // namespace
}  // namespace wacs::proxy
