// Integration test of the full §2 job flow (Figure 2, steps 1-6) on the
// Figure 5 testbed — gatekeeper, job manager / Q client, allocator,
// Q servers, GASS staging, rank rendezvous, completion.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"

namespace wacs::core {
namespace {

/// Registers a trivial task that records where it ran and echoes an input
/// file back through rank 0's result.
void register_probe_task(GridSystem& g) {
  g.registry().register_task("probe", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) {
      BufWriter w;
      w.str(ctx.host->name());
      w.i32(ctx.nprocs);
      auto it = ctx.input_files.find("data");
      w.blob(it == ctx.input_files.end() ? Bytes{} : it->second);
      w.u32(static_cast<std::uint32_t>(ctx.contacts.size()));
      ctx.result = std::move(w).take();
    }
  });
}

rmf::JobSpec probe_spec(int nprocs, std::vector<rmf::Placement> placements) {
  rmf::JobSpec spec;
  spec.name = "probe-job";
  spec.task = "probe";
  spec.nprocs = nprocs;
  spec.placements = std::move(placements);
  return spec;
}

TEST(JobFlow, SingleRankJobRunsWherePlaced) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto spec = probe_spec(1, {{"etl-o2k", 1}});
  spec.input_files["data"] = to_bytes("gass-payload");

  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;

  BufReader r(result->output);
  EXPECT_EQ(r.str().value(), "etl-o2k");
  EXPECT_EQ(r.i32().value(), 1);
  EXPECT_EQ(to_string(r.blob().value()), "gass-payload");
  EXPECT_EQ(r.u32().value(), 1u);  // contact table size
  EXPECT_GT(result->wall_seconds, 0.0);
}

TEST(JobFlow, MultiSiteJobCollectsAllRanks) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto spec = probe_spec(7, {{"rwcp-sun", 2}, {"compas01", 1},
                             {"etl-sun", 2}, {"etl-o2k", 2}});
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  BufReader r(result->output);
  EXPECT_EQ(r.str().value(), "rwcp-sun");  // rank 0 on the first placement
  EXPECT_EQ(r.i32().value(), 7);
  (void)r.blob();
  EXPECT_EQ(r.u32().value(), 7u);  // every rank reported its contact
}

TEST(JobFlow, AllocatorChoosesPlacementsWhenUnpinned) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto result = tb->run_job("rwcp-sun", probe_spec(6, {}));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_GE(tb->allocator()->requests_served(), 1u);
}

TEST(JobFlow, BadCredentialIsRejectedByGatekeeper) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto spec = probe_spec(1, {{"rwcp-sun", 1}});
  spec.credential = "wrong-token";
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("authentication"),
            std::string::npos);
  EXPECT_EQ(tb->gatekeeper()->auth_failures(), 1u);
  EXPECT_EQ(tb->gatekeeper()->jobs_accepted(), 0u);
}

TEST(JobFlow, UnknownTaskIsRejectedSynchronously) {
  auto tb = make_rwcp_etl_testbed();
  auto result = tb->run_job("rwcp-sun", probe_spec(1, {{"rwcp-sun", 1}}));
  // "probe" was never registered in this testbed instance.
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("unknown task"), std::string::npos);
}

TEST(JobFlow, MismatchedPlacementTotalFails) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto spec = probe_spec(5, {{"rwcp-sun", 2}});  // 2 != 5
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("placements cover"), std::string::npos);
}

TEST(JobFlow, OverCommittedHostIsRejectedByQServer) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  // rwcp-sun has 4 CPUs; asking its Q server for 9 ranks must fail.
  auto result = tb->run_job("rwcp-sun", probe_spec(9, {{"rwcp-sun", 9}}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("rejected"), std::string::npos);
}

TEST(JobFlow, AllocatorCapacityExhaustionSurfacesAsError) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  // Total CPUs: rwcp-sun 4 + 8*compas 4 + etl-sun 6 + etl-o2k 16 = 58.
  auto result = tb->run_job("rwcp-sun", probe_spec(1000, {}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("allocation failed"), std::string::npos);
}

TEST(JobFlow, SequentialJobsReuseTheGrid) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  for (int i = 0; i < 3; ++i) {
    auto result = tb->run_job("rwcp-sun", probe_spec(2, {{"etl-o2k", 2}}));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    ASSERT_TRUE(result->ok) << result->error;
  }
  EXPECT_EQ(tb->gatekeeper()->jobs_accepted(), 3u);
}

TEST(JobFlow, GassFilesReachEveryRank) {
  auto tb = make_rwcp_etl_testbed();
  // Each rank checksums the staged file; rank 0 gathers nothing — instead
  // every rank writes its own result and we only see rank 0's, so embed the
  // verification in the task itself.
  Bytes payload = pattern_bytes(100000, 42);
  const std::uint64_t want = fnv1a(payload);
  tb->registry().register_task("gass-check", [want](rmf::JobContext& ctx) {
    auto it = ctx.input_files.find("big");
    const bool good =
        it != ctx.input_files.end() && fnv1a(it->second) == want;
    WACS_CHECK_MSG(good, "rank " + std::to_string(ctx.rank) +
                             " received a corrupt GASS file");
    if (ctx.rank == 0) ctx.result = to_bytes("verified");
  });
  rmf::JobSpec spec;
  spec.name = "gass";
  spec.task = "gass-check";
  spec.nprocs = 4;
  spec.placements = {{"rwcp-sun", 1}, {"compas01", 1}, {"compas02", 1},
                     {"etl-o2k", 1}};
  spec.input_files["big"] = payload;
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(to_string(result->output), "verified");
}

TEST(JobFlow, FirewallStaysDenyBasedDuringJobs) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  auto result = tb->run_job("rwcp-sun",
                            probe_spec(3, {{"rwcp-sun", 1}, {"compas01", 1},
                                           {"etl-o2k", 1}}));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->ok) << result->error;
  // The RMF control flows and the proxied data flows must all have been
  // admitted through explicit holes; default inbound remains deny.
  const auto& policy = tb->net().site("rwcp").firewall().policy();
  EXPECT_EQ(policy.default_inbound(), fw::Action::kDeny);
}

TEST(JobFlowGsi, SignedCredentialChainsAreAccepted) {
  auto tb = make_rwcp_etl_testbed();
  register_probe_task(*tb);
  // Switch the gatekeeper to GSI mode (rebuild it is cheaper than plumbing
  // a second testbed option: construct a custom grid).
  GridSystem g;
  g.add_site("s", fw::Policy::typical(),
             sim::LinkParams{.name = "", .latency_s = 0.0004,
                             .bandwidth_bps = 6.5e6, .duplex = false});
  g.add_host({.name = "worker", .site = "s", .cpus = 4});
  g.add_host({.name = "inner", .site = "s", .cpus = 1});
  g.add_host({.name = "edge", .site = "s", .zone = sim::Zone::kDmz});
  g.add_allocator("inner");
  g.add_gatekeeper_gsi("edge", "ca-secret");
  g.add_qserver("worker");
  g.registry().register_task("t", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) ctx.result = to_bytes("ok");
  });

  security::CertAuthority ca("ca-secret");
  constexpr sim::Time kHour = 3600 * sim::kSecond;
  auto user = ca.issue("yoshio", kHour, 2);
  auto delegated = security::delegate(user, "jobmanager", kHour);
  ASSERT_TRUE(delegated.ok());

  rmf::JobSpec spec;
  spec.name = "gsi";
  spec.task = "t";
  spec.nprocs = 1;
  spec.placements = {{"worker", 1}};
  spec.credential = delegated->encode_hex();
  auto result = g.run_job("worker", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(g.gatekeeper()->last_subject(), "yoshio/jobmanager");
  EXPECT_EQ(g.gatekeeper()->auth_failures(), 0u);
}

TEST(JobFlowGsi, BadChainsAreRejected) {
  GridSystem g;
  g.add_site("s", fw::Policy::typical(),
             sim::LinkParams{.name = "", .latency_s = 0.0004,
                             .bandwidth_bps = 6.5e6, .duplex = false});
  g.add_host({.name = "worker", .site = "s", .cpus = 4});
  g.add_host({.name = "inner", .site = "s", .cpus = 1});
  g.add_host({.name = "edge", .site = "s", .zone = sim::Zone::kDmz});
  g.add_allocator("inner");
  g.add_gatekeeper_gsi("edge", "ca-secret");
  g.add_qserver("worker");
  g.registry().register_task("t", [](rmf::JobContext&) {});

  rmf::JobSpec spec;
  spec.name = "gsi";
  spec.task = "t";
  spec.nprocs = 1;
  spec.placements = {{"worker", 1}};

  // A plain-string "password" is not a chain.
  spec.credential = "wacs-grid";
  auto r1 = g.run_job("worker", spec);
  EXPECT_FALSE(r1.ok());

  // A chain signed by the wrong CA.
  security::CertAuthority wrong("other-secret");
  spec.credential = wrong.issue("mallory", 3600 * sim::kSecond).encode_hex();
  auto r2 = g.run_job("worker", spec);
  EXPECT_FALSE(r2.ok());

  // An expired chain (issued with expiry in the simulated past... issue
  // with tiny expiry and let prior runs advance the clock).
  security::CertAuthority ca("ca-secret");
  spec.credential = ca.issue("yoshio", 1 /* 1ns */).encode_hex();
  auto r3 = g.run_job("worker", spec);
  EXPECT_FALSE(r3.ok());

  EXPECT_EQ(g.gatekeeper()->auth_failures(), 3u);
}

}  // namespace
}  // namespace wacs::core
