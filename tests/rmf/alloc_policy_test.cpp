// Allocator policy coverage (kLeastLoaded, kRoundRobin), the
// preferred-placement path the scheduler pins MDS matches through, and the
// allocation-table invariant — 0 <= allocated <= cpus for every resource —
// held across grants, releases, and journal replay.
#include <gtest/gtest.h>

#include <memory>

#include "rmf/allocator.hpp"
#include "simnet/net.hpp"

namespace wacs::rmf {
namespace {

struct Fixture {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<ResourceAllocator> alloc;

  explicit Fixture(AllocPolicy policy) {
    net.add_site("s", fw::Policy::open(),
                 sim::LinkParams{.name = "", .latency_s = 0,
                                 .bandwidth_bps = 1e9});
    net.add_host({.name = "h", .site = "s"});
    alloc = std::make_unique<ResourceAllocator>(net.host("h"), 7000, policy);
    alloc->register_resource({"fast", 8, 2.0, 0});
    alloc->register_resource({"medium", 4, 1.0, 0});
    alloc->register_resource({"slow", 16, 0.5, 0});
  }

  int allocated(const std::string& host) const {
    for (const auto& r : alloc->resources()) {
      if (r.host == host) return r.allocated;
    }
    ADD_FAILURE() << "unknown host " << host;
    return -1;
  }

  void check_invariant() const {
    for (const auto& r : alloc->resources()) {
      EXPECT_GE(r.allocated, 0) << r.host;
      EXPECT_LE(r.allocated, r.cpus) << r.host;
    }
  }
};

int total(const std::vector<Placement>& ps) {
  int n = 0;
  for (const auto& p : ps) n += p.count;
  return n;
}

TEST(AllocPolicy, LeastLoadedPicksTheMostFreeResource) {
  Fixture f(AllocPolicy::kLeastLoaded);
  // slow has 16 free CPUs — most free wins regardless of speed.
  auto ps = f.alloc->select(2);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].host, "slow");
  // After taking 2 of slow's CPUs it still leads (14 > 8), so the next
  // narrow request lands there again.
  ps = f.alloc->select(2);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].host, "slow");
  f.check_invariant();
}

TEST(AllocPolicy, LeastLoadedRebalancesAsLoadShifts) {
  Fixture f(AllocPolicy::kLeastLoaded);
  ASSERT_EQ(f.alloc->select(12).size(), 1u);  // slow: 4 free left
  // Now fast (8 free) is the least loaded.
  auto ps = f.alloc->select(1);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].host, "fast");
  f.check_invariant();
}

TEST(AllocPolicy, LeastLoadedSpillsAcrossResources) {
  Fixture f(AllocPolicy::kLeastLoaded);
  auto ps = f.alloc->select(20);  // wider than any single resource
  EXPECT_EQ(total(ps), 20);
  f.check_invariant();
}

TEST(AllocPolicy, RoundRobinRotatesAcrossRequests) {
  Fixture f(AllocPolicy::kRoundRobin);
  auto a = f.alloc->select(1);
  auto b = f.alloc->select(1);
  auto c = f.alloc->select(1);
  auto d = f.alloc->select(1);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(c.size(), 1u);
  ASSERT_EQ(d.size(), 1u);
  // Three distinct starting resources, then the rotation wraps.
  EXPECT_NE(a[0].host, b[0].host);
  EXPECT_NE(b[0].host, c[0].host);
  EXPECT_NE(a[0].host, c[0].host);
  EXPECT_EQ(d[0].host, a[0].host);
  f.check_invariant();
}

TEST(AllocPolicy, RoundRobinSkipsSaturatedResources) {
  Fixture f(AllocPolicy::kRoundRobin);
  // Saturate one resource via a pinned grant (which does not advance the
  // rotation cursor); every rotation stop must then skip it.
  auto g = f.alloc->grant(8, {}, {Placement{"fast", 8}});
  ASSERT_EQ(g.placements.size(), 1u);
  ASSERT_EQ(f.allocated("fast"), 8);
  for (int i = 0; i < 6; ++i) {
    auto ps = f.alloc->select(1);
    ASSERT_EQ(ps.size(), 1u);
    EXPECT_NE(ps[0].host, "fast") << "rotation stop " << i;
  }
  f.check_invariant();
}

TEST(AllocPolicy, PreferredPlacementsHonoredAllOrNothing) {
  Fixture f(AllocPolicy::kFastestFirst);
  // A pinned placement that fits is taken verbatim.
  auto g = f.alloc->grant(3, {}, {Placement{"medium", 3}});
  ASSERT_EQ(g.placements.size(), 1u);
  EXPECT_EQ(g.placements[0].host, "medium");
  EXPECT_EQ(f.allocated("medium"), 3);
  f.check_invariant();

  // A pin the capacity can't honor (medium has 1 CPU left) falls back to
  // policy selection in full — no partial take of the preferred host.
  auto g2 = f.alloc->grant(2, {}, {Placement{"medium", 2}});
  ASSERT_EQ(total(g2.placements), 2);
  EXPECT_NE(g2.placements[0].host, "medium");
  EXPECT_EQ(f.allocated("medium"), 3);
  f.check_invariant();
}

TEST(AllocPolicy, PreferredMustSumToNprocs) {
  Fixture f(AllocPolicy::kFastestFirst);
  // An under-covering pin (3 CPUs pinned for a 4-wide job) is invalid and
  // must fall back entirely, not top itself up ad hoc.
  auto g = f.alloc->grant(4, {}, {Placement{"medium", 3}});
  ASSERT_EQ(total(g.placements), 4);
  EXPECT_EQ(f.allocated("medium"), 0);
  f.check_invariant();
}

TEST(AllocPolicy, PreferredRespectsExcludeList) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto g = f.alloc->grant(2, {"medium"}, {Placement{"medium", 2}});
  ASSERT_EQ(total(g.placements), 2);
  EXPECT_EQ(f.allocated("medium"), 0);
  f.check_invariant();
}

TEST(AllocPolicy, InvariantHoldsAcrossJournalReplay) {
  Fixture f(AllocPolicy::kLeastLoaded);
  f.alloc->start();

  auto g1 = f.alloc->grant(10);
  auto g2 = f.alloc->grant(6, {}, {Placement{"fast", 6}});
  auto g3 = f.alloc->grant(8);
  ASSERT_NE(g1.id, 0u);
  ASSERT_NE(g2.id, 0u);
  ASSERT_NE(g3.id, 0u);
  ASSERT_TRUE(f.alloc->release_grant(g2.id));
  ASSERT_FALSE(f.alloc->release_grant(g2.id)) << "double release must dedup";
  f.check_invariant();

  std::map<std::string, int> before;
  for (const auto& r : f.alloc->resources()) before[r.host] = r.allocated;

  // Crash + replay: grants minus releases, including the dedup.
  f.alloc->restart();
  EXPECT_EQ(f.alloc->journal_replays(), 1u);
  f.check_invariant();
  for (const auto& r : f.alloc->resources()) {
    EXPECT_EQ(r.allocated, before[r.host]) << r.host;
  }

  // The replayed table keeps honoring the invariant under new traffic.
  ASSERT_TRUE(f.alloc->release_grant(g1.id));
  ASSERT_TRUE(f.alloc->release_grant(g3.id));
  f.check_invariant();
  for (const auto& r : f.alloc->resources()) {
    EXPECT_EQ(r.allocated, 0) << r.host;
  }

  // Releasing more than was ever granted cannot drive allocated negative.
  f.alloc->release({Placement{"fast", 100}});
  f.check_invariant();
}

}  // namespace
}  // namespace wacs::rmf
