#include "rmf/allocator.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace wacs::rmf {
namespace {

/// Allocator with no network (selection logic is pure).
struct Fixture {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<ResourceAllocator> alloc;

  explicit Fixture(AllocPolicy policy) {
    net.add_site("s", fw::Policy::open(),
                 sim::LinkParams{.name = "", .latency_s = 0,
                                 .bandwidth_bps = 1e9});
    net.add_host({.name = "h", .site = "s"});
    alloc = std::make_unique<ResourceAllocator>(net.host("h"), 7000, policy);
    alloc->register_resource({"fast", 8, 2.0, 0});
    alloc->register_resource({"medium", 4, 1.0, 0});
    alloc->register_resource({"slow", 16, 0.5, 0});
  }
};

int total(const std::vector<Placement>& ps) {
  int n = 0;
  for (const auto& p : ps) n += p.count;
  return n;
}

TEST(Allocator, FastestFirstFillsFastResources) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto ps = f.alloc->select(10);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0], (Placement{"fast", 8}));
  EXPECT_EQ(ps[1], (Placement{"medium", 2}));
}

TEST(Allocator, LeastLoadedSpreadsByFreeCapacity) {
  Fixture f(AllocPolicy::kLeastLoaded);
  auto ps = f.alloc->select(16);
  ASSERT_FALSE(ps.empty());
  EXPECT_EQ(ps[0].host, "slow");  // most free CPUs first
  EXPECT_EQ(total(ps), 16);
}

TEST(Allocator, RoundRobinRotatesStartingResource) {
  Fixture f(AllocPolicy::kRoundRobin);
  auto first = f.alloc->select(1);
  f.alloc->release(first);
  auto second = f.alloc->select(1);
  f.alloc->release(second);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].host, second[0].host);
}

TEST(Allocator, ExactCapacityIsSatisfiable) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto ps = f.alloc->select(28);  // 8 + 4 + 16
  EXPECT_EQ(total(ps), 28);
}

TEST(Allocator, OverCapacityFails) {
  Fixture f(AllocPolicy::kFastestFirst);
  EXPECT_TRUE(f.alloc->select(29).empty());
  EXPECT_TRUE(f.alloc->select(0).empty());
  EXPECT_TRUE(f.alloc->select(-1).empty());
}

TEST(Allocator, AllocationsAreSticky) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto first = f.alloc->select(8);  // consumes "fast" entirely
  auto second = f.alloc->select(8);
  ASSERT_FALSE(second.empty());
  for (const auto& p : second) EXPECT_NE(p.host, "fast");
}

TEST(Allocator, ReleaseRestoresCapacity) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto first = f.alloc->select(28);
  EXPECT_TRUE(f.alloc->select(1).empty());
  f.alloc->release(first);
  EXPECT_EQ(total(f.alloc->select(28)), 28);
}

TEST(Allocator, ReleaseOfUnknownHostIsIgnored) {
  Fixture f(AllocPolicy::kFastestFirst);
  f.alloc->release({{"nonesuch", 5}});  // no crash, no capacity change
  EXPECT_EQ(total(f.alloc->select(28)), 28);
}

}  // namespace
}  // namespace wacs::rmf
