#include "rmf/allocator.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/time.hpp"

namespace wacs::rmf {
namespace {

/// Allocator with no network (selection logic is pure).
struct Fixture {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<ResourceAllocator> alloc;

  explicit Fixture(AllocPolicy policy) {
    net.add_site("s", fw::Policy::open(),
                 sim::LinkParams{.name = "", .latency_s = 0,
                                 .bandwidth_bps = 1e9});
    net.add_host({.name = "h", .site = "s"});
    alloc = std::make_unique<ResourceAllocator>(net.host("h"), 7000, policy);
    alloc->register_resource({"fast", 8, 2.0, 0});
    alloc->register_resource({"medium", 4, 1.0, 0});
    alloc->register_resource({"slow", 16, 0.5, 0});
  }
};

int total(const std::vector<Placement>& ps) {
  int n = 0;
  for (const auto& p : ps) n += p.count;
  return n;
}

TEST(Allocator, FastestFirstFillsFastResources) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto ps = f.alloc->select(10);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0], (Placement{"fast", 8}));
  EXPECT_EQ(ps[1], (Placement{"medium", 2}));
}

TEST(Allocator, LeastLoadedSpreadsByFreeCapacity) {
  Fixture f(AllocPolicy::kLeastLoaded);
  auto ps = f.alloc->select(16);
  ASSERT_FALSE(ps.empty());
  EXPECT_EQ(ps[0].host, "slow");  // most free CPUs first
  EXPECT_EQ(total(ps), 16);
}

TEST(Allocator, RoundRobinRotatesStartingResource) {
  Fixture f(AllocPolicy::kRoundRobin);
  auto first = f.alloc->select(1);
  f.alloc->release(first);
  auto second = f.alloc->select(1);
  f.alloc->release(second);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].host, second[0].host);
}

TEST(Allocator, ExactCapacityIsSatisfiable) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto ps = f.alloc->select(28);  // 8 + 4 + 16
  EXPECT_EQ(total(ps), 28);
}

TEST(Allocator, OverCapacityFails) {
  Fixture f(AllocPolicy::kFastestFirst);
  EXPECT_TRUE(f.alloc->select(29).empty());
  EXPECT_TRUE(f.alloc->select(0).empty());
  EXPECT_TRUE(f.alloc->select(-1).empty());
}

TEST(Allocator, AllocationsAreSticky) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto first = f.alloc->select(8);  // consumes "fast" entirely
  auto second = f.alloc->select(8);
  ASSERT_FALSE(second.empty());
  for (const auto& p : second) EXPECT_NE(p.host, "fast");
}

TEST(Allocator, ReleaseRestoresCapacity) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto first = f.alloc->select(28);
  EXPECT_TRUE(f.alloc->select(1).empty());
  f.alloc->release(first);
  EXPECT_EQ(total(f.alloc->select(28)), 28);
}

TEST(Allocator, ReleaseOfUnknownHostIsIgnored) {
  Fixture f(AllocPolicy::kFastestFirst);
  f.alloc->release({{"nonesuch", 5}});  // no crash, no capacity change
  EXPECT_EQ(total(f.alloc->select(28)), 28);
}

// ---------------------------------------------- grants, leases, and churn

TEST(Allocator, DoubleReleaseOfSameGrantIsDeduped) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto g = f.alloc->grant(28);
  ASSERT_EQ(total(g.placements), 28);
  EXPECT_TRUE(f.alloc->release_grant(g.id));
  // A job manager retrying its Release across an allocator restart must not
  // double-credit capacity.
  EXPECT_FALSE(f.alloc->release_grant(g.id));
  EXPECT_EQ(f.alloc->releases_deduped(), 1u);
  EXPECT_EQ(total(f.alloc->grant(28).placements), 28);
}

TEST(Allocator, AllHostsExcludedDeniesCleanly) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto g = f.alloc->grant(1, {"fast", "medium", "slow"});
  EXPECT_EQ(g.id, 0u);
  EXPECT_TRUE(g.placements.empty());
}

TEST(Allocator, GrantRacingLeaseExpirySkipsTheSilentHost) {
  Fixture f(AllocPolicy::kFastestFirst);
  f.alloc->enable_leases(1.0);
  auto first = f.alloc->grant(8);  // fills "fast", starts its lease window
  ASSERT_EQ(first.placements, (std::vector<Placement>{{"fast", 8}}));
  bool checked = false;
  f.engine.spawn("later", [&](sim::Process& self) {
    self.sleep(5.0);  // "fast" never heartbeats: well past the lease bound
    auto g = f.alloc->grant(8);
    ASSERT_EQ(total(g.placements), 8);
    for (const auto& p : g.placements) EXPECT_NE(p.host, "fast");
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(f.alloc->leases_expired(), 1u);
  EXPECT_TRUE(f.alloc->lease_expired("fast"));
}

TEST(Allocator, HeartbeatRevivesAnExpiredLease) {
  Fixture f(AllocPolicy::kFastestFirst);
  f.alloc->enable_leases(1.0);
  (void)f.alloc->grant(8);
  bool checked = false;
  f.engine.spawn("later", [&](sim::Process& self) {
    self.sleep(5.0);
    f.alloc->sweep_leases();
    ASSERT_TRUE(f.alloc->lease_expired("fast"));
    f.alloc->note_heartbeat("fast");  // the site came back
    EXPECT_FALSE(f.alloc->lease_expired("fast"));
    // Expiry shed the stale allocation, so the revived host is grantable.
    auto g = f.alloc->grant(8);
    EXPECT_EQ(g.placements, (std::vector<Placement>{{"fast", 8}}));
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(Allocator, ReleaseAfterLeaseExpiryDoesNotDoubleCredit) {
  Fixture f(AllocPolicy::kFastestFirst);
  f.alloc->enable_leases(1.0);
  auto g = f.alloc->grant(8);
  bool checked = false;
  f.engine.spawn("later", [&](sim::Process& self) {
    self.sleep(5.0);
    f.alloc->sweep_leases();  // sheds fast's 8 CPUs
    // The grant's owner releases it afterwards: allocation must clamp at
    // zero, not go negative and inflate later grants.
    EXPECT_TRUE(f.alloc->release_grant(g.id));
    f.alloc->note_heartbeat("fast");
    EXPECT_EQ(total(f.alloc->grant(28).placements), 28);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(Allocator, RestartReplaysGrantsMinusReleases) {
  Fixture f(AllocPolicy::kFastestFirst);
  auto keep = f.alloc->grant(8);    // fast
  auto drop = f.alloc->grant(4);    // medium
  ASSERT_TRUE(f.alloc->release_grant(drop.id));
  f.alloc->restart();
  // Live grants were rebuilt, released ones stayed released.
  EXPECT_FALSE(f.alloc->release_grant(drop.id));  // still deduped
  auto g = f.alloc->grant(20);  // 16 slow + 4 medium; fast is still held
  ASSERT_EQ(total(g.placements), 20);
  for (const auto& p : g.placements) EXPECT_NE(p.host, "fast");
  EXPECT_TRUE(f.alloc->grant(1).placements.empty());  // pool exhausted
  EXPECT_TRUE(f.alloc->release_grant(keep.id));       // replayed id works
  EXPECT_EQ(f.alloc->journal_replays(), 1u);
  f.engine.run();  // drain the respawned serve loop (parked accept)
}

}  // namespace
}  // namespace wacs::rmf
