// Corpus-driven decoder robustness tests for the scheduler wire frames
// (kSchedHello..kSchedCompleteAck) plus the AllocRequest optional tail.
// Mirrors tests/proxy/protocol_corpus_test.cpp: every strict prefix and
// seeded mutation of a valid frame must fail as a typed error — never a
// crash, hang, or oversized allocation.
#include "rmf/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace wacs::rmf {
namespace {

struct CorpusEntry {
  std::string name;
  Bytes frame;
  std::function<bool(const Bytes&)> decode;
};

SchedSubmit sample_submit() {
  SchedSubmit s;
  s.tenant = "user0042";
  s.jobs = {SchedJob{1, "knapsack --depth 24", 4, 12.5},
            SchedJob{2, "sleep", 1, 0.25}};
  return s;
}

SchedSubmitReply sample_reply() {
  SchedSubmitReply r;
  r.verdicts = {
      SchedVerdict{1, SchedVerdict::Code::kAccepted, 9001, 0, ""},
      SchedVerdict{2, SchedVerdict::Code::kBusy, 0, 500, ""},
      SchedVerdict{3, SchedVerdict::Code::kError, 0, 0, "invalid job"}};
  return r;
}

SchedDispatch sample_dispatch() {
  SchedDispatch d;
  d.items = {SchedDispatch::Item{9001, "user0042", "knapsack", 4, 12.5},
             SchedDispatch::Item{9002, "user0007", "sleep", 1, 0.25}};
  return d;
}

SchedComplete sample_complete() {
  SchedComplete c;
  c.batch_seq = 17;
  c.items = {SchedComplete::Item{9001, true, 50.0},
             SchedComplete::Item{9002, false, 0.0}};
  return c;
}

std::vector<CorpusEntry> corpus() {
  std::vector<CorpusEntry> entries;
  entries.push_back(
      {"SchedHello", SchedHello{"titech", Contact{"runner01", 0}}.encode(),
       [](const Bytes& f) { return SchedHello::decode(f).ok(); }});
  entries.push_back(
      {"SchedSubmit", sample_submit().encode(),
       [](const Bytes& f) { return SchedSubmit::decode(f).ok(); }});
  entries.push_back(
      {"SchedSubmitReply", sample_reply().encode(),
       [](const Bytes& f) { return SchedSubmitReply::decode(f).ok(); }});
  entries.push_back(
      {"SchedDispatch", sample_dispatch().encode(),
       [](const Bytes& f) { return SchedDispatch::decode(f).ok(); }});
  entries.push_back(
      {"SchedDispatchReply", SchedDispatchReply{500, {9001, 9002}}.encode(),
       [](const Bytes& f) { return SchedDispatchReply::decode(f).ok(); }});
  entries.push_back(
      {"SchedComplete", sample_complete().encode(),
       [](const Bytes& f) { return SchedComplete::decode(f).ok(); }});
  entries.push_back(
      {"SchedCompleteAck", SchedCompleteAck{17}.encode(),
       [](const Bytes& f) { return SchedCompleteAck::decode(f).ok(); }});
  return entries;
}

TEST(SchedProtocolCorpus, EveryEntryDecodesItsOwnEncoding) {
  for (const auto& e : corpus()) {
    EXPECT_TRUE(e.decode(e.frame)) << e.name;
    EXPECT_TRUE(peek_type(e.frame).ok()) << e.name;
  }
}

TEST(SchedProtocolCorpus, RoundTripsPreserveEveryField) {
  auto submit = SchedSubmit::decode(sample_submit().encode());
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->tenant, "user0042");
  EXPECT_EQ(submit->jobs, sample_submit().jobs);

  auto reply = SchedSubmitReply::decode(sample_reply().encode());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->verdicts, sample_reply().verdicts);

  auto dispatch = SchedDispatch::decode(sample_dispatch().encode());
  ASSERT_TRUE(dispatch.ok());
  EXPECT_EQ(dispatch->items, sample_dispatch().items);

  auto complete = SchedComplete::decode(sample_complete().encode());
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->batch_seq, 17u);
  EXPECT_EQ(complete->items, sample_complete().items);
}

TEST(SchedProtocolCorpus, EveryStrictPrefixFailsCleanly) {
  for (const auto& e : corpus()) {
    for (std::size_t len = 0; len < e.frame.size(); ++len) {
      const Bytes prefix(e.frame.begin(), e.frame.begin() + len);
      EXPECT_FALSE(e.decode(prefix))
          << e.name << " accepted a strict prefix of length " << len;
    }
  }
}

TEST(SchedProtocolCorpus, CrossTypeDecodingFails) {
  const auto entries = corpus();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (entries[i].frame[0] == entries[j].frame[0]) continue;
      EXPECT_FALSE(entries[j].decode(entries[i].frame))
          << entries[j].name << " accepted a " << entries[i].name << " frame";
    }
  }
}

TEST(SchedProtocolCorpus, SeededRandomMutationsNeverCrash) {
  Rng rng(0x5eedc0deULL);
  for (const auto& e : corpus()) {
    for (int round = 0; round < 500; ++round) {
      Bytes mutated = e.frame;
      const auto site =
          static_cast<std::size_t>(rng.uniform(0, mutated.size() - 1));
      switch (rng.uniform(0, 2)) {
        case 0:  // flip a byte
          mutated[site] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
          break;
        case 1:  // truncate at the site
          mutated.resize(site);
          break;
        default: {  // duplicate the tail from the site
          const Bytes tail(mutated.begin() + site, mutated.end());
          mutated.insert(mutated.end(), tail.begin(), tail.end());
          break;
        }
      }
      (void)e.decode(mutated);
      (void)peek_type(mutated);
    }
  }
}

TEST(SchedProtocolCorpus, HugeInnerLengthPrefixFailsWithoutOverAllocation) {
  for (const auto& e : corpus()) {
    Bytes evil = e.frame;
    if (evil.size() < 6) continue;
    evil[1] = 0x00;
    evil[2] = 0x00;
    evil[3] = 0x00;
    evil[4] = 0x10;  // inner prefix claims 256 MiB
    (void)e.decode(evil);  // must return, not OOM or crash
  }
}

TEST(SchedProtocolCorpus, VerdictCodeOutOfRangeIsRejected) {
  SchedSubmitReply r;
  r.verdicts = {SchedVerdict{1, SchedVerdict::Code::kAccepted, 5, 0, ""}};
  Bytes frame = r.encode();
  // The verdict code is the first u8 after the verdict-count prefix and
  // the client_seq: tag(1) + count(4) + client_seq(8) = offset 13.
  ASSERT_GT(frame.size(), 13u);
  ASSERT_EQ(frame[13], 1);  // kAccepted where we expect it
  frame[13] = 0;
  EXPECT_FALSE(SchedSubmitReply::decode(frame).ok());
  frame[13] = 4;
  EXPECT_FALSE(SchedSubmitReply::decode(frame).ok());
}

TEST(SchedProtocolCorpus, AllocRequestTailIsOptionalAndBackwardCompatible) {
  // Tenant-free, preference-free requests encode byte-identically to the
  // pre-scheduler wire format — the compatibility contract with peers that
  // predate the tail.
  const Bytes legacy = AllocRequest{4, {"dead-host"}, {}, {}}.encode();
  const Bytes tailed =
      AllocRequest{4, {"dead-host"}, "user0042", {Placement{"fast", 4}}}
          .encode();
  ASSERT_GT(tailed.size(), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), tailed.begin()));

  // The tailed frame round-trips both fields.
  auto full = AllocRequest::decode(tailed);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->tenant, "user0042");
  ASSERT_EQ(full->preferred.size(), 1u);
  EXPECT_EQ(full->preferred[0].host, "fast");
  EXPECT_EQ(full->preferred[0].count, 4);

  // Cutting the tail exactly yields a decodable legacy frame with empty
  // tenant and no preference.
  auto compat = AllocRequest::decode(legacy);
  ASSERT_TRUE(compat.ok());
  EXPECT_TRUE(compat->tenant.empty());
  EXPECT_TRUE(compat->preferred.empty());

  // A partial tail is malformed, never silently dropped.
  for (std::size_t cut = 1; cut < tailed.size() - legacy.size(); ++cut) {
    const Bytes partial(tailed.begin(), tailed.end() - cut);
    EXPECT_FALSE(AllocRequest::decode(partial).ok()) << cut;
  }
}

TEST(SchedProtocolCorpus, PeekTypeCoversSchedTags) {
  for (std::uint8_t tag = 16; tag <= 22; ++tag) {
    EXPECT_TRUE(peek_type(Bytes{tag}).ok()) << static_cast<int>(tag);
  }
  EXPECT_FALSE(peek_type(Bytes{23}).ok());
  EXPECT_FALSE(peek_type(Bytes{0}).ok());
}

}  // namespace
}  // namespace wacs::rmf
