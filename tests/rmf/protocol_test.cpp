#include "rmf/protocol.hpp"

#include <gtest/gtest.h>

namespace wacs::rmf {
namespace {

JobSpec sample_spec() {
  JobSpec spec;
  spec.name = "knapsack-run";
  spec.task = "knapsack";
  spec.credential = "wacs-grid";
  spec.nprocs = 20;
  spec.placements = {{"rwcp-sun", 4}, {"compas01", 1}, {"etl-o2k", 8}};
  spec.args = {{"interval", "1000"}, {"stealunit", "16"}};
  spec.input_files = {{"instance", pattern_bytes(333, 5)}};
  spec.deadline_seconds = 12.5;
  return spec;
}

TEST(RmfProtocol, SubmitRequestRoundTrip) {
  SubmitRequest req{sample_spec()};
  auto d = SubmitRequest::decode(req.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->spec.name, req.spec.name);
  EXPECT_EQ(d->spec.task, req.spec.task);
  EXPECT_EQ(d->spec.credential, req.spec.credential);
  EXPECT_EQ(d->spec.nprocs, req.spec.nprocs);
  EXPECT_EQ(d->spec.placements, req.spec.placements);
  EXPECT_EQ(d->spec.args, req.spec.args);
  EXPECT_EQ(d->spec.input_files, req.spec.input_files);
  EXPECT_DOUBLE_EQ(d->spec.deadline_seconds, 12.5);
}

TEST(RmfProtocol, SubmitReplyRoundTrip) {
  auto ok = SubmitReply::decode(SubmitReply{true, 42, ""}.encode());
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->job_id, 42u);

  auto bad = SubmitReply::decode(
      SubmitReply{false, 0, "authentication failed"}.encode());
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->error, "authentication failed");
}

TEST(RmfProtocol, JobDoneRoundTrip) {
  Bytes output = pattern_bytes(1000, 9);
  auto d = JobDone::decode(JobDone{true, "", output}.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->ok);
  EXPECT_EQ(d->output, output);
}

TEST(RmfProtocol, AllocRoundTrip) {
  auto req = AllocRequest::decode(AllocRequest{12, {}, {}, {}}.encode());
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->nprocs, 12);
  EXPECT_TRUE(req->exclude.empty());

  auto excl = AllocRequest::decode(AllocRequest{3, {"dead-a", "dead-b"}, {}, {}}.encode());
  ASSERT_TRUE(excl.ok());
  EXPECT_EQ(excl->nprocs, 3);
  EXPECT_EQ(excl->exclude, (std::vector<std::string>{"dead-a", "dead-b"}));

  AllocReply reply{true, 17, {{"a", 4}, {"b", 8}}, ""};
  auto d = AllocReply::decode(reply.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->grant_id, 17u);
  EXPECT_EQ(d->placements, reply.placements);
}

TEST(RmfProtocol, RecoveryMessagesRoundTrip) {
  auto hb = Heartbeat::decode(Heartbeat{"etl-sun"}.encode());
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb->host, "etl-sun");

  auto cancel = QCancel::decode(QCancel{42, 7}.encode());
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->job_id, 42u);
  EXPECT_EQ(cancel->part_seq, 7u);

  auto query = JobQuery::decode(JobQuery{9000}.encode());
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->job_id, 9000u);

  auto ack = RankDoneAck::decode(RankDoneAck{13}.encode());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->rank, 13);
}

TEST(RmfProtocol, ReleaseCarriesGrantIds) {
  Release rel;
  rel.placements = {{"a", 2}};
  rel.grant_ids = {5, 9};
  auto d = Release::decode(rel.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->placements, rel.placements);
  EXPECT_EQ(d->grant_ids, (std::vector<std::uint64_t>{5, 9}));
}

TEST(RmfProtocol, RankHelloCarriesHasTable) {
  RankHello hello;
  hello.job_id = 3;
  hello.rank = 4;
  hello.contact = Contact{"compas01", 9911};
  hello.site = "rwcp";
  hello.has_table = true;
  auto d = RankHello::decode(hello.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rank, 4);
  EXPECT_TRUE(d->has_table);
  auto fresh = RankHello::decode(RankHello{3, 5, {"c", 1}, "rwcp"}.encode());
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->has_table);
}

TEST(RmfProtocol, QSubmitRoundTrip) {
  QSubmit q;
  q.job_id = 7;
  q.part_seq = 11;
  q.task = "knapsack";
  q.base_rank = 4;
  q.count = 8;
  q.nprocs = 20;
  q.job_manager = Contact{"rwcp-gate", 40123};
  q.args = {{"interval", "500"}};
  q.input_files = {{"instance", pattern_bytes(64, 3)}};
  auto d = QSubmit::decode(q.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->job_id, 7u);
  EXPECT_EQ(d->part_seq, 11u);
  EXPECT_EQ(d->base_rank, 4);
  EXPECT_EQ(d->count, 8);
  EXPECT_EQ(d->nprocs, 20);
  EXPECT_EQ(d->job_manager, q.job_manager);
  EXPECT_EQ(d->args, q.args);
  EXPECT_EQ(d->input_files, q.input_files);
}

TEST(RmfProtocol, EmptyInputFilesRoundTrip) {
  // Degenerate staging payloads: no files at all, a file with an empty
  // body, and an empty-string file name must all survive the wire.
  JobSpec spec = sample_spec();
  spec.input_files.clear();
  spec.input_urls.clear();
  auto none = SubmitRequest::decode(SubmitRequest{spec}.encode());
  ASSERT_TRUE(none.ok()) << none.error().to_string();
  EXPECT_TRUE(none->spec.input_files.empty());
  EXPECT_TRUE(none->spec.input_urls.empty());

  spec.input_files = {{"empty", Bytes{}}, {"", to_bytes("nameless")}};
  auto d = SubmitRequest::decode(SubmitRequest{spec}.encode());
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d->spec.input_files, spec.input_files);
}

TEST(RmfProtocol, BinaryInputFilesRoundTrip) {
  // Payloads full of NULs and 0xFF must not be mangled by the codec (they
  // would be by any string-terminated framing).
  Bytes nasty;
  for (int i = 0; i < 512; ++i) {
    nasty.push_back(i % 3 == 0 ? 0x00 : (i % 3 == 1 ? 0xFF : 0x7F));
  }
  JobSpec spec = sample_spec();
  spec.input_files = {{"nasty", nasty},
                      {"nuls", Bytes(100, 0x00)},
                      {"ffs", Bytes(100, 0xFF)}};
  auto d = SubmitRequest::decode(SubmitRequest{spec}.encode());
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d->spec.input_files, spec.input_files);

  QSubmit q;
  q.task = "t";
  q.job_manager = Contact{"h", 1};
  q.input_files = spec.input_files;
  auto dq = QSubmit::decode(q.encode());
  ASSERT_TRUE(dq.ok()) << dq.error().to_string();
  EXPECT_EQ(dq->input_files, q.input_files);
}

TEST(RmfProtocol, InputUrlsRoundTrip) {
  JobSpec spec = sample_spec();
  spec.input_files.clear();
  spec.input_urls = {
      {"instance", "gass://rwcp-outer:9921/" + std::string(64, 'a')}};
  auto d = SubmitRequest::decode(SubmitRequest{spec}.encode());
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d->spec.input_urls, spec.input_urls);

  QSubmit q;
  q.task = "t";
  q.job_manager = Contact{"h", 1};
  q.input_urls = spec.input_urls;
  auto dq = QSubmit::decode(q.encode());
  ASSERT_TRUE(dq.ok()) << dq.error().to_string();
  EXPECT_EQ(dq->input_urls, q.input_urls);
}

TEST(RmfProtocol, RankMessagesRoundTrip) {
  auto hello = RankHello::decode(
      RankHello{3, 11, Contact{"compas02", 32768}, "rwcp"}.encode());
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->job_id, 3u);
  EXPECT_EQ(hello->rank, 11);
  EXPECT_EQ(hello->contact, (Contact{"compas02", 32768}));
  EXPECT_EQ(hello->site, "rwcp");

  ContactTable table{{{"a", 1}, {"b", 2}, {"c", 3}},
                     {"rwcp", "rwcp", "etl"}};
  auto dt = ContactTable::decode(table.encode());
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->contacts, table.contacts);
  EXPECT_EQ(dt->sites, table.sites);

  auto done = RankDone::decode(RankDone{5, to_bytes("result")}.encode());
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->rank, 5);
  EXPECT_EQ(to_string(done->output), "result");
}

TEST(RmfProtocol, PeekTypeCoversAllMessages) {
  EXPECT_EQ(*peek_type(SubmitRequest{sample_spec()}.encode()),
            MsgType::kSubmitRequest);
  EXPECT_EQ(*peek_type(AllocRequest{1, {}, {}, {}}.encode()), MsgType::kAllocRequest);
  EXPECT_EQ(*peek_type(RankDone{0, {}}.encode()), MsgType::kRankDone);
  EXPECT_FALSE(peek_type(Bytes{}).ok());
  EXPECT_FALSE(peek_type(Bytes{99}).ok());
}

TEST(RmfProtocol, CrossDecodingFails) {
  Bytes frame = AllocRequest{4, {}, {}, {}}.encode();
  EXPECT_FALSE(SubmitRequest::decode(frame).ok());
  EXPECT_FALSE(QSubmit::decode(frame).ok());
}

TEST(RmfProtocol, TruncatedQSubmitFails) {
  QSubmit q;
  q.task = "t";
  q.job_manager = Contact{"h", 1};
  Bytes frame = q.encode();
  for (std::size_t cut = 1; cut + 1 < frame.size(); cut += 3) {
    Bytes truncated(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(QSubmit::decode(truncated).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace wacs::rmf
