// The Q system's LSF-like queueing: job parts wait for CPUs, dispatch in
// FIFO order as ranks complete; allocator-made allocations are released
// when jobs finish.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/testbeds.hpp"

namespace wacs::core {
namespace {

/// Task that burns `arg busy_s` of unit-speed CPU and reports its start
/// time in the output (rank 0).
void register_burn_task(GridSystem& g) {
  g.registry().register_task("burn", [](rmf::JobContext& ctx) {
    const double busy = std::strtod(ctx.arg_or("busy_s", "0.5").c_str(),
                                    nullptr);
    const double started =
        sim::to_sec(ctx.host->network().engine().now());
    ctx.charge_cpu(busy);
    if (ctx.rank == 0) {
      BufWriter w;
      w.f64(started);
      w.f64(sim::to_sec(ctx.host->network().engine().now()));
      ctx.result = std::move(w).take();
    }
  });
}

rmf::JobSpec burn_spec(const std::string& name, int nprocs,
                       std::vector<rmf::Placement> placements,
                       const std::string& busy_s = "0.5") {
  rmf::JobSpec spec;
  spec.name = name;
  spec.task = "burn";
  spec.nprocs = nprocs;
  spec.placements = std::move(placements);
  spec.args["busy_s"] = busy_s;
  return spec;
}

std::pair<double, double> start_end(const rmf::JobResult& r) {
  BufReader reader(r.output);
  const double start = reader.f64().value();
  const double end = reader.f64().value();
  return {start, end};
}

TEST(Queueing, SecondJobWaitsForFirstOnASaturatedHost) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  // rwcp-sun has 4 CPUs; each job takes all 4.
  auto results = tb->run_jobs(
      "etl-sun", {burn_spec("first", 4, {{"rwcp-sun", 4}}),
                  burn_spec("second", 4, {{"rwcp-sun", 4}})});
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  ASSERT_TRUE(results[0]->ok) << results[0]->error;
  ASSERT_TRUE(results[1]->ok) << results[1]->error;

  auto [s1, e1] = start_end(*results[0]);
  auto [s2, e2] = start_end(*results[1]);
  // The second job's ranks must not start before the first job's finish.
  EXPECT_GE(s2, e1);
  EXPECT_GT(e2, e1);

  // The Q server actually queued it (rather than rejecting or interleaving).
  for (const auto& q : tb->qservers()) {
    if (q->contact().host == "rwcp-sun") {
      EXPECT_EQ(q->jobs_queued_total(), 1u);
      EXPECT_EQ(q->jobs_started(), 2u);
      EXPECT_EQ(q->busy_cpus(), 0);  // all released afterwards
      EXPECT_EQ(q->queue_depth(), 0u);
    }
  }
}

TEST(Queueing, IndependentHostsRunConcurrently) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  auto results = tb->run_jobs(
      "etl-sun", {burn_spec("a", 4, {{"rwcp-sun", 4}}),
                  burn_spec("b", 8, {{"etl-o2k", 8}})});
  ASSERT_TRUE(results[0]->ok);
  ASSERT_TRUE(results[1]->ok);
  auto [s1, e1] = start_end(*results[0]);
  auto [s2, e2] = start_end(*results[1]);
  // Overlapping execution windows: no false serialization.
  EXPECT_LT(s2, e1);
  EXPECT_LT(s1, e2);
}

TEST(Queueing, SmallJobsShareAHostWithoutWaiting) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  // Two 2-CPU jobs on a 4-CPU host: both run immediately.
  auto results = tb->run_jobs(
      "etl-sun", {burn_spec("a", 2, {{"rwcp-sun", 2}}),
                  burn_spec("b", 2, {{"rwcp-sun", 2}})});
  ASSERT_TRUE(results[0]->ok);
  ASSERT_TRUE(results[1]->ok);
  auto [s1, e1] = start_end(*results[0]);
  auto [s2, e2] = start_end(*results[1]);
  EXPECT_LT(s2, e1);  // overlap
  (void)e2;
  for (const auto& q : tb->qservers()) {
    if (q->contact().host == "rwcp-sun") {
      EXPECT_EQ(q->jobs_queued_total(), 0u);
    }
  }
}

TEST(Queueing, AllocatorCapacityIsReleasedAfterCompletion) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  // 58 CPUs total; ask the allocator for 58 twice in a row — the second
  // submission only succeeds because the first job released its capacity.
  auto first = tb->run_job("etl-sun", burn_spec("big1", 58, {}, "0.05"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ok) << first->error;
  auto second = tb->run_job("etl-sun", burn_spec("big2", 58, {}, "0.05"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->ok) << second->error;
}

TEST(Queueing, ReleaseHappensOnFailurePathsToo) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  // A job that allocates (via the allocator) but fails later — the task
  // itself can't fail, so force a placement-total mismatch? That path is
  // pre-allocation. Instead: exhaust capacity, watch a concurrent
  // allocator-based job fail fast, then verify capacity is intact.
  auto results = tb->run_jobs(
      "etl-sun", {burn_spec("holder", 58, {}, "0.2"),
                  burn_spec("loser", 58, {}, "0.05")});
  ASSERT_TRUE(results[0]->ok);
  EXPECT_FALSE(results[1]->ok);  // allocation failed while held
  // Capacity was fully restored after "holder" finished.
  auto retry = tb->run_job("etl-sun", burn_spec("retry", 58, {}, "0.05"));
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->ok) << retry->error;
}

TEST(Queueing, FifoOrderAcrossThreeJobs) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  auto results = tb->run_jobs(
      "etl-sun", {burn_spec("j1", 4, {{"rwcp-sun", 4}}, "0.3"),
                  burn_spec("j2", 4, {{"rwcp-sun", 4}}, "0.3"),
                  burn_spec("j3", 4, {{"rwcp-sun", 4}}, "0.3")});
  std::vector<double> starts;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r).ok);
    starts.push_back(start_end(*r).first);
  }
  EXPECT_LT(starts[0], starts[1]);
  EXPECT_LT(starts[1], starts[2]);
}

TEST(Deadline, OverrunningJobFailsAtTheDeadline) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("sleepy", [](rmf::JobContext& ctx) {
    ctx.self->sleep(100.0);  // far past the deadline
  });
  rmf::JobSpec spec;
  spec.name = "sleepy";
  spec.task = "sleepy";
  spec.nprocs = 2;
  spec.placements = {{"rwcp-sun", 2}};
  spec.deadline_seconds = 1.0;
  const double t0 = sim::to_sec(tb->engine().now());
  auto result = tb->run_job("etl-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("deadline"), std::string::npos);
  // The failure was reported at the deadline, not after the 100 s sleep.
  EXPECT_LT(result->wall_seconds, 5.0);
  (void)t0;

  // The grid remains usable for the next job.
  tb->registry().register_task("quick", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) ctx.result = to_bytes("done");
  });
  rmf::JobSpec next;
  next.name = "quick";
  next.task = "quick";
  next.nprocs = 1;
  next.placements = {{"etl-o2k", 1}};
  auto ok = tb->run_job("etl-sun", next);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok) << ok->error;
}

TEST(Deadline, CompletingJobIsUntouchedByItsWatchdog) {
  auto tb = make_rwcp_etl_testbed();
  register_burn_task(*tb);
  auto spec = burn_spec("ok", 2, {{"rwcp-sun", 2}}, "0.1");
  spec.deadline_seconds = 60.0;
  auto result = tb->run_job("etl-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok) << result->error;
  // Let the watchdog timer fire after completion: nothing must break.
  tb->engine().run_until(tb->engine().now() + sim::from_sec(120.0));
  auto again = tb->run_job("etl-sun", burn_spec("again", 2, {{"rwcp-sun", 2}},
                                                "0.1"));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok);
}

}  // namespace
}  // namespace wacs::core
