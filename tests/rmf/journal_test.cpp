#include "rmf/journal.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace wacs::rmf {
namespace {

struct Fixture {
  sim::Engine engine;
  sim::Network net{engine};
  Fixture() {
    net.add_site("s", fw::Policy::open(),
                 sim::LinkParams{.name = "", .latency_s = 0,
                                 .bandwidth_bps = 1e9});
    net.add_host({.name = "h", .site = "s"});
  }
  sim::Host& host() { return net.host("h"); }
};

TEST(Journal, AppendAndReplayInOrder) {
  Fixture f;
  Journal j(f.host(), "gatekeeper");
  EXPECT_TRUE(j.records().empty());
  j.append(to_bytes("first"));
  j.append(to_bytes("second"));
  j.append(to_bytes(""));  // empty records are legal
  EXPECT_EQ(j.appended(), 3u);

  auto recs = j.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(to_string(recs[0]), "first");
  EXPECT_EQ(to_string(recs[1]), "second");
  EXPECT_TRUE(recs[2].empty());
}

TEST(Journal, SecondHandleSeesFirstHandlesRecords) {
  // A restart constructs a fresh Journal over the same host+name: it must
  // read everything the pre-crash handle wrote.
  Fixture f;
  {
    Journal writer(f.host(), "alloc");
    writer.append(to_bytes("grant 1"));
    writer.append(to_bytes("release 1"));
  }
  Journal reader(f.host(), "alloc");
  EXPECT_EQ(reader.appended(), 0u);  // per-handle counter, not log length
  auto recs = reader.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(to_string(recs[0]), "grant 1");
  EXPECT_EQ(to_string(recs[1]), "release 1");
}

TEST(Journal, NamesAreIndependentLogs) {
  Fixture f;
  Journal a(f.host(), "gatekeeper");
  Journal b(f.host(), "qserver");
  a.append(to_bytes("ga"));
  b.append(to_bytes("qb"));
  ASSERT_EQ(a.records().size(), 1u);
  ASSERT_EQ(b.records().size(), 1u);
  EXPECT_EQ(to_string(a.records()[0]), "ga");
  EXPECT_EQ(to_string(b.records()[0]), "qb");
}

TEST(Journal, TruncateDropsEverything) {
  Fixture f;
  Journal j(f.host(), "gatekeeper");
  j.append(to_bytes("x"));
  j.truncate();
  EXPECT_TRUE(j.records().empty());
  j.append(to_bytes("y"));  // still usable after a truncate
  ASSERT_EQ(j.records().size(), 1u);
  EXPECT_EQ(to_string(j.records()[0]), "y");
}

TEST(Journal, TornTailEndsReplayInsteadOfAborting) {
  Fixture f;
  Journal j(f.host(), "gatekeeper");
  j.append(to_bytes("intact"));

  // Simulate a torn write: a length prefix promising more bytes than the
  // log holds. Replay must return the intact prefix and stop.
  BufWriter w;
  w.u32(100);  // claims a 100-byte record...
  w.raw(to_bytes("short"));  // ...but only 5 follow
  f.host().disk().append("journal/gatekeeper", std::move(w).take());

  auto recs = j.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(to_string(recs[0]), "intact");

  // A truncated length prefix itself is also a clean end of log.
  j.truncate();
  f.host().disk().append("journal/gatekeeper", to_bytes("\x01"));
  EXPECT_TRUE(j.records().empty());
}

}  // namespace
}  // namespace wacs::rmf
