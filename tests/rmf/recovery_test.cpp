// End-to-end crash recovery of the RMF control plane (DESIGN.md §13).
//
// A wide-area knapsack job must survive a mid-run crash+restart of each
// control daemon's host — gatekeeper, allocator, Q server — with the
// optimum preserved, no job part executed twice (asserted through the
// dedup counters), and the whole faulted run deterministic per seed.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "rmf/gatekeeper.hpp"
#include "simnet/time.hpp"

namespace wacs::rmf {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;

/// Recovery-enabled grid with a seeded fault injector and no faults planned
/// yet. The injector is seeded *before* enable_recovery so the whole fault
/// schedule keys off one seed.
Testbed make_recovery_grid(std::uint64_t seed = 7) {
  Testbed tb = make_rwcp_etl_testbed();
  tb->faults(seed);
  tb->enable_recovery();
  return tb;
}

rmf::JobSpec knapsack_spec(const knapsack::Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "recovery-test";
  spec.task = knapsack::kParallelTask;
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {"compas02", 1}};
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{knapsack::args::kInterval, "200"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kBackUnit, "32"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  // A hung recovery turns into a clean failure instead of tripping the
  // run_jobs completion check.
  spec.deadline_seconds = 300;
  return spec;
}

struct JobRun {
  rmf::JobResult job;
  knapsack::RunStats stats;
};

JobRun run_job(Testbed& tb, rmf::JobSpec spec) {
  auto result = tb->run_job("rwcp-sun", std::move(spec));
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  JobRun out{*result, {}};
  if (result->ok) {
    auto stats = knapsack::RunStats::decode(result->output);
    EXPECT_TRUE(stats.ok());
    if (stats.ok()) out.stats = *stats;
  }
  return out;
}

std::uint64_t parts_started(Testbed& tb) {
  std::uint64_t n = 0;
  for (const auto& q : tb->qservers()) n += q->jobs_started();
  return n;
}

std::uint64_t submit_dedups(Testbed& tb) {
  std::uint64_t n = 0;
  for (const auto& q : tb->qservers()) n += q->submits_deduped();
  return n;
}

/// Virtual time halfway through the search phase, from a fault-free
/// recovery-enabled pilot of the same deterministic run.
sim::Time mid_search_time(const knapsack::Instance& inst,
                          std::uint64_t seed = 7) {
  Testbed pilot = make_recovery_grid(seed);
  const JobRun run = run_job(pilot, knapsack_spec(inst));
  return sim::from_sec(run.job.wall_seconds - run.stats.app_seconds * 0.5);
}

// ------------------------------------------------------- crash scenarios

TEST(Recovery, GatekeeperCrashMidRunRecoversExactlyOnce) {
  knapsack::Instance inst = knapsack::no_prune_instance(14, 9);
  const sim::Time crash_at = mid_search_time(inst);

  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("rwcp-gate", crash_at);
  tb->faults().plan_host_restart("rwcp-gate", crash_at + sim::from_sec(2.0));
  const JobRun run = run_job(tb, knapsack_spec(inst));

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_EQ(tb->gatekeeper()->journal_replays(), 1u);
  EXPECT_EQ(tb->gatekeeper()->jobs_recovered(), 1u);
  // Exactly-once dispatch: the recovery job manager re-submitted the live
  // parts with their original part_seq, and every duplicate was absorbed by
  // the Q servers' dedup tables instead of starting a second execution.
  EXPECT_EQ(parts_started(tb), 3u);  // one per placement, ever
  EXPECT_GE(submit_dedups(tb), 1u);
  // The recovered run pays its makespan visibly: the crash+restart window
  // is inside the measured wall time.
  EXPECT_GT(sim::from_sec(run.job.wall_seconds), crash_at);
}

TEST(Recovery, AllocatorCrashMidRunRecovers) {
  knapsack::Instance inst = knapsack::no_prune_instance(14, 10);
  const sim::Time crash_at = mid_search_time(inst);

  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("rwcp-inner", crash_at);
  tb->faults().plan_host_restart("rwcp-inner", crash_at + sim::from_sec(2.0));
  const JobRun run = run_job(tb, knapsack_spec(inst));

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_EQ(tb->allocator()->journal_replays(), 1u);
  EXPECT_EQ(parts_started(tb), 3u);
}

TEST(Recovery, QServerCrashMidRunDoesNotRerunParts) {
  knapsack::Instance inst = knapsack::no_prune_instance(14, 11);
  const sim::Time crash_at = mid_search_time(inst);

  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("compas02", crash_at);
  tb->faults().plan_host_restart("compas02", crash_at + sim::from_sec(1.0));
  const JobRun run = run_job(tb, knapsack_spec(inst));

  // The victim's slave rank died mid-search; the master reclaimed its
  // subtrees, so the optimum is intact.
  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_GE(run.stats.slaves_lost, 1u);

  // The restarted Q server replayed its journal: the bootstrapped part is
  // recorded as lost (its MPI world is fixed), NOT re-dispatched — a part
  // never runs twice.
  const auto& qs = tb->qservers();
  auto victim = std::find_if(qs.begin(), qs.end(), [](const auto& q) {
    return q->contact().host == "compas02";
  });
  ASSERT_NE(victim, qs.end());
  EXPECT_EQ((*victim)->journal_replays(), 1u);
  EXPECT_EQ((*victim)->parts_lost_on_restart(), 1u);
  EXPECT_EQ((*victim)->parts_redispatched(), 0u);
  EXPECT_EQ(parts_started(tb), 3u);
}

TEST(Recovery, RelayHostCrashDuringStartupStrandsNoRank) {
  // Crashing rwcp-inner severs EVERY proxied MPI link at once — including
  // barrier-release frames sitting in the relay's store-and-forward
  // buffers. Two layers keep the survivors from parking forever: the
  // dialed-link monitors surface the master's death even to ranks the
  // master never dialed back, and the loss-tolerant startup barrier lets a
  // slave that lost rank 0 exit cleanly instead of waiting for a release
  // that burned with the relay. The master reclaims every orphaned
  // partition, so the job completes degraded with the optimum intact.
  knapsack::Instance inst = knapsack::no_prune_instance(16, 2);
  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("rwcp-inner", sim::from_sec(0.32));
  tb->faults().plan_host_restart("rwcp-inner", sim::from_sec(2.32));
  rmf::JobSpec spec = knapsack_spec(inst);
  spec.placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  const JobRun run = run_job(tb, spec);

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  // A stranded rank is exactly the regression this guards against: before
  // the monitors + loss-tolerant barrier, ranks whose release frame died
  // with the relay parked in recv() until the job deadline.
  for (const auto& name : tb->engine().blocked_process_names()) {
    EXPECT_EQ(name.rfind("job", 0), std::string::npos)
        << "rank process still parked after completion: " << name;
  }
}

TEST(Recovery, GatekeeperCrashRecoveryIsDeterministicPerSeed) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 5);
  const sim::Time crash_at = mid_search_time(inst, 5);

  auto once = [&] {
    Testbed tb = make_recovery_grid(5);
    tb->faults().plan_host_crash("rwcp-gate", crash_at);
    tb->faults().plan_host_restart("rwcp-gate",
                                   crash_at + sim::from_sec(2.0));
    JobRun run = run_job(tb, knapsack_spec(inst));
    return std::tuple(run.stats.best_value, run.stats.total_nodes,
                      run.job.wall_seconds, submit_dedups(tb),
                      tb->gatekeeper()->dones_deduped());
  };
  EXPECT_EQ(once(), once());  // same seed, same schedule -> identical run
}

TEST(Recovery, QueuedJobsSurviveGatekeeperCrash) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 6);
  const sim::Time crash_at = mid_search_time(inst);

  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("rwcp-gate", crash_at);
  tb->faults().plan_host_restart("rwcp-gate", crash_at + sim::from_sec(2.0));

  rmf::JobSpec a = knapsack_spec(inst);
  a.name = "job-a";
  rmf::JobSpec b = knapsack_spec(inst);
  b.name = "job-b";
  b.placements = {{"compas03", 1}, {"compas04", 1}};
  b.nprocs = 2;
  auto results = tb->run_jobs("rwcp-sun", {a, b});
  ASSERT_EQ(results.size(), 2u);
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE((*r).ok) << (*r).error;
    auto stats = knapsack::RunStats::decode((*r).output);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->best_value, inst.total_profit());
  }
  EXPECT_EQ(tb->gatekeeper()->jobs_recovered(), 2u);
  EXPECT_EQ(parts_started(tb), 5u);  // 3 + 2, each exactly once
}

// ---------------------------------------------------- requeue semantics

TEST(Recovery, RequeueBudgetIsPerPartNotPerJob) {
  // Two different placements fail (their hosts are down at submit time);
  // each part gets its own requeue budget, so max_requeues=1 still lets
  // BOTH parts move — a job-level counter would refuse the second. The dead
  // pair is etl-o2k + compas01 so that both replacements land on live
  // compas hosts (replacements inherit the dead part's spent attempts, so a
  // replacement landing on another dead host would burn the budget).
  Testbed tb = make_rwcp_etl_testbed();
  tb->faults(3).crash_host_now("etl-o2k");
  tb->faults().crash_host_now("compas01");
  tb->gatekeeper()->mutable_options().max_requeues = 1;

  knapsack::Instance inst = knapsack::no_prune_instance(12, 8);
  rmf::JobSpec spec = knapsack_spec(inst);
  // Unpinned: fastest-first allocation of 32 CPUs reaches etl-o2k (16) and
  // compas01 (4) after rwcp-sun and etl-sun.
  spec.placements.clear();
  spec.nprocs = 32;
  const JobRun run = run_job(tb, std::move(spec));

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_EQ(tb->gatekeeper()->parts_requeued(), 2u);
}

TEST(Recovery, RequeueBudgetExhaustionFailsCleanly) {
  Testbed tb = make_rwcp_etl_testbed();
  // The three fastest resources are all dead: the single part burns its
  // first attempt plus max_requeues=2 replacements, then gives up.
  for (const char* h : {"rwcp-sun", "etl-sun", "etl-o2k"}) {
    tb->faults(3).crash_host_now(h);
  }
  tb->registry().register_task("noop", [](rmf::JobContext&) {});
  rmf::JobSpec spec;
  spec.name = "noop";
  spec.task = "noop";
  spec.nprocs = 1;
  spec.deadline_seconds = 120;
  auto result = tb->run_job("compas01", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("requeue budget exhausted"), std::string::npos)
      << result->error;
}

// --------------------------------------------------- staging across crash

TEST(Recovery, RestartedSiteResolvesStagedInputs) {
  // The part's inputs live behind gass:// URLs. The site (etl-sun: GASS
  // cache + Q server) crashes while the part is still staging; after the
  // restart, the Q server's journal replay re-dispatches the queued part
  // and its staging must resolve through the *restarted* GASS server —
  // which works because the GASS restart hook (priority 10) runs before
  // the Q server's (40).
  knapsack::Instance inst = knapsack::no_prune_instance(12, 4);
  Testbed tb = make_recovery_grid();
  tb->faults().plan_host_crash("etl-sun", sim::from_sec(0.5));
  tb->faults().plan_host_restart("etl-sun", sim::from_sec(1.5));

  rmf::JobSpec spec = knapsack_spec(inst);
  spec.placements = {{"etl-sun", 2}};
  spec.nprocs = 2;
  spec.stage_via_gass = true;
  // A bulky extra input keeps the WAN pull-through in flight at crash time
  // (~1 s at the calibrated IMnet rate).
  spec.input_files["ballast"] = Bytes(200 * 1024, 0x5a);
  const JobRun run = run_job(tb, std::move(spec));

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  const auto& qs = tb->qservers();
  auto victim = std::find_if(qs.begin(), qs.end(), [](const auto& q) {
    return q->contact().host == "etl-sun";
  });
  ASSERT_NE(victim, qs.end());
  EXPECT_EQ((*victim)->journal_replays(), 1u);
  EXPECT_GE((*victim)->parts_redispatched(), 1u);
}

// ------------------------------------------------------ leases & sweeper

TEST(Recovery, OrphanedJobManagerIsReclaimed) {
  knapsack::Instance inst = knapsack::no_prune_instance(14, 12);
  const sim::Time kill_at = mid_search_time(inst, 13);

  Testbed tb = make_recovery_grid(13);
  rmf::JobSpec spec = knapsack_spec(inst);
  spec.placements.clear();  // allocator-granted, so reclaim has a grant
  spec.nprocs = 4;
  // Kill ONLY the job-manager process (not its host): the gatekeeper's
  // sweeper must notice the dead JM, release its grant, and answer the
  // submitter.
  tb->engine().at(kill_at, [&] {
    auto* jm = tb->gatekeeper()->job_manager_process(1);
    ASSERT_NE(jm, nullptr);
    jm->kill();
  });
  auto result = tb->run_job("rwcp-sun", std::move(spec));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("job manager lost"), std::string::npos)
      << result->error;
  EXPECT_EQ(tb->gatekeeper()->jobs_reclaimed(), 1u);
  // The reclaim released the allocator grant: nothing stays leaked.
  int still_allocated = 0;
  for (const auto& r : tb->allocator()->resources()) {
    still_allocated += r.allocated;
  }
  EXPECT_EQ(still_allocated, 0);
}

TEST(Recovery, LeaseExpiryShedsSilentSiteMidRun) {
  knapsack::Instance inst = knapsack::no_prune_instance(14, 14);

  // Pilot with the same tightened lease knobs to find mid-search.
  core::GridSystem::RecoveryOptions ro;
  ro.lease_duration_s = 0.2;
  ro.heartbeat_interval_s = 0.05;
  auto build = [&] {
    Testbed tb = make_rwcp_etl_testbed();
    tb->faults(21);
    tb->enable_recovery(ro);
    return tb;
  };
  auto spec_of = [&] {
    rmf::JobSpec spec = knapsack_spec(inst);
    spec.placements.clear();
    spec.nprocs = 32;  // reaches compas01+compas02 via the allocator
    // Slow the per-node rate so the search phase comfortably spans the
    // lease probe below.
    spec.args[knapsack::args::kSecPerNode] = "0.0002";
    return spec;
  };
  sim::Time mid;
  {
    Testbed pilot = build();
    JobRun run = run_job(pilot, spec_of());
    mid = sim::from_sec(run.job.wall_seconds - run.stats.app_seconds * 0.5);
  }

  Testbed tb = build();
  tb->faults().plan_host_crash("compas02", mid);  // silent forever

  // While the job is still running (and compas02's lease is overdue), a
  // second client allocates: the grant sweep must expire the silent host
  // and the probe job must succeed without it.
  tb->registry().register_task("noop", [](rmf::JobContext&) {});
  std::optional<Result<rmf::JobResult>> probe;
  tb->engine().spawn("probe", [&](sim::Process& self) {
    self.sleep(sim::to_sec(mid) + 0.3);
    rmf::JobSpec p;
    p.name = "probe";
    p.task = "noop";
    p.credential = "wacs-grid";
    p.nprocs = 1;
    p.deadline_seconds = 60;
    probe = rmf::submit_and_wait(self, tb->net().host("rwcp-sun"),
                                 tb->gatekeeper()->contact(), p);
  });
  const JobRun run = run_job(tb, spec_of());

  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_GE(run.stats.slaves_lost, 1u);
  ASSERT_TRUE(probe.has_value());
  ASSERT_TRUE(probe->ok()) << probe->error().to_string();
  EXPECT_TRUE((**probe).ok) << (**probe).error;
  EXPECT_GE(tb->allocator()->leases_expired(), 1u);
  EXPECT_TRUE(tb->allocator()->lease_expired("compas02"));
  EXPECT_GT(tb->allocator()->heartbeats_received(), 0u);
}

}  // namespace
}  // namespace wacs::rmf
