// Directory semantics the scheduler's resource index depends on: TTL
// expiry and re-registration, kBase vs kSubtree scope resolution, and
// numeric filter terms meeting non-numeric attribute values (the term
// fails, the search survives).
#include <gtest/gtest.h>

#include "mds/directory.hpp"
#include "mds/server.hpp"
#include "simnet/time.hpp"

namespace wacs::mds {
namespace {

Entry entry(const std::string& dn,
            std::map<std::string, std::string> attrs) {
  Entry e;
  e.dn = dn;
  e.attributes = std::move(attrs);
  return e;
}

TEST(MdsSemantics, TtlExpiryDropsExactlyTheLapsedEntries) {
  Directory dir;
  dir.register_entry(entry("o=grid/host=a", {{"site", "s"}}), 100);
  dir.register_entry(entry("o=grid/host=b", {{"site", "s"}}), 200);

  const Filter all = *Filter::parse("");
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree, all, 99).size(), 2u);
  // Expiry boundary is exclusive-at-expiry: an entry is gone AT its
  // expires_at instant.
  auto at_100 = dir.search("o=grid", Scope::kSubtree, all, 100);
  ASSERT_EQ(at_100.size(), 1u);
  EXPECT_EQ(at_100[0].dn, "o=grid/host=b");
  EXPECT_TRUE(dir.search("o=grid", Scope::kSubtree, all, 200).empty());
}

TEST(MdsSemantics, ReRegistrationExtendsTtlAndReplacesAttributes) {
  Directory dir;
  dir.register_entry(entry("o=grid/host=a", {{"cpus", "4"}}), 100);
  // The publisher re-registers before the TTL lapses: new attribute map,
  // new lifetime. The old attributes must not leak through.
  dir.register_entry(entry("o=grid/host=a", {{"cpus", "8"}}), 500);

  const Filter all = *Filter::parse("");
  auto found = dir.search("o=grid", Scope::kSubtree, all, 400);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attributes.at("cpus"), "8");
  EXPECT_TRUE(dir.search("o=grid", Scope::kSubtree, all, 500).empty());
}

TEST(MdsSemantics, ReRegistrationAfterLapseRevives) {
  Directory dir;
  dir.register_entry(entry("o=grid/host=a", {{"site", "s"}}), 100);
  const Filter all = *Filter::parse("");
  EXPECT_TRUE(dir.search("o=grid", Scope::kSubtree, all, 150).empty());
  // The lazily-expired entry is re-registered later (runner came back):
  // a fresh registration, not a resurrection of stale state.
  dir.register_entry(entry("o=grid/host=a", {{"site", "t"}}), 300);
  auto found = dir.search("o=grid", Scope::kSubtree, all, 250);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attributes.at("site"), "t");
}

TEST(MdsSemantics, BaseScopeIsExactDnOnly) {
  Directory dir;
  dir.register_entry(entry("o=grid", {{"kind", "root"}}), 1000);
  dir.register_entry(entry("o=grid/ou=s", {{"kind", "site"}}), 1000);
  dir.register_entry(entry("o=grid/ou=s/host=a", {{"kind", "host"}}), 1000);

  const Filter all = *Filter::parse("");
  auto base = dir.search("o=grid/ou=s", Scope::kBase, all, 0);
  ASSERT_EQ(base.size(), 1u);
  EXPECT_EQ(base[0].attributes.at("kind"), "site");

  auto subtree = dir.search("o=grid/ou=s", Scope::kSubtree, all, 0);
  EXPECT_EQ(subtree.size(), 2u);  // the base entry and the host below it

  // kBase on a DN with descendants but no entry of its own finds nothing.
  dir.unregister_entry("o=grid/ou=s");
  EXPECT_TRUE(dir.search("o=grid/ou=s", Scope::kBase, all, 0).empty());
  EXPECT_EQ(dir.search("o=grid/ou=s", Scope::kSubtree, all, 0).size(), 1u);
}

TEST(MdsSemantics, SubtreeDoesNotMatchDnPrefixesAcrossComponents) {
  Directory dir;
  dir.register_entry(entry("o=grid/ou=s", {}), 1000);
  dir.register_entry(entry("o=grid/ou=s2", {}), 1000);
  const Filter all = *Filter::parse("");
  // "o=grid/ou=s" must not capture "o=grid/ou=s2" (string-prefix trap).
  auto found = dir.search("o=grid/ou=s", Scope::kSubtree, all, 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].dn, "o=grid/ou=s");
}

TEST(MdsSemantics, NumericFilterOnNonNumericAttrFailsTheTermNotTheSearch) {
  Directory dir;
  dir.register_entry(entry("o=grid/host=a", {{"cpus", "lots"}}), 1000);
  dir.register_entry(entry("o=grid/host=b", {{"cpus", "8"}}), 1000);

  // ">=" against "lots" must fail host=a's term (excluding it) without
  // crashing or failing the whole search; host=b still matches.
  const auto ge = Filter::parse("(cpus>=4)");
  ASSERT_TRUE(ge.ok());
  auto found = dir.search("o=grid", Scope::kSubtree, *ge, 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].dn, "o=grid/host=b");

  const auto le = Filter::parse("(cpus<=16)");
  ASSERT_TRUE(le.ok());
  found = dir.search("o=grid", Scope::kSubtree, *le, 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].dn, "o=grid/host=b");

  // Presence and equality still treat the value as an opaque string.
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree,
                       *Filter::parse("(cpus=*)"), 0)
                .size(),
            2u);
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree,
                       *Filter::parse("(cpus=lots)"), 0)
                .size(),
            1u);
}

TEST(MdsSemantics, NumericFilterEdgeValues) {
  Directory dir;
  dir.register_entry(entry("o=grid/host=a", {{"cpus", ""}}), 1000);
  dir.register_entry(entry("o=grid/host=b", {{"cpus", "8x"}}), 1000);
  dir.register_entry(entry("o=grid/host=c", {{"cpus", "8"}}), 1000);
  // Empty and trailing-garbage values are non-numeric: term fails.
  auto found =
      dir.search("o=grid", Scope::kSubtree, *Filter::parse("(cpus>=0)"), 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].dn, "o=grid/host=c");
}

}  // namespace
}  // namespace wacs::mds
