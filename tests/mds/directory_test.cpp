// MDS data model: DNs, filters, scopes, TTL expiry.
#include "mds/directory.hpp"

#include <gtest/gtest.h>

namespace wacs::mds {
namespace {

Entry host_entry(const std::string& site, const std::string& host, int cpus,
                 double speed) {
  Entry e;
  e.dn = "o=grid/ou=" + site + "/host=" + host;
  e.attributes = {{"cpus", std::to_string(cpus)},
                  {"speed", std::to_string(speed)},
                  {"site", site}};
  return e;
}

TEST(DnSubtree, MatchesSelfAndDescendants) {
  EXPECT_TRUE(dn_in_subtree("o=grid", "o=grid"));
  EXPECT_TRUE(dn_in_subtree("o=grid/ou=rwcp", "o=grid"));
  EXPECT_TRUE(dn_in_subtree("o=grid/ou=rwcp/host=a", "o=grid/ou=rwcp"));
  EXPECT_FALSE(dn_in_subtree("o=grid", "o=grid/ou=rwcp"));
  EXPECT_FALSE(dn_in_subtree("o=gridx/ou=rwcp", "o=grid"));
  EXPECT_FALSE(dn_in_subtree("o=other", "o=grid"));
}

TEST(FilterParse, AllOperatorForms) {
  auto f = Filter::parse("(site=rwcp)(cpus>=8)(speed<=1.0)(gatekeeper=*)");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->terms.size(), 4u);
  EXPECT_EQ(f->terms[0].op, FilterTerm::Op::kEquals);
  EXPECT_EQ(f->terms[1].op, FilterTerm::Op::kGreaterOrEqual);
  EXPECT_EQ(f->terms[2].op, FilterTerm::Op::kLessOrEqual);
  EXPECT_EQ(f->terms[3].op, FilterTerm::Op::kPresent);
}

TEST(FilterParse, EmptyFilterMatchesEverything) {
  auto f = Filter::parse("");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->matches(host_entry("rwcp", "a", 4, 1.0)));
}

TEST(FilterParse, RejectsMalformedInput) {
  EXPECT_FALSE(Filter::parse("site=rwcp").ok());     // missing parens
  EXPECT_FALSE(Filter::parse("(site=rwcp").ok());    // unterminated
  EXPECT_FALSE(Filter::parse("(noop)").ok());        // no operator
  EXPECT_FALSE(Filter::parse("(=x)").ok());          // empty attribute
  EXPECT_FALSE(Filter::parse("(cpus>=)").ok());      // empty value
}

TEST(Filter, EqualityAndPresence) {
  Entry e = host_entry("rwcp", "rwcp-sun", 4, 1.0);
  EXPECT_TRUE(Filter::parse("(site=rwcp)")->matches(e));
  EXPECT_FALSE(Filter::parse("(site=etl)")->matches(e));
  EXPECT_TRUE(Filter::parse("(cpus=*)")->matches(e));
  EXPECT_FALSE(Filter::parse("(gpu=*)")->matches(e));
}

TEST(Filter, NumericComparisons) {
  Entry e = host_entry("etl", "etl-o2k", 16, 0.95);
  EXPECT_TRUE(Filter::parse("(cpus>=8)")->matches(e));
  EXPECT_TRUE(Filter::parse("(cpus>=16)")->matches(e));
  EXPECT_FALSE(Filter::parse("(cpus>=17)")->matches(e));
  EXPECT_TRUE(Filter::parse("(speed<=1)")->matches(e));
  EXPECT_FALSE(Filter::parse("(speed<=0.5)")->matches(e));
  // Comparing a non-numeric attribute never matches.
  EXPECT_FALSE(Filter::parse("(site>=1)")->matches(e));
}

TEST(Filter, TermsAndTogether) {
  Entry e = host_entry("etl", "etl-o2k", 16, 0.95);
  EXPECT_TRUE(Filter::parse("(site=etl)(cpus>=8)")->matches(e));
  EXPECT_FALSE(Filter::parse("(site=etl)(cpus>=32)")->matches(e));
}

TEST(Directory, ScopeSemantics) {
  Directory dir;
  dir.register_entry(host_entry("rwcp", "a", 4, 1.0), 1000);
  dir.register_entry(host_entry("rwcp", "b", 4, 1.0), 1000);
  dir.register_entry(host_entry("etl", "c", 16, 0.95), 1000);
  Filter all;

  auto subtree = dir.search("o=grid", Scope::kSubtree, all, 0);
  EXPECT_EQ(subtree.size(), 3u);
  auto rwcp_only = dir.search("o=grid/ou=rwcp", Scope::kSubtree, all, 0);
  EXPECT_EQ(rwcp_only.size(), 2u);
  auto base_only =
      dir.search("o=grid/ou=rwcp/host=a", Scope::kBase, all, 0);
  ASSERT_EQ(base_only.size(), 1u);
  EXPECT_EQ(base_only[0].dn, "o=grid/ou=rwcp/host=a");
  EXPECT_TRUE(dir.search("o=grid", Scope::kBase, all, 0).empty());
}

TEST(Directory, TtlExpiryIsLazyButEffective) {
  Directory dir;
  dir.register_entry(host_entry("rwcp", "a", 4, 1.0), /*expires_at=*/100);
  dir.register_entry(host_entry("rwcp", "b", 4, 1.0), /*expires_at=*/200);
  Filter all;
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree, all, 50).size(), 2u);
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree, all, 100).size(), 1u);
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree, all, 250).size(), 0u);
  EXPECT_EQ(dir.size(), 0u);  // expired entries were reaped
}

TEST(Directory, ReRegistrationReplacesAndExtends) {
  Directory dir;
  Entry e = host_entry("rwcp", "a", 4, 1.0);
  dir.register_entry(e, 100);
  e.attributes["cpus"] = "8";
  dir.register_entry(e, 500);
  auto found = dir.search("o=grid", Scope::kSubtree,
                          *Filter::parse("(cpus=8)"), 200);
  ASSERT_EQ(found.size(), 1u);
}

TEST(Directory, UnregisterRemoves) {
  Directory dir;
  dir.register_entry(host_entry("rwcp", "a", 4, 1.0), 1000);
  dir.unregister_entry("o=grid/ou=rwcp/host=a");
  dir.unregister_entry("o=grid/ou=rwcp/host=nonexistent");  // no-op
  EXPECT_EQ(dir.search("o=grid", Scope::kSubtree, Filter{}, 0).size(), 0u);
}

TEST(MdsProtocol, RoundTrips) {
  RegisterRequest reg{host_entry("rwcp", "a", 4, 1.0), 5000};
  auto dreg = RegisterRequest::decode(reg.encode());
  ASSERT_TRUE(dreg.ok());
  EXPECT_EQ(dreg->entry, reg.entry);
  EXPECT_EQ(dreg->ttl_ns, 5000);

  SearchRequest s{"o=grid", Scope::kSubtree, "(cpus>=8)"};
  auto ds = SearchRequest::decode(s.encode());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->base, "o=grid");
  EXPECT_EQ(ds->filter, "(cpus>=8)");

  SearchReply reply{true, "", {host_entry("etl", "c", 16, 0.95)}};
  auto dr = SearchReply::decode(reply.encode());
  ASSERT_TRUE(dr.ok());
  ASSERT_EQ(dr->entries.size(), 1u);
  EXPECT_EQ(dr->entries[0], reply.entries[0]);

  EXPECT_FALSE(SearchRequest::decode(reg.encode()).ok());  // cross-decode
}

}  // namespace
}  // namespace wacs::mds
