// MDS daemon over the simulated network, including the testbed's automatic
// resource publication.
#include "mds/server.hpp"

#include <gtest/gtest.h>

#include "core/testbeds.hpp"

namespace wacs::mds {
namespace {

TEST(MdsServer, PublishSearchWithdrawCycle) {
  auto tb = core::make_rwcp_etl_testbed();
  // A fresh private MDS for this test (the testbed's own lives on
  // rwcp-gate; use another port via a second server on etl-sun).
  DirectoryServer server(tb->net().host("etl-sun"), 21350);
  server.start();

  bool done = false;
  tb->engine().spawn("client", [&](sim::Process& self) {
    MdsClient client(tb->net().host("etl-o2k"), server.contact());
    Entry e;
    e.dn = "o=grid/ou=etl/host=etl-o2k";
    e.attributes = {{"cpus", "16"}, {"site", "etl"}};
    ASSERT_TRUE(client.publish(self, e, 3600).ok());

    auto found = client.search(self, "o=grid", Scope::kSubtree, "(cpus>=8)");
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), 1u);
    EXPECT_EQ((*found)[0].dn, e.dn);

    ASSERT_TRUE(client.withdraw(self, e.dn).ok());
    auto gone = client.search(self, "o=grid", Scope::kSubtree, "");
    ASSERT_TRUE(gone.ok());
    EXPECT_TRUE(gone->empty());
    done = true;
  });
  tb->engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server.registrations(), 1u);
  EXPECT_GE(server.searches(), 2u);
}

TEST(MdsServer, TtlExpiresEntriesInVirtualTime) {
  auto tb = core::make_rwcp_etl_testbed();
  DirectoryServer server(tb->net().host("etl-sun"), 21350);
  server.start();

  std::size_t before = 999, after = 999;
  tb->engine().spawn("client", [&](sim::Process& self) {
    MdsClient client(tb->net().host("etl-o2k"), server.contact());
    Entry e;
    e.dn = "o=grid/ou=etl/host=ephemeral";
    e.attributes = {{"cpus", "1"}};
    ASSERT_TRUE(client.publish(self, e, /*ttl=*/2.0).ok());
    auto now_result = client.search(self, "o=grid", Scope::kSubtree, "");
    ASSERT_TRUE(now_result.ok());
    before = now_result->size();
    self.sleep(3.0);  // past the TTL
    auto later = client.search(self, "o=grid", Scope::kSubtree, "");
    ASSERT_TRUE(later.ok());
    after = later->size();
  });
  tb->engine().run();
  EXPECT_EQ(before, 1u);
  EXPECT_EQ(after, 0u);
}

TEST(MdsServer, BadFilterReturnsErrorNotCrash) {
  auto tb = core::make_rwcp_etl_testbed();
  bool got_error = false;
  tb->engine().spawn("client", [&](sim::Process& self) {
    MdsClient client(tb->net().host("etl-o2k"),
                     tb->mds_server()->contact());
    auto r = client.search(self, "o=grid", Scope::kSubtree, "(((");
    got_error = !r.ok();
  });
  tb->engine().run();
  EXPECT_TRUE(got_error);
}

TEST(MdsTestbed, ResourcesArePublishedAutomatically) {
  auto tb = core::make_rwcp_etl_testbed();
  std::vector<Entry> hosts;
  std::vector<Entry> big;
  tb->engine().spawn("client", [&](sim::Process& self) {
    self.sleep(0.1);  // publication happens at boot
    MdsClient client(tb->net().host("etl-sun"),
                     tb->mds_server()->contact());
    auto all = client.search(self, "o=grid", Scope::kSubtree, "(cpus=*)");
    ASSERT_TRUE(all.ok());
    hosts = *all;
    auto filtered =
        client.search(self, "o=grid", Scope::kSubtree, "(cpus>=8)");
    ASSERT_TRUE(filtered.ok());
    big = *filtered;
  });
  tb->engine().run();
  // 11 Q-server resources: rwcp-sun + 8 compas + etl-sun + etl-o2k.
  EXPECT_EQ(hosts.size(), 11u);
  // Only the Origin 2000 has >= 8 CPUs.
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].dn, "o=grid/ou=etl/host=etl-o2k");
  EXPECT_EQ(big[0].attributes.at("qserver"), "etl-o2k:7100");
}

TEST(MdsTestbed, GatekeeperServiceIsDiscoverable) {
  auto tb = core::make_rwcp_etl_testbed();
  std::string contact;
  tb->engine().spawn("client", [&](sim::Process& self) {
    self.sleep(0.1);
    MdsClient client(tb->net().host("etl-sun"),
                     tb->mds_server()->contact());
    auto found = client.search(self, "o=grid/service=gatekeeper",
                               Scope::kBase, "");
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), 1u);
    contact = (*found)[0].attributes.at("contact");
  });
  tb->engine().run();
  EXPECT_EQ(contact, "rwcp-gate:2119");
}

TEST(MdsTestbed, QueriesCrossTheFirewallOutbound) {
  // A client inside RWCP can query the DMZ-hosted MDS (outbound allowed);
  // the deny-based inbound policy is untouched.
  auto tb = core::make_rwcp_etl_testbed();
  std::size_t found = 0;
  tb->engine().spawn("client", [&](sim::Process& self) {
    self.sleep(0.1);
    MdsClient client(tb->net().host("compas03"),
                     tb->mds_server()->contact());
    auto r = client.search(self, "o=grid/ou=rwcp", Scope::kSubtree,
                           "(site=rwcp)");
    ASSERT_TRUE(r.ok());
    found = r->size();
  });
  tb->engine().run();
  EXPECT_EQ(found, 9u);  // rwcp-sun + 8 COMPaS nodes
}

}  // namespace
}  // namespace wacs::mds
