// Wire-level round trips for the observability protocol: varints, Hello,
// Report, and the truncation guards (a hostile or cut-short frame must be
// an error, never UB or a huge allocation).
#include <gtest/gtest.h>

#include <limits>

#include "obs/wire.hpp"

namespace wacs::obs {
namespace {

TEST(ObsWire, UvarintRoundTripsBoundaryValues) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{0xFFFFFFFF}, ~std::uint64_t{0}}) {
    BufWriter w;
    put_uvarint(w, v);
    BufReader r(w.bytes());
    auto back = get_uvarint(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(ObsWire, VarintZigzagKeepsSmallMagnitudesSmall) {
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{1}, std::int64_t{-64}}) {
    BufWriter w;
    put_varint(w, v);
    EXPECT_EQ(w.bytes().size(), 1u) << v;
    BufReader r(w.bytes());
    auto back = get_varint(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  for (const std::int64_t v :
       {std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max(), std::int64_t{-123456789}}) {
    BufWriter w;
    put_varint(w, v);
    BufReader r(w.bytes());
    auto back = get_varint(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(ObsWire, TruncatedUvarintIsError) {
  BufWriter w;
  put_uvarint(w, 300);  // two bytes
  Bytes cut(w.bytes().begin(), w.bytes().begin() + 1);
  BufReader r(cut);
  EXPECT_FALSE(get_uvarint(r).ok());
}

TEST(ObsWire, HelloRoundTrip) {
  Hello hello{"rwcp", "rwcp-sun"};
  const Bytes frame = hello.encode();
  auto type = peek_type(frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, kMsgHello);
  auto back = Hello::decode(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->site, "rwcp");
  EXPECT_EQ(back->agent_host, "rwcp-sun");
}

TEST(ObsWire, ReportRoundTrip) {
  Report report;
  report.seq = 42;
  report.t_ns = 1'250'000'000;
  report.final_report = true;
  report.defs = {{0, "q.compas01.queue_depth"}, {1, "wan.rwcp-etl.bytes"}};
  report.samples = {{0, -3}, {1, 98765}};
  report.health = {{"qserver@compas01", Health::kUp},
                   {"gatekeeper@rwcp-sun", Health::kDegraded}};

  const Bytes frame = report.encode();
  auto type = peek_type(frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, kMsgReport);

  auto back = Report::decode(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->t_ns, 1'250'000'000);
  EXPECT_TRUE(back->final_report);
  EXPECT_EQ(back->defs, report.defs);
  EXPECT_EQ(back->samples, report.samples);
  EXPECT_EQ(back->health, report.health);
}

TEST(ObsWire, EmptyReportIsTiny) {
  Report report;
  report.seq = 7;
  report.t_ns = 1'000'000'000;
  // An idle site: no new defs, no non-zero deltas, no health changes.
  const Bytes frame = report.encode();
  EXPECT_LE(frame.size(), 16u);
  auto back = Report::decode(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->defs.empty());
  EXPECT_TRUE(back->samples.empty());
}

TEST(ObsWire, TruncatedReportIsError) {
  Report report;
  report.seq = 1;
  report.defs = {{0, "some.series.name"}};
  report.samples = {{0, 12345}};
  const Bytes frame = report.encode();
  // Every strict prefix must decode to an error, not a crash.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    Bytes cut(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_FALSE(Report::decode(cut).ok()) << "prefix length " << n;
  }
}

TEST(ObsWire, BogusHealthByteIsError) {
  Report report;
  report.health = {{"x", Health::kDown}};
  Bytes frame = report.encode();
  frame.back() = 99;  // health state is the last byte of this frame
  EXPECT_FALSE(Report::decode(frame).ok());
}

TEST(ObsWire, WrongTypeTagRejected) {
  Hello hello{"rwcp", "rwcp-sun"};
  EXPECT_FALSE(Report::decode(hello.encode()).ok());
  Report report;
  EXPECT_FALSE(Hello::decode(report.encode()).ok());
}

}  // namespace
}  // namespace wacs::obs
