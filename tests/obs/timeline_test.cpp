// Collector-side state: ring semantics, SLO evaluation, verdict
// aggregation, staleness, and the JSONL journal round trip wacs-top
// depends on.
#include <gtest/gtest.h>

#include "obs/timeline.hpp"

namespace wacs::obs {
namespace {

SiteReport report(const std::string& site, std::int64_t t_ns,
                  std::vector<std::pair<std::string, std::int64_t>> series,
                  std::vector<std::pair<std::string, Health>> health = {},
                  bool final_report = false) {
  SiteReport r;
  r.site = site;
  r.t_ns = t_ns;
  r.series = std::move(series);
  r.health = std::move(health);
  r.final_report = final_report;
  return r;
}

TEST(ObsRing, OverwritesOldestWhenFull) {
  Ring ring(3);
  for (std::int64_t i = 1; i <= 5; ++i) ring.push({i, i * 10});
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).v, 30);
  EXPECT_EQ(ring.at(1).v, 40);
  EXPECT_EQ(ring.at(2).v, 50);
  EXPECT_EQ(ring.latest().t_ns, 5);
}

TEST(ObsRing, ZeroCapacityClampsToOne) {
  Ring ring(0);
  ring.push({1, 1});
  ring.push({2, 2});
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.latest().v, 2);
}

TEST(ObsTimeline, ValueSloBreachDegradesVerdict) {
  TimelineState state;
  state.apply(report("rwcp", 1'000'000'000, {{"q.compas01.queue_depth", 40}}));
  const auto breaches = state.breaches("rwcp");
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].rule, "queue_depth_high");
  EXPECT_EQ(state.verdict("rwcp", 1'000'000'000), Health::kDegraded);
}

TEST(ObsTimeline, RateSloNeedsTwoPointsAndRealRate) {
  TimelineState state;
  state.apply(report("rwcp", 1'000'000'000, {{"wan.rwcp-etl.bytes", 0}}));
  EXPECT_TRUE(state.breaches("rwcp").empty());  // one point: no rate yet
  // +180000 B over 1s > the 168750 B/s saturation threshold.
  state.apply(report("rwcp", 2'000'000'000, {{"wan.rwcp-etl.bytes", 180000}}));
  const auto breaches = state.breaches("rwcp");
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].rule, "wan_link_saturated");
  // Link drains: absolute value still high, rate back under threshold.
  state.apply(report("rwcp", 3'000'000'000, {{"wan.rwcp-etl.bytes", 190000}}));
  EXPECT_TRUE(state.breaches("rwcp").empty());
}

TEST(ObsTimeline, ComponentHealthFeedsVerdictWorstWins) {
  TimelineState state;
  state.apply(report("etl", 1'000'000'000, {},
                     {{"qserver@etl-sun", Health::kUp},
                      {"qserver@etl-o2k", Health::kDown}}));
  EXPECT_EQ(state.verdict("etl", 1'000'000'000), Health::kDown);
  // A later report flips the bad component back up.
  state.apply(report("etl", 2'000'000'000, {},
                     {{"qserver@etl-o2k", Health::kUp}}));
  EXPECT_EQ(state.verdict("etl", 2'000'000'000), Health::kUp);
}

TEST(ObsTimeline, SilenceGoesStaleUnlessFinal) {
  TimelineState state;
  state.apply(report("etl", 1'000'000'000, {}));
  EXPECT_EQ(state.verdict("etl", 1'500'000'000), Health::kUp);
  // Quiet past stale_after (1s default): the site is presumed down.
  EXPECT_EQ(state.verdict("etl", 2'500'000'000), Health::kDown);
  // A final report makes silence expected.
  state.apply(report("etl", 3'000'000'000, {}, {}, /*final=*/true));
  EXPECT_EQ(state.verdict("etl", 60'000'000'000), Health::kUp);
}

TEST(ObsTimeline, UnknownSiteIsDown) {
  TimelineState state;
  EXPECT_EQ(state.verdict("nowhere", 0), Health::kDown);
  EXPECT_TRUE(state.breaches("nowhere").empty());
}

TEST(ObsTimeline, JournalLineRoundTrips) {
  SiteReport r = report("rwcp", 1'250'000'000,
                        {{"q.compas01.queue_depth", 3},
                         {"wan.rwcp-etl.bytes", 98765}},
                        {{"gatekeeper@rwcp-sun", Health::kDegraded}},
                        /*final=*/true);
  r.seq = 9;
  const std::string line = report_to_jsonl(r);
  auto back = report_from_jsonl(line);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->site, r.site);
  EXPECT_EQ(back->seq, r.seq);
  EXPECT_EQ(back->t_ns, r.t_ns);
  EXPECT_EQ(back->final_report, r.final_report);
  EXPECT_EQ(back->series, r.series);
  EXPECT_EQ(back->health, r.health);
  // Byte-stable: re-encoding the decoded report reproduces the line.
  EXPECT_EQ(report_to_jsonl(*back), line);
}

TEST(ObsTimeline, MalformedJournalLinesAreErrors) {
  EXPECT_FALSE(report_from_jsonl("not json").ok());
  EXPECT_FALSE(report_from_jsonl("{\"t\":1}").ok());  // no site
  EXPECT_FALSE(
      report_from_jsonl(
          "{\"site\":\"x\",\"health\":{\"c\":\"sideways\"}}")
          .ok());  // bad health name
}

TEST(ObsTimeline, SnapshotJsonCarriesVerdictAndSeries) {
  TimelineState state;
  state.apply(report("rwcp", 1'000'000'000,
                     {{"q.compas01.queue_depth", 40}},
                     {{"qserver@compas01", Health::kUp}}));
  const json::Value snap = state.snapshot_json(1'000'000'000);
  const json::Value* sites = snap.find("sites");
  ASSERT_NE(sites, nullptr);
  const json::Value* rwcp = sites->find("rwcp");
  ASSERT_NE(rwcp, nullptr);
  EXPECT_EQ(rwcp->find("verdict")->as_string(), "degraded");
  EXPECT_EQ(rwcp->find("breaches")->items().size(), 1u);
  EXPECT_EQ(
      rwcp->find("series")->find("q.compas01.queue_depth")->items().size(),
      1u);
}

TEST(ObsTimeline, RenderTopShowsBreachesAndSparklines) {
  TimelineState state;
  state.apply(report("rwcp", 1'000'000'000,
                     {{"q.compas01.queue_depth", 40}},
                     {{"allocator@rwcp-inner", Health::kDown}}));
  const std::string top = state.render_top(1'000'000'000);
  EXPECT_NE(top.find("site rwcp"), std::string::npos);
  EXPECT_NE(top.find("queue_depth_high"), std::string::npos);
  EXPECT_NE(top.find("allocator@rwcp-inner"), std::string::npos);
  EXPECT_NE(top.find('|'), std::string::npos);  // a sparkline rendered
}

TEST(ObsTimeline, SchedulerSeriesRenderInTopAndJson) {
  TimelineState state;
  state.apply(report("hub", 1'000'000'000,
                     {{"sched.pending", 120},
                      {"sched.top_share_bp", 1375},
                      {"sched.dispatched", 480},
                      {"plain.counter", 7}},
                     {{"scheduler@hub-sched", Health::kUp}}));
  const std::string top = state.render_top(1'000'000'000);
  EXPECT_NE(top.find("sched.pending"), std::string::npos);
  EXPECT_NE(top.find("sched.top_share_bp"), std::string::npos);
  EXPECT_NE(top.find("sched.dispatched"), std::string::npos);
  // Series without load signal stay out of the top view but survive in
  // the snapshot, so wacs-top --json remains a complete CI artifact.
  EXPECT_EQ(top.find("plain.counter"), std::string::npos);
  const json::Value snap = state.snapshot_json(1'000'000'000);
  const json::Value* series = snap.find("sites")->find("hub")->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_NE(series->find("sched.pending"), nullptr);
  ASSERT_NE(series->find("plain.counter"), nullptr);
  EXPECT_EQ(series->find("plain.counter")->items().size(), 1u);
}

}  // namespace
}  // namespace wacs::obs
