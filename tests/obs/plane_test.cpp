// End-to-end observability plane on the Figure-5 wide-area grid
// (DESIGN.md §14): deterministic journals, a zero-cost kill switch, no
// firewall holes punched for metrics, and graceful degradation when a
// monitored site crashes.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "simnet/time.hpp"

namespace wacs::obs {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;

rmf::JobSpec knapsack_spec(const knapsack::Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "obs-test";
  spec.task = knapsack::kParallelTask;
  // Cross-site placement: the metrics deltas share the proxied port with
  // real steal traffic.
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {"etl-o2k", 2}};
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{knapsack::args::kInterval, "200"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kBackUnit, "32"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  spec.deadline_seconds = 300;
  return spec;
}

rmf::JobResult run_knapsack(Testbed& tb, const knapsack::Instance& inst) {
  auto result = tb->run_job("rwcp-sun", knapsack_spec(inst));
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  return *result;
}

std::size_t total_firewall_rules(Testbed& tb) {
  std::size_t n = 0;
  for (const auto& site : {"rwcp", "etl"}) {
    n += tb->net().site(site).firewall().policy().rules().size();
  }
  return n;
}

TEST(ObsPlane, SameSeedRunsProduceByteIdenticalJournals) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 5);
  std::string journal[2];
  std::string snapshot[2];
  for (int i = 0; i < 2; ++i) {
    Testbed tb = make_rwcp_etl_testbed();
    tb->enable_observability("rwcp-sun");
    ASSERT_TRUE(tb->observability_enabled());
    run_knapsack(tb, inst);
    ASSERT_GT(tb->collector()->reports_received(), 0u);
    EXPECT_EQ(tb->collector()->decode_errors(), 0u);
    journal[i] = tb->collector()->journal();
    snapshot[i] =
        tb->collector()->timeline().snapshot_json(tb->engine().now()).dump();
  }
  EXPECT_EQ(journal[0], journal[1]);
  EXPECT_EQ(snapshot[0], snapshot[1]);
  EXPECT_FALSE(journal[0].empty());
}

TEST(ObsPlane, JournalCapRotatesOnLineBoundariesKeepingTheTail) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 5);

  // Unbounded reference run, then the same seed with a tiny cap.
  std::string unbounded;
  {
    Testbed tb = make_rwcp_etl_testbed();
    tb->enable_observability("rwcp-sun");
    run_knapsack(tb, inst);
    unbounded = tb->collector()->journal();
  }

  Testbed tb = make_rwcp_etl_testbed();
  core::GridSystem::ObservabilityOptions opts;
  opts.journal_max_bytes = 512;
  tb->enable_observability("rwcp-sun", opts);
  run_knapsack(tb, inst);
  const obs::Collector& c = *tb->collector();

  ASSERT_GT(unbounded.size(), 2 * opts.journal_max_bytes)
      << "instance too small to exercise rotation";
  EXPECT_GE(c.journal_rotations(), 1u);
  EXPECT_FALSE(c.rotated_journal().empty());
  // Rotation happens right after the line that crossed the cap, so each
  // generation holds whole lines and stays within cap + one max line.
  EXPECT_EQ(c.rotated_journal().back(), '\n');
  ASSERT_FALSE(unbounded.empty());
  // The two generations together are exactly the newest tail of the
  // unbounded journal: rotation drops old history, never recent lines.
  const std::string tail = c.rotated_journal() + c.journal();
  ASSERT_LE(tail.size(), unbounded.size());
  EXPECT_EQ(tail, unbounded.substr(unbounded.size() - tail.size()));
}

TEST(ObsPlane, ExportOnDoesNotChangeJobOutcome) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 6);
  Testbed plain = make_rwcp_etl_testbed();
  const rmf::JobResult off = run_knapsack(plain, inst);

  Testbed tb = make_rwcp_etl_testbed();
  tb->enable_observability("rwcp-sun");
  const rmf::JobResult on = run_knapsack(tb, inst);

  auto stats_off = knapsack::RunStats::decode(off.output);
  auto stats_on = knapsack::RunStats::decode(on.output);
  ASSERT_TRUE(stats_off.ok());
  ASSERT_TRUE(stats_on.ok());
  EXPECT_EQ(stats_on->best_value, stats_off->best_value);
  EXPECT_EQ(stats_on->total_nodes, stats_off->total_nodes);
}

TEST(ObsPlane, KillSwitchDisablesThePlaneEntirely) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 7);
  Testbed plain = make_rwcp_etl_testbed();
  const rmf::JobResult baseline = run_knapsack(plain, inst);

  ::setenv("WACS_OBS", "0", 1);
  Testbed tb = make_rwcp_etl_testbed();
  tb->enable_observability("rwcp-sun");
  ::unsetenv("WACS_OBS");
  EXPECT_FALSE(tb->observability_enabled());
  EXPECT_EQ(tb->collector(), nullptr);
  EXPECT_TRUE(tb->metrics_agents().empty());
  // With the switch thrown the run is byte-for-byte the un-instrumented
  // one — same virtual makespan, not merely the same answer.
  const rmf::JobResult result = run_knapsack(tb, inst);
  EXPECT_EQ(result.wall_seconds, baseline.wall_seconds);
}

TEST(ObsPlane, NoFirewallHolesPunchedForMetrics) {
  Testbed plain = make_rwcp_etl_testbed();
  const std::size_t baseline_rules = total_firewall_rules(plain);

  knapsack::Instance inst = knapsack::no_prune_instance(12, 8);
  Testbed tb = make_rwcp_etl_testbed();
  tb->enable_observability("rwcp-sun");
  run_knapsack(tb, inst);
  // The collector heard from the remote site (so the path works) without
  // a single rule beyond what the un-instrumented grid deploys.
  EXPECT_EQ(total_firewall_rules(tb), baseline_rules);
  bool heard_etl = false;
  for (const auto& site : tb->collector()->timeline().sites()) {
    if (site == "etl") heard_etl = true;
  }
  EXPECT_TRUE(heard_etl);
}

TEST(ObsPlane, SiteCrashDegradesVerdictWithoutWedgingCollector) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 9);
  Testbed tb = make_rwcp_etl_testbed();
  tb->faults(41);
  // etl-sun hosts ETL's metrics agent but no rank of this job: the crash
  // silences the site's telemetry while the computation proceeds.
  tb->faults().plan_host_crash("etl-sun", sim::from_sec(0.08));

  core::GridSystem::ObservabilityOptions opts;
  opts.interval_s = 0.02;
  opts.timeline.stale_after_ns = 50'000'000;  // 50ms: silence = down
  tb->enable_observability("rwcp-sun", opts);

  rmf::JobSpec spec = knapsack_spec(inst);
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {"compas02", 1}};
  spec.nprocs = 4;
  // Slow nodes keep the search alive well past the crash, so the etl
  // agent is provably mid-run when it dies.
  spec.args[knapsack::args::kSecPerNode] = "0.0001";
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;

  // The collector survived the dead peer and kept ingesting rwcp.
  ASSERT_GT(tb->collector()->reports_received(), 0u);
  const auto now = tb->engine().now();
  EXPECT_EQ(tb->collector()->timeline().verdict("rwcp", now), Health::kUp);
  // etl stopped reporting without a final report: verdict-down on
  // staleness, exactly how a crashed site should read.
  EXPECT_EQ(tb->collector()->timeline().verdict("etl", now), Health::kDown);
}

}  // namespace
}  // namespace wacs::obs
