// Scheduler end-to-end over the simulated network: admission verdicts,
// MDS-backed matching, fair-share ordering, EASY backfill, exactly-once
// completion accounting, runner loss, and journal replay after a
// scheduler crash.
//
// engine.run() drains the whole event queue, so each test stages all of
// its submitters, probes, and fault plans first and then runs once.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mds/server.hpp"
#include "sched/runner.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"

namespace wacs::sched {
namespace {

/// Hub site hosting the scheduler (and the MDS on its own host, so a
/// scheduler-host crash does not take the directory down with it), plus N
/// leaf sites with one runner host each. Open firewalls — the
/// firewall-compliance story (runners dial out) is covered by the grid
/// tests; these exercise the scheduling logic.
struct Fixture {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<sim::FaultInjector> fault;
  std::unique_ptr<mds::DirectoryServer> mds;
  std::unique_ptr<Scheduler> sched;
  std::vector<std::unique_ptr<SiteRunner>> runners;

  explicit Fixture(int leaf_sites = 2, int cpus_per_site = 8,
                   std::uint64_t fault_seed = 0) {
    const sim::LinkParams lan{.name = "", .latency_s = 0.0001,
                              .bandwidth_bps = 1e9};
    net.add_site("hub", fw::Policy::open(), lan);
    net.add_host({.name = "hub-host", .site = "hub"});
    net.add_host({.name = "mds-host", .site = "hub"});
    for (int i = 0; i < leaf_sites; ++i) {
      const std::string site = "leaf" + std::to_string(i);
      net.add_site(site, fw::Policy::open(), lan);
      net.add_host({.name = site + "-runner", .site = site,
                    .cpus = cpus_per_site});
      net.connect_sites("hub", site,
                        sim::LinkParams{.name = "wan-" + site,
                                        .latency_s = 0.002,
                                        .bandwidth_bps = 1e8});
    }
    // The injector must exist before the daemons start so their processes
    // get registered for crash kills.
    if (fault_seed != 0) {
      fault = std::make_unique<sim::FaultInjector>(net, fault_seed);
    }

    mds = std::make_unique<mds::DirectoryServer>(net.host("mds-host"), 2135);
    mds->start();

    Scheduler::Options opts;
    opts.mds = mds->contact();
    opts.pass_interval_s = 0.05;
    opts.mds_refresh_s = 0.5;
    sched = std::make_unique<Scheduler>(net.host("hub-host"), opts);
    sched->start();

    for (int i = 0; i < leaf_sites; ++i) {
      const std::string site = "leaf" + std::to_string(i);
      SiteRunner::Options ro;
      ro.site = site;
      ro.scheduler = sched->contact();
      ro.mds = mds->contact();
      ro.hosts = {{site + "-runner", cpus_per_site, 1.0}};
      ro.publish_ttl_s = 30;
      runners.push_back(std::make_unique<SiteRunner>(
          net.host(site + "-runner"), std::move(ro)));
      runners.back()->start();
    }

    if (fault != nullptr) {
      fault->on_host_restart("hub-host", [this] { sched->restart(); }, 25);
      for (auto& r : runners) {
        fault->on_host_restart(r->site() + "-runner",
                               [rp = r.get()] { rp->restart(); });
      }
    }
  }

  // Parked daemon processes unwind at engine shutdown and their unwind
  // touches the daemon objects (the respawn flags) — shut the engine down
  // while scheduler and runners are still alive, not after the members'
  // destructors freed them.
  ~Fixture() { engine.shutdown(); }

  struct SubmitResult {
    bool done = false;
    rmf::SchedSubmitReply reply;
  };

  /// Stages a submitter that dials in after `delay_s` of virtual time.
  /// The reply lands in the returned slot once the engine runs.
  SubmitResult* stage_submit(const std::string& tenant,
                             std::vector<rmf::SchedJob> jobs,
                             double delay_s = 0) {
    results_.push_back(std::make_unique<SubmitResult>());
    SubmitResult* out = results_.back().get();
    engine.spawn("submit." + tenant,
                 [this, tenant, jobs = std::move(jobs), delay_s, out](
                     sim::Process& self) {
      if (delay_s > 0) self.sleep(delay_s);
      auto conn = net.host("hub-host").stack().connect(self, sched->contact());
      ASSERT_TRUE(conn.ok());
      ASSERT_TRUE((*conn)->send(rmf::SchedSubmit{tenant, jobs}.encode()).ok());
      auto frame = (*conn)->recv(self);
      ASSERT_TRUE(frame.ok());
      auto decoded = rmf::SchedSubmitReply::decode(*frame);
      ASSERT_TRUE(decoded.ok());
      out->reply = std::move(*decoded);
      out->done = true;
    });
    return out;
  }

  std::deque<std::unique_ptr<SubmitResult>> results_;
};

std::vector<rmf::SchedJob> jobs(int n, int nprocs = 1, double est = 0.5) {
  std::vector<rmf::SchedJob> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(rmf::SchedJob{static_cast<std::uint64_t>(i + 1), "task",
                                nprocs, est});
  }
  return out;
}

int count_code(const rmf::SchedSubmitReply& reply, rmf::SchedVerdict::Code c) {
  int n = 0;
  for (const auto& v : reply.verdicts) n += (v.code == c) ? 1 : 0;
  return n;
}

TEST(Scheduler, AcceptsDispatchesAndCompletes) {
  Fixture f;
  auto* r = f.stage_submit("alice", jobs(10));
  f.engine.run();

  ASSERT_TRUE(r->done);
  ASSERT_EQ(r->reply.verdicts.size(), 10u);
  for (const auto& v : r->reply.verdicts) {
    EXPECT_EQ(v.code, rmf::SchedVerdict::Code::kAccepted);
    EXPECT_NE(v.sched_id, 0u);
  }
  EXPECT_EQ(f.sched->jobs_accepted(), 10u);
  EXPECT_EQ(f.sched->jobs_completed(), 10u);
  EXPECT_EQ(f.sched->pending_jobs(), 0u);
  EXPECT_EQ(f.sched->inflight_jobs(), 0u);
  EXPECT_GT(f.sched->mds_refreshes(), 0u);
  EXPECT_GT(f.sched->shares().usage("alice", sim::to_sec(f.engine.now())), 0)
      << "completed work must charge the tenant";
}

TEST(Scheduler, InvalidJobsGetErrorVerdicts) {
  Fixture f;
  auto* r = f.stage_submit(
      "alice", {rmf::SchedJob{1, "", 1, 1.0},         // empty task
                rmf::SchedJob{2, "task", 0, 1.0},     // zero width
                rmf::SchedJob{3, "task", 1, -1.0},    // negative estimate
                rmf::SchedJob{4, "task", 9999, 1.0},  // wider than max
                rmf::SchedJob{5, "task", 1, 0.2}});   // valid
  f.engine.run();

  ASSERT_TRUE(r->done);
  ASSERT_EQ(r->reply.verdicts.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r->reply.verdicts[i].code, rmf::SchedVerdict::Code::kError) << i;
    EXPECT_FALSE(r->reply.verdicts[i].error.empty()) << i;
  }
  EXPECT_EQ(r->reply.verdicts[4].code, rmf::SchedVerdict::Code::kAccepted);
  EXPECT_EQ(f.sched->jobs_completed(), 1u);
}

TEST(Scheduler, OverCapSubmissionsShedWithRetryableBusy) {
  Fixture f;
  f.sched->mutable_options().max_pending_per_tenant = 5;
  auto* r = f.stage_submit("alice", jobs(8));
  f.engine.run();

  ASSERT_TRUE(r->done);
  EXPECT_EQ(count_code(r->reply, rmf::SchedVerdict::Code::kAccepted), 5);
  EXPECT_EQ(count_code(r->reply, rmf::SchedVerdict::Code::kBusy), 3);
  for (const auto& v : r->reply.verdicts) {
    if (v.code == rmf::SchedVerdict::Code::kBusy) {
      EXPECT_EQ(v.retry_after_ms, f.sched->mutable_options().retry_after_ms);
    }
  }
  EXPECT_EQ(f.sched->jobs_shed(), 3u);
  EXPECT_EQ(f.sched->jobs_completed(), 5u);
}

TEST(Scheduler, FairShareLetsAFreshTenantJumpTheBacklog) {
  Fixture f(/*leaf_sites=*/1, /*cpus_per_site=*/1);  // fully serialized
  // The hog queues 10 one-second jobs at t=0; a fresh tenant shows up at
  // t=1.5 with two. Under FIFO the fresh jobs would finish last (~t=12);
  // fair-share must run them as soon as the hog has any charged usage.
  f.stage_submit("hog", jobs(10, 1, 1.0));
  f.stage_submit("fresh", jobs(2, 1, 1.0), /*delay_s=*/1.5);

  double fresh_usage_at_probe = -1;
  f.engine.after(6.0, [&f, &fresh_usage_at_probe] {
    fresh_usage_at_probe = f.sched->shares().usage("fresh", 6.0);
  });
  f.engine.run();

  EXPECT_EQ(f.sched->jobs_completed(), 12u);
  EXPECT_GT(fresh_usage_at_probe, 0.5)
      << "fresh tenant's jobs must not wait behind the hog's whole backlog";
}

TEST(Scheduler, BackfillRunsNarrowJobsPastAStuckWideHead) {
  Fixture f(/*leaf_sites=*/1, /*cpus_per_site=*/4);
  // alice's first wide job takes 3 of 4 CPUs for 2 s; her second (the
  // head once the first dispatches) also needs 3, so it is stuck until
  // t=2. bob's narrow 0.1 s jobs fit the leftover CPU and cannot delay
  // the head's reservation — EASY must run them immediately.
  f.stage_submit("alice", jobs(2, 3, 2.0));
  f.stage_submit("bob", jobs(3, 1, 0.1));

  double alice_at_probe = -1;
  double bob_at_probe = -1;
  f.engine.after(1.9, [&] {
    alice_at_probe = f.sched->shares().usage("alice", 1.9);
    bob_at_probe = f.sched->shares().usage("bob", 1.9);
  });
  f.engine.run();

  EXPECT_EQ(f.sched->jobs_completed(), 5u);
  EXPECT_GT(f.sched->jobs_backfilled(), 0u);
  EXPECT_EQ(alice_at_probe, 0) << "the wide head cannot have finished yet";
  EXPECT_GT(bob_at_probe, 0)
      << "narrow jobs must have backfilled past the stuck head";
}

TEST(Scheduler, RunnerCrashRequeuesAndRecovers) {
  Fixture f(/*leaf_sites=*/2, /*cpus_per_site=*/4, /*fault_seed=*/7);
  f.sched->mutable_options().dispatch_grace_s = 2.0;
  f.stage_submit("alice", jobs(16, 1, 1.0));
  // Crash one runner mid-flight: its in-flight jobs die with it and must
  // be requeued by the deadline sweep, finishing on the surviving site or
  // on the restarted one.
  f.fault->plan_host_crash("leaf0-runner", sim::from_sec(0.5));
  f.fault->plan_host_restart("leaf0-runner", sim::from_sec(3.0));
  f.engine.run();

  EXPECT_EQ(f.sched->jobs_completed(), 16u);
  EXPECT_EQ(f.sched->jobs_failed(), 0u)
      << "lost dispatches must be requeued within the attempt budget";
  EXPECT_GT(f.sched->jobs_requeued(), 0u);
  EXPECT_EQ(f.sched->pending_jobs(), 0u);
  EXPECT_EQ(f.sched->inflight_jobs(), 0u);
}

TEST(Scheduler, CompletionAccountingIsExactlyOnce) {
  Fixture f(/*leaf_sites=*/1, /*cpus_per_site=*/8);
  f.stage_submit("alice", jobs(30, 1, 0.3));
  f.engine.run();

  EXPECT_EQ(f.sched->jobs_completed(), 30u);
  EXPECT_EQ(f.sched->dup_completions(), 0u);
  // 30 jobs × 1 CPU × 0.3 s = 9 cpu-seconds charged — once each (decay
  // over a few virtual seconds at a 600 s half-life is negligible).
  const double usage =
      f.sched->shares().usage("alice", sim::to_sec(f.engine.now()));
  EXPECT_GT(usage, 8.5);
  EXPECT_LT(usage, 9.5);
}

TEST(Scheduler, SchedulerCrashReplaysJournalAndFinishesTheBacklog) {
  Fixture f(/*leaf_sites=*/2, /*cpus_per_site=*/4, /*fault_seed=*/11);
  f.stage_submit("alice", jobs(24, 1, 1.0));
  f.stage_submit("bob", jobs(8, 1, 1.0));
  // Kill the scheduler host mid-run: accepted-but-pending jobs and the
  // in-flight ledger must come back from the journal; runners keep their
  // completions in the unacked buffer and resend on reconnect.
  f.fault->plan_host_crash("hub-host", sim::from_sec(1.0));
  f.fault->plan_host_restart("hub-host", sim::from_sec(2.0));
  f.engine.run();

  EXPECT_EQ(f.sched->journal_replays(), 1u);
  EXPECT_EQ(f.sched->jobs_completed(), 32u);
  EXPECT_EQ(f.sched->jobs_failed(), 0u);
  EXPECT_EQ(f.sched->pending_jobs(), 0u);
  EXPECT_EQ(f.sched->inflight_jobs(), 0u);
  // Exactly-once across the crash: total charged usage stays bounded by
  // the 32 cpu-seconds of submitted work (no double charges).
  const double now_s = sim::to_sec(f.engine.now());
  const double usage = f.sched->shares().usage("alice", now_s) +
                       f.sched->shares().usage("bob", now_s);
  EXPECT_LT(usage, 32.5);
  EXPECT_GT(usage, 25.0);
}

TEST(Scheduler, SnapshotCompactionPreservesReplay) {
  Fixture f(/*leaf_sites=*/1, /*cpus_per_site=*/8);
  f.sched->mutable_options().snapshot_every = 4;  // force frequent snapshots
  f.stage_submit("alice", jobs(20, 1, 0.2));
  f.engine.run();
  ASSERT_EQ(f.sched->jobs_completed(), 20u);

  // Replay from the compacted journal: the quiesced state is empty queues
  // plus the fair-share ledger, bit-for-bit.
  const double key_before = f.sched->shares().priority_key("alice");
  ASSERT_GT(key_before, 0);
  f.sched->restart();
  f.engine.run();
  EXPECT_EQ(f.sched->journal_replays(), 1u);
  EXPECT_EQ(f.sched->pending_jobs(), 0u);
  EXPECT_EQ(f.sched->inflight_jobs(), 0u);
  EXPECT_EQ(f.sched->shares().priority_key("alice"), key_before);
}

}  // namespace
}  // namespace wacs::sched
