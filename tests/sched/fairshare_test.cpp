// Fair-share accounting: half-life decay, weight scaling, the
// scaled-representation rebase, and snapshot round-trips.
#include "sched/fairshare.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wacs::sched {
namespace {

TEST(FairShare, ChargeRaisesPriorityKey) {
  FairShare fs(600);
  EXPECT_EQ(fs.priority_key("a"), 0);
  fs.charge("a", 100, 0);
  EXPECT_GT(fs.priority_key("a"), 0);
  EXPECT_EQ(fs.priority_key("b"), 0) << "uncharged tenants stay at zero";
}

TEST(FairShare, UsageDecaysWithHalfLife) {
  FairShare fs(600);
  fs.charge("a", 100, 0);
  EXPECT_NEAR(fs.usage("a", 0), 100, 1e-9);
  EXPECT_NEAR(fs.usage("a", 600), 50, 1e-9);
  EXPECT_NEAR(fs.usage("a", 1200), 25, 1e-9);
}

TEST(FairShare, DecayNeverReordersTenants) {
  // The ordered-queue invariant: uniform decay preserves relative order,
  // so the priority index only re-keys on charges.
  FairShare fs(600);
  fs.charge("light", 10, 0);
  fs.charge("heavy", 100, 0);
  ASSERT_LT(fs.priority_key("light"), fs.priority_key("heavy"));
  // Keys are decay-invariant by construction (scaled representation), so
  // reading them at any later time preserves the order.
  fs.charge("light", 0, 100000);  // no-op charge; just advances nothing
  EXPECT_LT(fs.priority_key("light"), fs.priority_key("heavy"));
}

TEST(FairShare, LaterChargesOutweighEqualEarlierOnes) {
  FairShare fs(600);
  fs.charge("early", 100, 0);
  fs.charge("late", 100, 1200);  // two half-lives later
  // early's 100 decayed to 25 by t=1200; late's fresh 100 dominates.
  EXPECT_GT(fs.priority_key("late"), fs.priority_key("early"));
  EXPECT_NEAR(fs.usage("early", 1200), 25, 1e-9);
  EXPECT_NEAR(fs.usage("late", 1200), 100, 1e-9);
}

TEST(FairShare, WeightDividesThePriorityKey) {
  FairShare fs(600);
  fs.set_weight("vip", 4.0);
  fs.charge("vip", 100, 0);
  fs.charge("base", 100, 0);
  EXPECT_NEAR(fs.priority_key("vip") * 4.0, fs.priority_key("base"), 1e-9);
}

TEST(FairShare, RebaseKeepsOrderAndUsage) {
  FairShare fs(1);  // 1 s half-life so 32 half-lives pass quickly
  fs.charge("a", 100, 0);
  fs.charge("b", 10, 0);
  // A charge far past the rebase threshold multiplies every scaled value
  // by a common factor; order and decayed usage must survive.
  fs.charge("c", 1, 40);
  EXPECT_GT(fs.priority_key("a"), fs.priority_key("b"));
  EXPECT_GT(fs.priority_key("b"), 0);
  EXPECT_NEAR(fs.usage("a", 40), 100 * std::exp2(-40), 1e-12);
}

TEST(FairShare, TopShareIsScaleInvariant) {
  FairShare fs(600);
  EXPECT_EQ(fs.top_share(), 0);
  fs.charge("a", 300, 0);
  fs.charge("b", 100, 0);
  EXPECT_NEAR(fs.top_share(), 0.75, 1e-9);
}

TEST(FairShare, SnapshotRoundTripsExactly) {
  FairShare fs(600);
  fs.set_weight("vip", 2.0);
  fs.charge("vip", 123.5, 100);
  fs.charge("base", 88.25, 2000);

  FairShare restored(1);  // different half-life; restore overwrites it
  ASSERT_TRUE(restored.restore(fs.encode()).ok());
  EXPECT_EQ(restored.priority_key("vip"), fs.priority_key("vip"));
  EXPECT_EQ(restored.priority_key("base"), fs.priority_key("base"));
  EXPECT_EQ(restored.usage("vip", 3000), fs.usage("vip", 3000));
}

TEST(FairShare, TornSnapshotIsRejected) {
  FairShare fs(600);
  fs.charge("a", 10, 0);
  Bytes snap = fs.encode();
  for (std::size_t len = 0; len < snap.size(); ++len) {
    FairShare victim(600);
    victim.charge("keep", 1, 0);
    const Bytes torn(snap.begin(), snap.begin() + len);
    EXPECT_FALSE(victim.restore(torn).ok()) << len;
    // A failed restore must not have clobbered the existing state.
    EXPECT_GT(victim.priority_key("keep"), 0) << len;
  }
}

}  // namespace
}  // namespace wacs::sched
