// Pending-queue semantics: per-tenant FIFO, fair-share priority ordering,
// rekey-on-charge, and the bounded backfill candidate scan.
#include "sched/queue.hpp"

#include <gtest/gtest.h>

#include "sched/fairshare.hpp"

namespace wacs::sched {
namespace {

PendingJob job(std::uint64_t id, const std::string& tenant, int nprocs = 1) {
  PendingJob j;
  j.sched_id = id;
  j.tenant = tenant;
  j.task = "t";
  j.nprocs = nprocs;
  return j;
}

TEST(PendingQueue, FifoWithinTenant) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "a"));
  q.push(fs, job(3, "a"));
  EXPECT_EQ(q.pop_head().sched_id, 1u);
  EXPECT_EQ(q.pop_head().sched_id, 2u);
  EXPECT_EQ(q.pop_head().sched_id, 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.head(), nullptr);
}

TEST(PendingQueue, LowestPriorityKeyTenantGoesFirst) {
  FairShare fs(600);
  fs.charge("hog", 1000, 0);
  PendingQueue q;
  q.push(fs, job(1, "hog"));
  q.push(fs, job(2, "fresh"));
  ASSERT_NE(q.head(), nullptr);
  EXPECT_EQ(q.head()->tenant, "fresh");
  EXPECT_EQ(q.pop_head().sched_id, 2u);
  EXPECT_EQ(q.pop_head().sched_id, 1u);
}

TEST(PendingQueue, PushFrontPrepends) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "a"));
  PendingJob requeued = job(9, "a");
  requeued.attempts = 1;
  q.push_front(fs, std::move(requeued));
  EXPECT_EQ(q.pop_head().sched_id, 9u);
  EXPECT_EQ(q.pop_head().sched_id, 1u);
}

TEST(PendingQueue, RekeyReordersAfterCharge) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "b"));
  ASSERT_EQ(q.head()->tenant, "a") << "ties break by tenant name";
  // a gets charged (its job completed); the scheduler rekeys it and b
  // moves to the head.
  fs.charge("a", 100, 0);
  q.rekey(fs, "a");
  EXPECT_EQ(q.head()->tenant, "b");
}

TEST(PendingQueue, RekeyOfAbsentTenantIsANoop) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  fs.charge("ghost", 5, 0);
  q.rekey(fs, "ghost");
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head()->tenant, "a");
}

TEST(PendingQueue, BackfillCandidatesSkipHeadTenantAndBound) {
  FairShare fs(600);
  PendingQueue q;
  for (int t = 0; t < 5; ++t) {
    const std::string tenant = "t" + std::to_string(t);
    q.push(fs, job(static_cast<std::uint64_t>(10 * t + 1), tenant));
    q.push(fs, job(static_cast<std::uint64_t>(10 * t + 2), tenant));
  }
  // All keys are 0 → priority order is tenant-name order; head is t0.
  auto cands = q.backfill_candidates(2);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0]->tenant, "t1") << "head tenant t0 must be skipped";
  EXPECT_EQ(cands[1]->tenant, "t2");
  EXPECT_EQ(cands[0]->sched_id, 11u) << "one FRONT job per tenant";

  auto all = q.backfill_candidates(100);
  EXPECT_EQ(all.size(), 4u) << "bounded by tenants waiting minus the head";
}

TEST(PendingQueue, TakeRemovesByIdAnywhereInTheFifo) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "a"));
  q.push(fs, job(3, "a"));
  // Mid-queue removal (replay of per-site-grouped dispatch records),
  // preserving the FIFO order of the rest.
  EXPECT_EQ(q.take("a", 2).sched_id, 2u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_head().sched_id, 1u);
  EXPECT_EQ(q.take("a", 3).sched_id, 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.tenants_waiting(), 0u);
}

TEST(PendingQueue, PopFrontOfRemovesTenantWhenDrained) {
  FairShare fs(600);
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "b"));
  EXPECT_EQ(q.pop_front_of("b").sched_id, 2u);
  EXPECT_EQ(q.tenants_waiting(), 1u);
  EXPECT_EQ(q.tenant_depth("b"), 0u);
  EXPECT_EQ(q.head()->tenant, "a");
}

TEST(PendingQueue, AllJobsIsTenantSortedFifo) {
  FairShare fs(600);
  fs.charge("a", 100, 0);  // priority order would put b first
  PendingQueue q;
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "b"));
  q.push(fs, job(3, "a"));
  auto all = q.all_jobs();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->sched_id, 1u);
  EXPECT_EQ(all[1]->sched_id, 3u);
  EXPECT_EQ(all[2]->sched_id, 2u);
}

TEST(PendingQueue, DepthBookkeeping) {
  FairShare fs(600);
  PendingQueue q;
  EXPECT_EQ(q.tenant_depth("a"), 0u);
  q.push(fs, job(1, "a"));
  q.push(fs, job(2, "a"));
  q.push(fs, job(3, "b"));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.tenant_depth("a"), 2u);
  EXPECT_EQ(q.tenants_waiting(), 2u);
  (void)q.pop_head();
  (void)q.pop_head();
  (void)q.pop_head();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.tenants_waiting(), 0u);
}

}  // namespace
}  // namespace wacs::sched
