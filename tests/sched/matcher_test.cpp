// Resource-index semantics: entry ingestion from directory entries, TTL
// expiry, site matching with skip sets, host matching for the grid path,
// and the inflight debit/credit ledger.
#include "sched/matcher.hpp"

#include <gtest/gtest.h>

namespace wacs::sched {
namespace {

mds::Entry entry(const std::string& site, const std::string& host, int cpus,
                 const std::string& speed = "1.0") {
  mds::Entry e;
  e.dn = "o=grid/ou=" + site + "/host=" + host;
  e.attributes = {{"site", site},
                  {"cpus", std::to_string(cpus)},
                  {"speed", speed},
                  {"host", host}};
  return e;
}

constexpr sim::Time kSec = 1000000000;  // 1 s of virtual time in ns

TEST(ResourceIndex, UpsertAggregatesPerSite) {
  ResourceIndex idx;
  idx.upsert(entry("s1", "a", 8), 0, 60);
  idx.upsert(entry("s1", "b", 4), 0, 60);
  idx.upsert(entry("s2", "c", 16), 0, 60);
  EXPECT_EQ(idx.sites(), 2u);
  EXPECT_EQ(idx.hosts(), 3u);
  EXPECT_EQ(idx.free_cpus("s1"), 12);
  EXPECT_EQ(idx.free_cpus("s2"), 16);
  EXPECT_EQ(idx.total_cpus(), 28);
}

TEST(ResourceIndex, MalformedEntriesAreIgnored) {
  ResourceIndex idx;
  mds::Entry no_site = entry("s", "a", 8);
  no_site.attributes.erase("site");
  idx.upsert(no_site, 0, 60);
  mds::Entry bad_cpus = entry("s", "b", 8);
  bad_cpus.attributes["cpus"] = "lots";
  idx.upsert(bad_cpus, 0, 60);
  mds::Entry zero_cpus = entry("s", "c", 0);
  idx.upsert(zero_cpus, 0, 60);
  EXPECT_EQ(idx.hosts(), 0u);
}

TEST(ResourceIndex, HostNameFallsBackToDnComponent) {
  ResourceIndex idx;
  mds::Entry e = entry("s", "a", 8);
  e.attributes.erase("host");
  idx.upsert(e, 0, 60);
  ASSERT_EQ(idx.hosts(), 1u);
  auto placements = idx.match_hosts(8);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].host, "a");
}

TEST(ResourceIndex, ReUpsertMovesCapacityBetweenSites) {
  ResourceIndex idx;
  idx.upsert(entry("s1", "a", 8), 0, 60);
  // The host republishes under a different site and width (recabled).
  idx.upsert(entry("s2", "a", 4), 0, 60);
  EXPECT_EQ(idx.free_cpus("s1"), 0);
  EXPECT_EQ(idx.free_cpus("s2"), 4);
  EXPECT_EQ(idx.sites(), 1u) << "emptied site record is dropped";
}

TEST(ResourceIndex, ExpireDropsLapsedHostsAndTheirCapacity) {
  ResourceIndex idx;
  idx.upsert(entry("s", "a", 8), 0, 10);
  idx.upsert(entry("s", "b", 4), 0, 100);
  EXPECT_EQ(idx.expire(50 * kSec), 1u);
  EXPECT_EQ(idx.free_cpus("s"), 4);
  // Re-registration before expiry extends the lease.
  idx.upsert(entry("s", "b", 4), 90 * kSec, 100);
  EXPECT_EQ(idx.expire(150 * kSec), 0u);
  EXPECT_EQ(idx.free_cpus("s"), 4);
}

TEST(ResourceIndex, TouchSiteOutlivesDirectoryTtl) {
  // A live runner connection is fresher evidence than the directory: an
  // idle runner's entries may lapse, but touch_site keeps them matchable.
  ResourceIndex idx;
  idx.upsert(entry("s", "a", 8), 0, 10);
  idx.touch_site("s", 500 * kSec);
  EXPECT_EQ(idx.expire(400 * kSec), 0u);
  EXPECT_EQ(idx.free_cpus("s"), 8);
  EXPECT_EQ(idx.expire(500 * kSec), 1u);
}

TEST(ResourceIndex, MatchSitePrefersMostFreeAndHonorsSkip) {
  ResourceIndex idx;
  idx.upsert(entry("small", "a", 4), 0, 60);
  idx.upsert(entry("big", "b", 16), 0, 60);
  EXPECT_EQ(idx.match_site(2, {}, 0), "big");

  // A skip entry with a future deadline excludes the site...
  std::map<std::string, sim::Time> skip{{"big", 100 * kSec}};
  EXPECT_EQ(idx.match_site(2, skip, 50 * kSec), "small");
  // ...and stops excluding once the deadline passes.
  EXPECT_EQ(idx.match_site(2, skip, 150 * kSec), "big");

  EXPECT_EQ(idx.match_site(32, {}, 0), "") << "nothing fits 32 CPUs";
}

TEST(ResourceIndex, DebitsShrinkTheMatchableCapacity) {
  ResourceIndex idx;
  idx.upsert(entry("s", "a", 8), 0, 60);
  idx.debit_site("s", 6);
  EXPECT_EQ(idx.free_cpus("s"), 2);
  EXPECT_EQ(idx.match_site(4, {}, 0), "");
  idx.credit_site("s", 6);
  EXPECT_EQ(idx.match_site(4, {}, 0), "s");
  // Credits clamp: over-crediting cannot mint capacity.
  idx.credit_site("s", 100);
  EXPECT_EQ(idx.free_cpus("s"), 8);
}

TEST(ResourceIndex, DebitsSurviveReUpsert) {
  // A directory refresh must not erase the scheduler's own inflight
  // ledger — the debits are self-consistent with its dispatches.
  ResourceIndex idx;
  idx.upsert(entry("s", "a", 8), 0, 60);
  idx.debit_site("s", 5);
  idx.upsert(entry("s", "a", 8), 30 * kSec, 60);
  EXPECT_EQ(idx.free_cpus("s"), 3);
}

TEST(ResourceIndex, MatchHostsFastestFirstSpillsAcrossSites) {
  ResourceIndex idx;
  idx.upsert(entry("s1", "slow", 16, "0.5"), 0, 60);
  idx.upsert(entry("s1", "fast", 4, "2.0"), 0, 60);
  idx.upsert(entry("s2", "medium", 4, "1.0"), 0, 60);

  auto ps = idx.match_hosts(6);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].host, "fast");
  EXPECT_EQ(ps[0].count, 4);
  EXPECT_EQ(ps[1].host, "medium");
  EXPECT_EQ(ps[1].count, 2);

  EXPECT_TRUE(idx.match_hosts(100).empty()) << "insufficient is all-or-nothing";

  auto excl = idx.match_hosts(6, {"fast"});
  ASSERT_EQ(excl.size(), 2u);
  EXPECT_EQ(excl[0].host, "medium");
  EXPECT_EQ(excl[1].host, "slow");
}

TEST(ResourceIndex, HostDebitsFlowIntoSiteAggregates) {
  ResourceIndex idx;
  idx.upsert(entry("s", "a", 8, "2.0"), 0, 60);
  idx.upsert(entry("s", "b", 8, "1.0"), 0, 60);
  auto ps = idx.match_hosts(10);
  ASSERT_EQ(ps.size(), 2u);
  idx.debit_hosts(ps);
  EXPECT_EQ(idx.free_cpus("s"), 6);
  // The saturated host is skipped by the next match; b's remaining six
  // CPUs cover the request alone.
  auto next = idx.match_hosts(6);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].host, "b");
  EXPECT_EQ(next[0].count, 6);
  idx.credit_hosts(ps);
  EXPECT_EQ(idx.free_cpus("s"), 16);
}

}  // namespace
}  // namespace wacs::sched
