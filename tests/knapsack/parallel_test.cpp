// End-to-end parallel knapsack on the Figure 5 testbed: correctness of the
// master-slave self-scheduling implementation across every cluster system
// of Table 3, with and without the Nexus Proxy.
#include "knapsack/parallel.hpp"

#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "knapsack/search.hpp"

namespace wacs::knapsack {
namespace {

using core::Testbed;
using core::TestbedOptions;
using core::make_rwcp_etl_testbed;

rmf::JobSpec knapsack_spec(const Instance& inst,
                           std::vector<rmf::Placement> placements,
                           std::map<std::string, std::string> extra_args = {}) {
  rmf::JobSpec spec;
  spec.name = "knapsack-test";
  spec.task = kParallelTask;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  spec.args = {{args::kInterval, "200"},
               {args::kStealUnit, "8"},
               {args::kBackUnit, "32"},
               {args::kSecPerNode, "0.000001"}};
  for (auto& [k, v] : extra_args) spec.args[k] = v;
  spec.input_files[kInstanceFile] = inst.encode();
  return spec;
}

RunStats run(Testbed& tb, const rmf::JobSpec& spec) {
  auto result = tb->run_job("rwcp-sun", spec);
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  auto stats = RunStats::decode(result->output);
  EXPECT_TRUE(stats.ok());
  return *stats;
}

TEST(ParallelKnapsack, MatchesSequentialOnNoPruneInstance) {
  auto tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(14, 1);
  RunStats stats =
      run(tb, knapsack_spec(inst, {{"rwcp-sun", 2}, {"compas01", 1}}));
  EXPECT_EQ(stats.best_value, inst.total_profit());
  EXPECT_EQ(stats.total_nodes, full_tree_nodes(14));
  ASSERT_EQ(stats.ranks.size(), 3u);
  EXPECT_GT(stats.app_seconds, 0.0);
}

TEST(ParallelKnapsack, MatchesBruteForceOnRandomInstances) {
  auto tb = make_rwcp_etl_testbed();
  for (int seed = 1; seed <= 3; ++seed) {
    Instance inst = random_instance(14, static_cast<std::uint64_t>(seed));
    inst.sort_by_ratio();
    const std::int64_t expected = solve_brute_force(inst);
    RunStats stats = run(
        tb, knapsack_spec(inst, {{"rwcp-sun", 2}, {"etl-o2k", 2}},
                          {{args::kUseBound, "1"}}));
    EXPECT_EQ(stats.best_value, expected) << "seed=" << seed;
  }
}

TEST(ParallelKnapsack, WideAreaClusterTraversesWholeTree) {
  auto tb = make_rwcp_etl_testbed();
  // Large enough (2M nodes ≈ 2 s of virtual work) that even the WAN-distant
  // ETL ranks receive work despite their ~50 ms steal round trip.
  Instance inst = no_prune_instance(20, 2);
  RunStats stats =
      run(tb, knapsack_spec(inst, core::placement_wide_area(tb)));
  EXPECT_EQ(stats.best_value, inst.total_profit());
  EXPECT_EQ(stats.total_nodes, full_tree_nodes(20));
  ASSERT_EQ(stats.ranks.size(), 20u);
  // Dynamic load balancing: every slave must have done some work.
  for (const RankStats& r : stats.ranks) {
    EXPECT_GT(r.nodes_traversed, 0u) << "rank " << r.rank;
    if (r.rank != 0) {
      EXPECT_GT(r.steal_requests, 0u) << "rank " << r.rank;
    }
  }
}

TEST(ParallelKnapsack, ProxyAndDirectRunsAgreeOnResults) {
  Instance inst = no_prune_instance(14, 3);

  TestbedOptions with_proxy;
  auto tb1 = make_rwcp_etl_testbed(with_proxy);
  RunStats s1 = run(
      tb1, knapsack_spec(inst, {{"rwcp-sun", 2}, {"etl-o2k", 2}}));

  TestbedOptions direct;
  direct.rwcp_uses_proxy = false;
  direct.open_rwcp_firewall = true;  // the paper's temporary reconfiguration
  auto tb2 = make_rwcp_etl_testbed(direct);
  RunStats s2 = run(
      tb2, knapsack_spec(inst, {{"rwcp-sun", 2}, {"etl-o2k", 2}}));

  EXPECT_EQ(s1.best_value, s2.best_value);
  EXPECT_EQ(s1.total_nodes, s2.total_nodes);
  // The proxied run is slower (relay overhead) but in the same ballpark.
  EXPECT_GT(s1.app_seconds, s2.app_seconds);
}

TEST(ParallelKnapsack, ProxiedRunActuallyUsedTheRelay) {
  auto tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(12, 4);
  (void)run(tb, knapsack_spec(inst, {{"rwcp-sun", 2}, {"etl-o2k", 2}}));
  EXPECT_GT(tb->outer()->stats().messages, 0u);
  EXPECT_GT(tb->inner()->stats().messages, 0u);
}

TEST(ParallelKnapsack, SchedulingParametersSweepStaysCorrect) {
  auto tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(12, 5);
  for (const char* interval : {"50", "500"}) {
    for (const char* stealunit : {"2", "64"}) {
      RunStats stats = run(
          tb, knapsack_spec(inst, {{"rwcp-sun", 2}, {"compas01", 1}},
                            {{args::kInterval, interval},
                             {args::kStealUnit, stealunit}}));
      EXPECT_EQ(stats.best_value, inst.total_profit())
          << interval << "/" << stealunit;
      EXPECT_EQ(stats.total_nodes, full_tree_nodes(12))
          << interval << "/" << stealunit;
    }
  }
}

TEST(ParallelKnapsack, SequentialTaskViaRmf) {
  auto tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(12, 6);
  rmf::JobSpec spec;
  spec.name = "seq";
  spec.task = kSequentialTask;
  spec.nprocs = 1;
  spec.placements = {{"rwcp-sun", 1}};
  spec.args = {{args::kSecPerNode, "0.000001"}};
  spec.input_files[kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->ok) << result->error;
  auto stats = RunStats::decode(result->output);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->best_value, inst.total_profit());
  EXPECT_EQ(stats->total_nodes, full_tree_nodes(12));
  // Virtual time ≈ nodes × sec_per_node at speed 1.0.
  EXPECT_NEAR(stats->app_seconds,
              static_cast<double>(full_tree_nodes(12)) * 1e-6,
              stats->app_seconds * 0.05);
}

TEST(ParallelKnapsack, FasterHostsTraverseMoreNodes) {
  // Heterogeneity check: O2K CPUs (0.95) against COMPaS (0.55) — with
  // dynamic load balancing the faster group should traverse more nodes.
  auto tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(16, 7);
  RunStats stats = run(
      tb, knapsack_spec(inst, {{"rwcp-sun", 1},   // master
                               {"compas01", 1}, {"compas02", 1},
                               {"etl-o2k", 2}}));
  std::uint64_t compas_nodes = 0, o2k_nodes = 0;
  for (const RankStats& r : stats.ranks) {
    if (r.host.rfind("compas", 0) == 0) compas_nodes += r.nodes_traversed;
    if (r.host == "etl-o2k") o2k_nodes += r.nodes_traversed;
  }
  EXPECT_GT(compas_nodes, 0u);
  EXPECT_GT(o2k_nodes, 0u);
  // 2 O2K ranks at 0.95 vs 2 COMPaS ranks at 0.55: expect a clear gap, but
  // leave slack for stealing granularity and WAN latency.
  EXPECT_GT(o2k_nodes, compas_nodes / 2);
}

TEST(RunStats, EncodeDecodeRoundTrip) {
  RunStats stats;
  stats.best_value = 123;
  stats.total_nodes = 456;
  stats.master_steals_handled = 7;
  stats.app_seconds = 1.25;
  stats.ranks = {{0, "rwcp-sun", 400, 0}, {1, "compas01", 56, 9}};
  auto decoded = RunStats::decode(stats.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->best_value, 123);
  EXPECT_EQ(decoded->total_nodes, 456u);
  EXPECT_EQ(decoded->master_steals_handled, 7u);
  EXPECT_DOUBLE_EQ(decoded->app_seconds, 1.25);
  ASSERT_EQ(decoded->ranks.size(), 2u);
  EXPECT_EQ(decoded->ranks[1].host, "compas01");
  EXPECT_EQ(decoded->ranks[1].steal_requests, 9u);
}

}  // namespace
}  // namespace wacs::knapsack
