#include "knapsack/instance.hpp"

#include <gtest/gtest.h>

namespace wacs::knapsack {
namespace {

TEST(Instance, NoPruneCapacityCoversEverything) {
  Instance inst = no_prune_instance(20, 3);
  EXPECT_EQ(inst.size(), 20);
  EXPECT_EQ(inst.capacity, inst.total_weight());
  for (const Item& item : inst.items) {
    EXPECT_GE(item.profit, 1);
    EXPECT_GE(item.weight, 1);
  }
}

TEST(Instance, GeneratorsAreDeterministic) {
  EXPECT_EQ(no_prune_instance(10, 5), no_prune_instance(10, 5));
  EXPECT_NE(no_prune_instance(10, 5), no_prune_instance(10, 6));
  EXPECT_EQ(random_instance(10, 5), random_instance(10, 5));
}

TEST(Instance, RandomInstanceRespectsTightness) {
  Instance inst = random_instance(50, 7, 0.5);
  EXPECT_LT(inst.capacity, inst.total_weight());
  EXPECT_GE(inst.capacity, 1);
}

TEST(Instance, CorrelatedInstanceHasProfitAboveWeight) {
  Instance inst = correlated_instance(30, 11);
  for (const Item& item : inst.items) EXPECT_GT(item.profit, item.weight);
}

TEST(Instance, EncodeDecodeRoundTrip) {
  Instance inst = random_instance(40, 13);
  auto decoded = Instance::decode(inst.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, inst);
}

TEST(Instance, DecodeRejectsTruncation) {
  Bytes data = no_prune_instance(5, 1).encode();
  data.pop_back();
  EXPECT_FALSE(Instance::decode(data).ok());
}

TEST(Instance, DecodeRejectsTrailingGarbage) {
  Bytes data = no_prune_instance(5, 1).encode();
  data.push_back(0);
  EXPECT_FALSE(Instance::decode(data).ok());
}

TEST(Instance, SortByRatioOrdersDescending) {
  Instance inst = random_instance(30, 17);
  inst.sort_by_ratio();
  for (std::size_t i = 1; i < inst.items.size(); ++i) {
    const Item& a = inst.items[i - 1];
    const Item& b = inst.items[i];
    EXPECT_GE(a.profit * b.weight, b.profit * a.weight);
  }
}

TEST(InstanceText, RoundTripThroughDataFile) {
  Instance inst = random_instance(25, 3);
  auto parsed = Instance::from_text(inst.to_text());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(*parsed, inst);
}

TEST(InstanceText, ParsesHandWrittenFileWithComments) {
  const std::string text =
      "# three items\n"
      "3 50   # n capacity\n"
      "10 20\n"
      "\n"
      "7 5    # cheap one\n"
      "30 45\n";
  auto inst = Instance::from_text(text);
  ASSERT_TRUE(inst.ok()) << inst.error().to_string();
  EXPECT_EQ(inst->size(), 3);
  EXPECT_EQ(inst->capacity, 50);
  EXPECT_EQ(inst->items[1], (Item{7, 5}));
}

TEST(InstanceText, RejectsMalformedFiles) {
  EXPECT_FALSE(Instance::from_text("").ok());
  EXPECT_FALSE(Instance::from_text("# only comments\n").ok());
  EXPECT_FALSE(Instance::from_text("2 100\n1 2\n").ok());      // missing item
  EXPECT_FALSE(Instance::from_text("2 100\n1 2\n3 4\n5 6\n").ok());  // extra
  EXPECT_FALSE(Instance::from_text("abc 100\n").ok());          // not a number
  EXPECT_FALSE(Instance::from_text("2 -5\n1 2\n3 4\n").ok()); // negative cap
  EXPECT_FALSE(Instance::from_text("0 100\n").ok());            // zero items
  EXPECT_FALSE(Instance::from_text("2 100\n-1 2\n3 4\n").ok());  // negative
}

TEST(InstanceText, TextAndBinaryFormatsAgree) {
  Instance inst = correlated_instance(12, 9);
  auto from_text = Instance::from_text(inst.to_text());
  auto from_binary = Instance::decode(inst.encode());
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_binary.ok());
  EXPECT_EQ(*from_text, *from_binary);
}

}  // namespace
}  // namespace wacs::knapsack
