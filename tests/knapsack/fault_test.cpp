// Graceful degradation of the parallel knapsack under a mid-run slave death:
// the master reclaims the work shipped to the vanished slave, so the answer
// still equals the sequential reference, and the run reports the loss.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "simnet/time.hpp"

namespace wacs::knapsack {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;

constexpr const char* kVictim = "compas02";

rmf::JobSpec knapsack_spec(const Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "knapsack-fault-test";
  spec.task = kParallelTask;
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {kVictim, 1}};
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{args::kInterval, "200"},
               {args::kStealUnit, "8"},
               {args::kBackUnit, "32"},
               {args::kSecPerNode, "0.000001"}};
  spec.input_files[kInstanceFile] = inst.encode();
  return spec;
}

struct JobRun {
  rmf::JobResult job;
  RunStats stats;
};

JobRun run_job(Testbed& tb, const Instance& inst) {
  auto result = tb->run_job("rwcp-sun", knapsack_spec(inst));
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  auto stats = RunStats::decode(result->output);
  EXPECT_TRUE(stats.ok());
  return JobRun{*result, *stats};
}

/// Virtual time halfway through the search phase, measured on a fault-free
/// pilot of the same deterministic run: the app phase is the tail of the
/// job's wall time, so wall - app/2 is always mid-search.
sim::Time mid_search_time(const Instance& inst) {
  Testbed pilot = make_rwcp_etl_testbed();
  const JobRun run = run_job(pilot, inst);
  return sim::from_sec(run.job.wall_seconds - run.stats.app_seconds * 0.5);
}

/// Crashes the victim host (slave rank + its MPI daemons die, connections
/// reset) at `crash_at` and runs the job to completion.
JobRun run_with_slave_crash(const Instance& inst, sim::Time crash_at,
                         std::uint64_t seed = 11) {
  Testbed tb = make_rwcp_etl_testbed();
  tb->faults(seed).plan_host_crash(kVictim, crash_at);
  return run_job(tb, inst);
}

TEST(KnapsackFault, SlaveDeathMidRunStillMatchesSequentialReference) {
  Instance inst = no_prune_instance(16, 9);
  const JobRun run = run_with_slave_crash(inst, mid_search_time(inst));
  EXPECT_EQ(run.stats.best_value, inst.total_profit());
  EXPECT_EQ(run.stats.slaves_lost, 1u);
  // Reclaimed subtrees are re-searched, so the union of traversed nodes
  // covers the whole tree (duplicates allowed, omissions not).
  EXPECT_GE(run.stats.total_nodes, full_tree_nodes(16));
}

TEST(KnapsackFault, SlaveDeathWithPruningMatchesBruteForce) {
  Instance inst = random_instance(16, 21);
  inst.sort_by_ratio();
  const std::int64_t expected = solve_brute_force(inst);
  const JobRun run = run_with_slave_crash(inst, mid_search_time(inst));
  EXPECT_EQ(run.stats.best_value, expected);
  EXPECT_EQ(run.stats.slaves_lost, 1u);
}

TEST(KnapsackFault, FaultedRunIsDeterministicPerSeed) {
  Instance inst = no_prune_instance(14, 10);
  const sim::Time crash_at = mid_search_time(inst);
  const JobRun a = run_with_slave_crash(inst, crash_at, 5);
  const JobRun b = run_with_slave_crash(inst, crash_at, 5);
  EXPECT_EQ(a.stats.best_value, b.stats.best_value);
  EXPECT_EQ(a.stats.total_nodes, b.stats.total_nodes);
  EXPECT_EQ(a.stats.slaves_lost, b.stats.slaves_lost);
  EXPECT_EQ(a.stats.grants_reclaimed, b.stats.grants_reclaimed);
  EXPECT_DOUBLE_EQ(a.stats.app_seconds, b.stats.app_seconds);
  EXPECT_DOUBLE_EQ(a.job.wall_seconds, b.job.wall_seconds);
}

TEST(KnapsackFault, NoFaultRunReportsNoLosses) {
  Testbed tb = make_rwcp_etl_testbed();
  Instance inst = no_prune_instance(14, 11);
  const JobRun run = run_job(tb, inst);
  EXPECT_EQ(run.stats.slaves_lost, 0u);
  EXPECT_EQ(run.stats.grants_reclaimed, 0u);
  EXPECT_EQ(run.stats.best_value, inst.total_profit());
}

}  // namespace
}  // namespace wacs::knapsack
