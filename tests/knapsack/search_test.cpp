#include "knapsack/search.hpp"

#include <gtest/gtest.h>

namespace wacs::knapsack {
namespace {

TEST(Search, FullTreeNodeCountFormula) {
  EXPECT_EQ(full_tree_nodes(0), 1u);
  EXPECT_EQ(full_tree_nodes(1), 3u);
  EXPECT_EQ(full_tree_nodes(10), 2047u);
}

TEST(Search, NoPruneTraversesTheEntireTree) {
  // The paper's normalization: "entire search space is traced".
  for (int n : {4, 8, 12}) {
    Instance inst = no_prune_instance(n, 1);
    SearchResult r = solve_sequential(inst, /*use_bound=*/false);
    EXPECT_EQ(r.nodes_traversed, full_tree_nodes(n)) << "n=" << n;
    EXPECT_EQ(r.best_value, inst.total_profit()) << "n=" << n;
  }
}

TEST(Search, BoundedSearchTraversesFewerNodes) {
  Instance inst = random_instance(18, 5);
  inst.sort_by_ratio();
  SearchResult plain = solve_sequential(inst, false);
  SearchResult bounded = solve_sequential(inst, true);
  EXPECT_EQ(plain.best_value, bounded.best_value);
  EXPECT_LT(bounded.nodes_traversed, plain.nodes_traversed);
}

class SearchMatchesBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SearchMatchesBruteForce, OnRandomInstances) {
  const auto [n, seed, tightness] = GetParam();
  Instance inst = random_instance(n, static_cast<std::uint64_t>(seed),
                                  tightness);
  inst.sort_by_ratio();  // bound requires ratio order
  const std::int64_t expected = solve_brute_force(inst);
  EXPECT_EQ(solve_sequential(inst, true).best_value, expected);
  EXPECT_EQ(solve_sequential(inst, false).best_value, expected);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, SearchMatchesBruteForce,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.25, 0.5, 0.75)));

TEST(Search, CorrelatedInstancesMatchBruteForce) {
  for (int seed = 1; seed <= 5; ++seed) {
    Instance inst =
        correlated_instance(14, static_cast<std::uint64_t>(seed));
    inst.sort_by_ratio();
    EXPECT_EQ(solve_sequential(inst, true).best_value,
              solve_brute_force(inst))
        << "seed=" << seed;
  }
}

TEST(UpperBound, NeverBelowBestCompletion) {
  // Property: at the root, the bound dominates the optimum.
  for (int seed = 1; seed <= 10; ++seed) {
    Instance inst = random_instance(12, static_cast<std::uint64_t>(seed));
    inst.sort_by_ratio();
    const Node root{0, 0, inst.capacity};
    EXPECT_GE(upper_bound(inst, root), solve_brute_force(inst))
        << "seed=" << seed;
  }
}

TEST(UpperBound, ExactWhenEverythingFits) {
  Instance inst = no_prune_instance(10, 2);
  const Node root{0, 0, inst.capacity};
  EXPECT_EQ(upper_bound(inst, root), inst.total_profit());
}

TEST(Searcher, RunStopsAtRequestedOps) {
  Instance inst = no_prune_instance(16, 1);
  Searcher s(inst, false);
  s.push(Node{0, 0, inst.capacity});
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(s.nodes_traversed(), 100u);
  EXPECT_FALSE(s.idle());
}

TEST(Searcher, RunStopsWhenStackEmpties) {
  Instance inst = no_prune_instance(3, 1);  // 15 nodes total
  Searcher s(inst, false);
  s.push(Node{0, 0, inst.capacity});
  EXPECT_EQ(s.run(1000), 15u);
  EXPECT_TRUE(s.idle());
}

TEST(Searcher, TakeFromTopRemovesDeepestNodes) {
  Instance inst = no_prune_instance(16, 1);
  Searcher s(inst, false);
  s.push(Node{0, 0, inst.capacity});
  s.run(50);
  const std::size_t before = s.stack_size();
  auto stolen = s.take_from_top(4);
  EXPECT_EQ(stolen.size(), 4u);
  EXPECT_EQ(s.stack_size(), before - 4);
  // The deepest pending node has the largest index.
  for (std::size_t i = 1; i < stolen.size(); ++i) {
    EXPECT_GE(stolen[i].index, stolen[0].index);
  }
}

TEST(Searcher, TakeFromTopClampsToStackSize) {
  Instance inst = no_prune_instance(4, 1);
  Searcher s(inst, false);
  s.push(Node{0, 0, inst.capacity});
  s.run(1);  // stack now holds 2 children
  auto stolen = s.take_from_top(100);
  EXPECT_EQ(stolen.size(), 2u);
  EXPECT_TRUE(s.idle());
}

TEST(Searcher, StolenWorkCompletesElsewhere) {
  // Splitting the tree across two searchers conserves node count and best.
  Instance inst = no_prune_instance(12, 3);
  Searcher a(inst, false);
  a.push(Node{0, 0, inst.capacity});
  a.run(37);
  Searcher b(inst, false);
  b.push_all(a.take_from_top(a.stack_size() / 2));
  while (!a.idle()) a.run(1024);
  while (!b.idle()) b.run(1024);
  EXPECT_EQ(a.nodes_traversed() + b.nodes_traversed(), full_tree_nodes(12));
  EXPECT_EQ(std::max(a.best(), b.best()), inst.total_profit());
}

TEST(Searcher, OfferBestOnlyImproves) {
  Instance inst = no_prune_instance(4, 1);
  Searcher s(inst, false);
  s.offer_best(10);
  EXPECT_EQ(s.best(), 10);
  s.offer_best(5);
  EXPECT_EQ(s.best(), 10);
  s.offer_best(20);
  EXPECT_EQ(s.best(), 20);
}

TEST(SolveDp, MatchesBruteForceOnSmallInstances) {
  for (int seed = 1; seed <= 8; ++seed) {
    Instance inst = random_instance(14, static_cast<std::uint64_t>(seed));
    EXPECT_EQ(solve_dp(inst), solve_brute_force(inst)) << "seed=" << seed;
  }
}

class BranchAndBoundMatchesDp
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BranchAndBoundMatchesDp, OnLargerInstances) {
  // DP scales past brute force: cross-check B&B on instances brute force
  // cannot touch.
  const auto [n, seed, tightness] = GetParam();
  Instance inst = random_instance(n, static_cast<std::uint64_t>(seed),
                                  tightness);
  inst.sort_by_ratio();
  EXPECT_EQ(solve_sequential(inst, true).best_value, solve_dp(inst));
}

INSTANTIATE_TEST_SUITE_P(
    LargerSweep, BranchAndBoundMatchesDp,
    ::testing::Combine(::testing::Values(22, 26), ::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.6)));

TEST(SolveDp, CorrelatedInstances) {
  for (int seed = 1; seed <= 4; ++seed) {
    Instance inst =
        correlated_instance(24, static_cast<std::uint64_t>(seed));
    inst.sort_by_ratio();
    EXPECT_EQ(solve_sequential(inst, true).best_value, solve_dp(inst))
        << "seed=" << seed;
  }
}

TEST(SolveDp, DegenerateCases) {
  Instance none;
  none.items = {{10, 5}};
  none.capacity = 0;
  EXPECT_EQ(solve_dp(none), 0);

  Instance all = no_prune_instance(10, 1);
  EXPECT_EQ(solve_dp(all), all.total_profit());
}

TEST(Nodes, EncodeDecodeRoundTrip) {
  std::vector<Node> nodes = {{0, 0, 100}, {5, 42, 17}, {31, -3, 0}};
  BufWriter w;
  encode_nodes(w, nodes);
  BufReader r(w.bytes());
  auto decoded = decode_nodes(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, nodes);
}

}  // namespace
}  // namespace wacs::knapsack
