// CommContext route selection: direct vs Nexus Proxy, driven purely by the
// process environment — the seam the paper added to Globus.
#include "nexus/comm.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "proxy/server.hpp"

namespace wacs::nexus {
namespace {

struct Grid {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<proxy::OuterServer> outer;
  std::unique_ptr<proxy::InnerServer> inner;

  Grid() {
    sim::LinkParams lan{.name = "", .latency_s = msec(0.4),
                        .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
    net.add_site("rwcp", fw::Policy::typical(), lan);
    net.add_site("etl", fw::Policy::open(), lan);
    net.add_host({.name = "a", .site = "rwcp"});
    net.add_host({.name = "inner-host", .site = "rwcp"});
    net.add_host({.name = "outer-host", .site = "rwcp", .zone = sim::Zone::kDmz});
    net.add_host({.name = "b", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      sim::LinkParams{.name = "wan", .latency_s = msec(3),
                                      .bandwidth_bps = kbit_per_sec(1500)});
    net.site("rwcp").firewall().set_policy(
        fw::Policy::typical().open_inbound_from(
            "outer-host", fw::PortRange::single(9900), "nxport"));
    outer = std::make_unique<proxy::OuterServer>(
        net.host("outer-host"), 9911, proxy::RelayParams{});
    inner = std::make_unique<proxy::InnerServer>(
        net.host("inner-host"), 9900, proxy::RelayParams{});
    outer->start();
    inner->start();
  }

  Env proxy_env() const {
    Env env;
    env.set(env_keys::kProxyOuterServer, "outer-host:9911");
    env.set(env_keys::kProxyInnerServer, "inner-host:9900");
    return env;
  }
};

TEST(CommContext, DirectWhenEnvEmpty) {
  Grid g;
  CommContext ctx(g.net.host("a"), Env{});
  EXPECT_FALSE(ctx.uses_proxy());
}

TEST(CommContext, ProxyWhenBothVariablesSet) {
  Grid g;
  CommContext ctx(g.net.host("a"), g.proxy_env());
  EXPECT_TRUE(ctx.uses_proxy());
}

TEST(CommContext, DirectListenAdvertisesOwnHost) {
  Grid g;
  bool checked = false;
  g.engine.spawn("p", [&](sim::Process& self) {
    CommContext ctx(g.net.host("a"), Env{});
    auto ep = ctx.listen(self);
    ASSERT_TRUE(ep.ok());
    EXPECT_EQ((*ep)->contact().host, "a");
    checked = true;
  });
  g.engine.run();
  EXPECT_TRUE(checked);
}

TEST(CommContext, ProxiedListenAdvertisesOuterServer) {
  Grid g;
  bool checked = false;
  g.engine.spawn("p", [&](sim::Process& self) {
    CommContext ctx(g.net.host("a"), g.proxy_env());
    auto ep = ctx.listen(self);
    ASSERT_TRUE(ep.ok()) << ep.error().to_string();
    EXPECT_EQ((*ep)->contact().host, "outer-host");
    checked = true;
  });
  g.engine.run();
  EXPECT_TRUE(checked);
}

TEST(CommContext, DirectListenHonorsPortRange) {
  Grid g;
  bool checked = false;
  g.engine.spawn("p", [&](sim::Process& self) {
    Env env;
    env.set(env_keys::kTcpMinPort, "45000");
    env.set(env_keys::kTcpMaxPort, "45100");
    CommContext ctx(g.net.host("a"), env);
    auto ep = ctx.listen(self);
    ASSERT_TRUE(ep.ok());
    EXPECT_GE((*ep)->contact().port, 45000);
    EXPECT_LE((*ep)->contact().port, 45100);
    checked = true;
  });
  g.engine.run();
  EXPECT_TRUE(checked);
}

TEST(CommContext, EndToEndAcrossMixedRoutes) {
  // a (rwcp, proxied) <-> b (etl, direct): b dials a's outer-rewritten
  // contact; a dials b directly through its own proxy.
  Grid g;
  Contact a_contact;
  std::string got_at_a, got_at_b;

  g.engine.spawn("a", [&](sim::Process& self) {
    CommContext ctx(g.net.host("a"), g.proxy_env());
    auto ep = ctx.listen(self);
    ASSERT_TRUE(ep.ok());
    a_contact = (*ep)->contact();
    Contact peer;
    auto conn = (*ep)->accept(self, &peer);
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(peer.host, "b");
    auto msg = (*conn)->recv(self);
    ASSERT_TRUE(msg.ok());
    got_at_a = to_string(*msg);
  });

  g.engine.spawn("b", [&](sim::Process& self) {
    self.sleep(0.1);
    CommContext ctx(g.net.host("b"), Env{});
    auto conn = ctx.connect(self, a_contact);
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();
    ASSERT_TRUE((*conn)->send(to_bytes("from-etl")).ok());
  });

  g.engine.run();
  EXPECT_EQ(got_at_a, "from-etl");
}

TEST(CommContext, MalformedProxyEnvAborts) {
  // No daemon processes here: death tests must not fork a threaded binary.
  sim::Engine engine;
  sim::Network net(engine);
  net.add_site("s", fw::Policy::open(),
               sim::LinkParams{.name = "", .latency_s = 0,
                               .bandwidth_bps = 1e9});
  sim::Host& host = net.add_host({.name = "h", .site = "s"});
  Env env;
  env.set(env_keys::kProxyOuterServer, "not a contact");
  env.set(env_keys::kProxyInnerServer, "inner-host:9900");
  EXPECT_DEATH(CommContext(host, env), "NEXUS_PROXY");
}

}  // namespace
}  // namespace wacs::nexus
