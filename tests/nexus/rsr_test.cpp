// Remote Service Requests over direct and proxied links.
#include "nexus/rsr.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "proxy/server.hpp"

namespace wacs::nexus {
namespace {

struct Grid {
  sim::Engine engine;
  sim::Network net{engine};
  std::unique_ptr<proxy::OuterServer> outer;
  std::unique_ptr<proxy::InnerServer> inner;

  Grid() {
    sim::LinkParams lan{.name = "", .latency_s = msec(0.4),
                        .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
    net.add_site("rwcp", fw::Policy::typical(), lan);
    net.add_site("etl", fw::Policy::open(), lan);
    net.add_host({.name = "a", .site = "rwcp"});
    net.add_host({.name = "inner-host", .site = "rwcp"});
    net.add_host({.name = "outer-host", .site = "rwcp", .zone = sim::Zone::kDmz});
    net.add_host({.name = "b", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      sim::LinkParams{.name = "wan", .latency_s = msec(3),
                                      .bandwidth_bps = kbit_per_sec(1500)});
    net.site("rwcp").firewall().set_policy(
        fw::Policy::typical().open_inbound_from(
            "outer-host", fw::PortRange::single(9900), "nxport"));
    outer = std::make_unique<proxy::OuterServer>(net.host("outer-host"), 9911,
                                                 proxy::RelayParams{});
    inner = std::make_unique<proxy::InnerServer>(net.host("inner-host"), 9900,
                                                 proxy::RelayParams{});
    outer->start();
    inner->start();
  }

  Env proxy_env() const {
    Env env;
    env.set(env_keys::kProxyOuterServer, "outer-host:9911");
    env.set(env_keys::kProxyInnerServer, "inner-host:9900");
    return env;
  }
};

TEST(Rsr, HandlersFireWithArguments) {
  Grid g;
  std::vector<std::int64_t> received;
  Contact ep_contact;

  g.engine.spawn("endpoint", [&](sim::Process& self) {
    auto ctx = std::make_shared<CommContext>(g.net.host("b"), Env{});
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    (*ep)->register_handler(1, [&received](sim::Process&, const Bytes& args) {
      BufReader r(args);
      received.push_back(r.i64().value());
    });
    ep_contact = (*ep)->contact();
    self.suspend();  // daemon-style: unwound at shutdown
  });

  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.01);
    CommContext ctx(g.net.host("a"), Env{});
    auto sp = RsrStartpoint::attach(ctx, self, ep_contact);
    ASSERT_TRUE(sp.ok());
    for (std::int64_t i = 0; i < 5; ++i) {
      BufWriter w;
      w.i64(i * 11);
      ASSERT_TRUE(sp->send(1, w.bytes()).ok());
    }
    self.sleep(1.0);  // let requests land before the engine drains
  });

  g.engine.run();
  EXPECT_EQ(received, (std::vector<std::int64_t>{0, 11, 22, 33, 44}));
}

TEST(Rsr, ProxiedStartpointCrossesTheFirewall) {
  // Endpoint inside RWCP (proxied contact); startpoint at ETL attaches to
  // the rewritten public contact.
  Grid g;
  std::string got;
  Contact ep_contact;

  g.engine.spawn("endpoint", [&](sim::Process& self) {
    auto ctx = std::make_shared<CommContext>(g.net.host("a"), g.proxy_env());
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    EXPECT_EQ((*ep)->contact().host, "outer-host");
    (*ep)->register_handler(7, [&got](sim::Process&, const Bytes& args) {
      got = to_string(args);
    });
    ep_contact = (*ep)->contact();
    self.suspend();
  });

  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.05);
    CommContext ctx(g.net.host("b"), Env{});
    auto sp = RsrStartpoint::attach(ctx, self, ep_contact);
    ASSERT_TRUE(sp.ok()) << sp.error().to_string();
    ASSERT_TRUE(sp->send(7, to_bytes("rsr-through-the-relay")).ok());
    self.sleep(1.0);
  });

  g.engine.run();
  EXPECT_EQ(got, "rsr-through-the-relay");
  EXPECT_GT(g.inner->stats().messages, 0u);
}

TEST(Rsr, UnknownHandlerIsCountedNotFatal) {
  Grid g;
  int fired = 0;
  Contact ep_contact;
  RsrEndpointPtr endpoint;

  g.engine.spawn("endpoint", [&](sim::Process& self) {
    auto ctx = std::make_shared<CommContext>(g.net.host("b"), Env{});
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    endpoint = *ep;
    endpoint->register_handler(1, [&fired](sim::Process&, const Bytes&) {
      ++fired;
    });
    ep_contact = endpoint->contact();
    self.suspend();
  });

  g.engine.spawn("client", [&](sim::Process& self) {
    self.sleep(0.01);
    CommContext ctx(g.net.host("a"), Env{});
    auto sp = RsrStartpoint::attach(ctx, self, ep_contact);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(sp->send(99, to_bytes("nobody home")).ok());
    ASSERT_TRUE(sp->send(1, to_bytes("after the miss")).ok());
    self.sleep(1.0);
  });

  g.engine.run();
  EXPECT_EQ(fired, 1);  // the link survived the unknown id
  EXPECT_EQ(endpoint->unknown_handler_requests(), 1u);
  EXPECT_EQ(endpoint->requests_dispatched(), 1u);
}

TEST(Rsr, HandlersMayIssueTheirOwnRsrs) {
  // Request/reply built from two one-way RSRs (the Nexus idiom).
  Grid g;
  std::int64_t reply_value = 0;
  Contact server_contact, client_contact;

  g.engine.spawn("server", [&](sim::Process& self) {
    auto ctx = std::make_shared<CommContext>(g.net.host("b"), Env{});
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    server_contact = (*ep)->contact();
    (*ep)->register_handler(
        1, [&, ctx](sim::Process& dispatcher, const Bytes& args) {
          BufReader r(args);
          const std::int64_t x = r.i64().value();
          // Reply by issuing an RSR back to the client's endpoint.
          auto back = RsrStartpoint::attach(*ctx, dispatcher, client_contact);
          ASSERT_TRUE(back.ok());
          BufWriter w;
          w.i64(x * x);
          ASSERT_TRUE(back->send(2, w.bytes()).ok());
        });
    self.suspend();
  });

  g.engine.spawn("client", [&](sim::Process& self) {
    // The client sits behind the RWCP firewall: its reply endpoint must be
    // proxied or the server's return RSR would be denied.
    auto ctx = std::make_shared<CommContext>(g.net.host("a"), g.proxy_env());
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    client_contact = (*ep)->contact();
    (*ep)->register_handler(2, [&](sim::Process&, const Bytes& args) {
      BufReader r(args);
      reply_value = r.i64().value();
    });
    self.sleep(0.05);  // server bind
    auto sp = RsrStartpoint::attach(*ctx, self, server_contact);
    ASSERT_TRUE(sp.ok());
    BufWriter w;
    w.i64(12);
    ASSERT_TRUE(sp->send(1, w.bytes()).ok());
    self.sleep(1.0);
  });

  g.engine.run();
  EXPECT_EQ(reply_value, 144);
}

TEST(Rsr, ManyStartpointsShareOneEndpoint) {
  Grid g;
  int total = 0;
  Contact ep_contact;

  g.engine.spawn("endpoint", [&](sim::Process& self) {
    auto ctx = std::make_shared<CommContext>(g.net.host("b"), Env{});
    auto ep = RsrEndpoint::create(ctx, self);
    ASSERT_TRUE(ep.ok());
    (*ep)->register_handler(1, [&total](sim::Process&, const Bytes&) {
      ++total;
    });
    ep_contact = (*ep)->contact();
    self.suspend();
  });

  for (int c = 0; c < 4; ++c) {
    g.engine.spawn("client" + std::to_string(c), [&, c](sim::Process& self) {
      self.sleep(0.01 + 0.001 * c);
      CommContext ctx(g.net.host("a"), Env{});
      auto sp = RsrStartpoint::attach(ctx, self, ep_contact);
      ASSERT_TRUE(sp.ok());
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sp->send(1, {}).ok());
      }
      self.sleep(1.0);
    });
  }

  g.engine.run();
  EXPECT_EQ(total, 40);
}

}  // namespace
}  // namespace wacs::nexus
