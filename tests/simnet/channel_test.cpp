#include "simnet/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace wacs::sim {
namespace {

TEST(Channel, SendThenRecvWithoutBlocking) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  Process* p = nullptr;
  p = e.spawn("rx", [&] {
    ch.send(1);
    ch.send(2);
    got.push_back(*ch.recv(*p));
    got.push_back(*ch.recv(*p));
  });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine e;
  Channel<std::string> ch(e);
  std::string got;
  double recv_time = -1;
  Process* rx = nullptr;
  rx = e.spawn("rx", [&] {
    got = *ch.recv(*rx);
    recv_time = to_sec(e.now());
  });
  Process* tx = nullptr;
  tx = e.spawn("tx", [&] {
    tx->sleep(3.0);
    ch.send("hello");
  });
  e.run();
  EXPECT_EQ(got, "hello");
  EXPECT_DOUBLE_EQ(recv_time, 3.0);
}

TEST(Channel, FifoAcrossManyMessages) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  Process* rx = nullptr;
  rx = e.spawn("rx", [&] {
    for (int i = 0; i < 100; ++i) got.push_back(*ch.recv(*rx));
  });
  Process* tx = nullptr;
  tx = e.spawn("tx", [&] {
    for (int i = 0; i < 100; ++i) {
      ch.send(i);
      if (i % 10 == 0) tx->sleep(0.01);
    }
  });
  e.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Channel, MultipleReceiversEachGetOneMessage) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    Process** slot = new Process*;
    *slot = e.spawn("rx" + std::to_string(i), [&ch, &got, slot] {
      auto v = ch.recv(**slot);
      if (v) got.push_back(*v);
      delete slot;
    });
  }
  Process* tx = nullptr;
  tx = e.spawn("tx", [&] {
    tx->sleep(1.0);
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  e.run();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Channel, CloseReleasesBlockedReceivers) {
  Engine e;
  Channel<int> ch(e);
  bool got_eof = false;
  Process* rx = nullptr;
  rx = e.spawn("rx", [&] {
    auto v = ch.recv(*rx);
    got_eof = !v.has_value();
  });
  Process* closer = nullptr;
  closer = e.spawn("closer", [&] {
    closer->sleep(1.0);
    ch.close();
  });
  e.run();
  EXPECT_TRUE(got_eof);
}

TEST(Channel, CloseDrainsPendingMessagesFirst) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  bool eof = false;
  Process* p = nullptr;
  p = e.spawn("p", [&] {
    ch.send(1);
    ch.send(2);
    ch.close();
    while (auto v = ch.recv(*p)) got.push_back(*v);
    eof = true;
  });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(eof);
}

TEST(Channel, TryRecvNeverBlocks) {
  Engine e;
  Channel<int> ch(e);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  EXPECT_EQ(ch.try_recv().value(), 5);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Channel, MoveOnlyPayloads) {
  Engine e;
  Channel<std::unique_ptr<int>> ch(e);
  int got = 0;
  Process* p = nullptr;
  p = e.spawn("p", [&] {
    ch.send(std::make_unique<int>(99));
    got = **ch.recv(*p);
  });
  e.run();
  EXPECT_EQ(got, 99);
}

}  // namespace
}  // namespace wacs::sim
