#include "simnet/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wacs::sim {
namespace {

TEST(Time, ConversionRoundTrip) {
  EXPECT_EQ(from_sec(1.0), kSecond);
  EXPECT_EQ(from_sec(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(25 * kMillisecond), 25.0);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.at(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, HandlersMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.at(0, [&] {
    ++fired;
    e.at(5, [&] {
      ++fired;
      e.at(10, [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.at(10, [&] { ++fired; });
  e.at(20, [&] { ++fired; });
  e.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 15);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopHaltsDispatch) {
  Engine e;
  int fired = 0;
  e.at(1, [&] {
    ++fired;
    e.stop();
  });
  e.at(2, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Process, BodyRunsAtSpawnTime) {
  Engine e;
  Time observed = -1;
  e.spawn("timed", [&e, &observed] { observed = e.now(); });
  e.run();
  EXPECT_EQ(observed, 0);
}

TEST(Process, SleepBlocksForDuration) {
  Engine e;
  std::vector<double> wakeups;
  Process* p = nullptr;
  p = e.spawn("sleeper", [&] {
    wakeups.push_back(to_sec(e.now()));
    p->sleep(1.5);
    wakeups.push_back(to_sec(e.now()));
    p->sleep(0.5);
    wakeups.push_back(to_sec(e.now()));
  });
  e.run();
  ASSERT_EQ(wakeups.size(), 3u);
  EXPECT_DOUBLE_EQ(wakeups[0], 0.0);
  EXPECT_DOUBLE_EQ(wakeups[1], 1.5);
  EXPECT_DOUBLE_EQ(wakeups[2], 2.0);
  EXPECT_TRUE(p->finished());
}

TEST(Process, ManyProcessesInterleaveDeterministically) {
  Engine e;
  std::vector<std::pair<int, double>> trace;
  for (int i = 0; i < 5; ++i) {
    Process** slot = new Process*;  // owned by the closure's lifetime below
    *slot = e.spawn("p" + std::to_string(i), [&trace, slot, i] {
      for (int step = 0; step < 3; ++step) {
        trace.emplace_back(i, to_sec((*slot)->engine().now()));
        (*slot)->sleep(0.1 * (i + 1));
      }
      delete slot;
    });
  }
  e.run();
  ASSERT_EQ(trace.size(), 15u);
  // First five entries: all processes at t=0, in spawn order.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(trace[static_cast<std::size_t>(i)].first, i);
    EXPECT_DOUBLE_EQ(trace[static_cast<std::size_t>(i)].second, 0.0);
  }
}

TEST(Process, WakeOnNonWaitingProcessIsANoop) {
  Engine e;
  int steps = 0;
  Process* p = nullptr;
  p = e.spawn("p", [&] {
    ++steps;
    p->sleep(1.0);
    ++steps;
  });
  // Waking before the process ever ran (kCreated) must not disturb it.
  e.at(0, [&] { /* p is kCreated or kRunnable here; nothing to do */ });
  e.run();
  EXPECT_EQ(steps, 2);
  p->wake();  // finished process: no-op
  EXPECT_TRUE(p->finished());
}

TEST(Process, SuspendedDaemonUnwindsAtShutdown) {
  auto e = std::make_unique<Engine>();
  bool cleaned_up = false;
  Process* p = nullptr;
  p = e->spawn("daemon", [&] {
    struct Guard {
      bool* flag;
      ~Guard() { *flag = true; }
    } guard{&cleaned_up};
    p->suspend();  // waits forever; only shutdown can release it
  });
  e->run();
  EXPECT_FALSE(cleaned_up);  // still parked
  e.reset();                 // destructor shuts down and unwinds
  EXPECT_TRUE(cleaned_up);   // RAII ran during stack unwind
}

TEST(Process, SpawnDuringRunExecutesAtCurrentTime) {
  Engine e;
  double child_started = -1;
  Process* parent = nullptr;
  parent = e.spawn("parent", [&] {
    parent->sleep(2.0);
    e.spawn("child", [&] { child_started = to_sec(e.now()); });
    parent->sleep(1.0);
  });
  e.run();
  EXPECT_DOUBLE_EQ(child_started, 2.0);
}

TEST(Engine, EventCountsAreTracked) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, SchedulingInThePastAborts) {
  Engine e;
  e.at(100, [] {});
  e.run();
  EXPECT_DEATH(e.at(50, [] {}), "past");
}

}  // namespace
}  // namespace wacs::sim
