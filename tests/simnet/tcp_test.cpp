#include "simnet/tcp.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace wacs::sim {
namespace {

struct Fixture {
  Engine engine;
  Network net{engine};
  Fixture() {
    LinkParams lan{.name = "", .latency_s = msec(0.4),
                   .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
    net.add_site("rwcp", fw::Policy::typical(), lan);
    net.add_site("etl", fw::Policy::open(), lan);
    net.add_host({.name = "a", .site = "rwcp"});
    net.add_host({.name = "b", .site = "rwcp"});
    net.add_host({.name = "dmz", .site = "rwcp", .zone = Zone::kDmz});
    net.add_host({.name = "c", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      LinkParams{.name = "imnet", .latency_s = msec(3.1),
                                 .bandwidth_bps = kbit_per_sec(1500)});
  }
  Host& host(const std::string& n) { return net.host(n); }
};

TEST(SimTcp, ConnectAndExchangeMessages) {
  Fixture f;
  std::string got_at_server, got_at_client;

  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto listener = f.host("b").stack().listen(5000);
    ASSERT_TRUE(listener.ok());
    auto sock = (*listener)->accept(*server);
    ASSERT_TRUE(sock.ok());
    auto msg = (*sock)->recv(*server);
    ASSERT_TRUE(msg.ok());
    got_at_server = to_string(*msg);
    ASSERT_TRUE((*sock)->send(to_bytes("pong")).ok());
  });

  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto sock = f.host("a").stack().connect(*client, Contact{"b", 5000});
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE((*sock)->send(to_bytes("ping")).ok());
    auto reply = (*sock)->recv(*client);
    ASSERT_TRUE(reply.ok());
    got_at_client = to_string(*reply);
  });

  f.engine.run();
  EXPECT_EQ(got_at_server, "ping");
  EXPECT_EQ(got_at_client, "pong");
}

TEST(SimTcp, ConnectChargesRoundTripLatency) {
  Fixture f;
  double connect_done = -1;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("b").stack().listen(5000);
    (void)(*l)->accept(*server);
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 5000});
    ASSERT_TRUE(s.ok());
    connect_done = to_sec(f.engine.now());
  });
  f.engine.run();
  EXPECT_NEAR(connect_done, 2 * 0.0004, 1e-8);  // LAN RTT
}

TEST(SimTcp, ConnectionRefusedWithoutListener) {
  Fixture f;
  ErrorCode code = ErrorCode::kOk;
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 4242});
    ASSERT_FALSE(s.ok());
    code = s.error().code();
  });
  f.engine.run();
  EXPECT_EQ(code, ErrorCode::kConnectionRefused);
}

TEST(SimTcp, FirewallDeniesCrossSiteInbound) {
  Fixture f;
  ErrorCode code = ErrorCode::kOk;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("a").stack().listen(6000);  // inside rwcp
    auto s = (*l)->accept(*server);             // never satisfied
    (void)s;
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("c").stack().connect(*client, Contact{"a", 6000});
    ASSERT_FALSE(s.ok());
    code = s.error().code();
  });
  f.engine.run();
  EXPECT_EQ(code, ErrorCode::kPermissionDenied);
  EXPECT_EQ(f.net.site("rwcp").firewall().denied(), 1u);
}

TEST(SimTcp, FirewallHolePermitsDesignatedFlowOnly) {
  Fixture f;
  f.net.site("rwcp").firewall().set_policy(
      fw::Policy::typical().open_inbound_from(
          "dmz", fw::PortRange::single(9900), "nxport"));
  bool dmz_ok = false;
  ErrorCode etl_code = ErrorCode::kOk;

  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("a").stack().listen(9900);
    (void)(*l)->accept(*server);
    (void)(*l)->accept(*server);
  });
  Process* from_dmz = nullptr;
  from_dmz = f.engine.spawn("from_dmz", [&] {
    auto s = f.host("dmz").stack().connect(*from_dmz, Contact{"a", 9900});
    dmz_ok = s.ok();
  });
  Process* from_etl = nullptr;
  from_etl = f.engine.spawn("from_etl", [&] {
    auto s = f.host("c").stack().connect(*from_etl, Contact{"a", 9900});
    if (!s.ok()) etl_code = s.error().code();
  });
  f.engine.run();
  EXPECT_TRUE(dmz_ok);
  EXPECT_EQ(etl_code, ErrorCode::kPermissionDenied);
}

TEST(SimTcp, MessagesArriveInOrder) {
  Fixture f;
  std::vector<int> got;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("b").stack().listen(5000);
    auto s = (*l)->accept(*server);
    for (int i = 0; i < 50; ++i) {
      auto m = (*s)->recv(*server);
      ASSERT_TRUE(m.ok());
      BufReader r(*m);
      got.push_back(r.i32().value());
    }
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 5000});
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 50; ++i) {
      BufWriter w;
      w.i32(i);
      ASSERT_TRUE((*s)->send(std::move(w).take()).ok());
    }
  });
  f.engine.run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(SimTcp, LargeTransferIsBandwidthBound) {
  Fixture f;
  // 1 MB from rwcp to etl over a 1.5 Mbit/s WAN: ~5.6 s of virtual time.
  double received_at = -1;
  const std::size_t kSize = 1000000;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("c").stack().listen(5000);
    auto s = (*l)->accept(*server);
    auto m = (*s)->recv(*server);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->size(), kSize);
    received_at = to_sec(f.engine.now());
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->send(pattern_bytes(kSize)).ok());
  });
  f.engine.run();
  const double wan_tx = static_cast<double>(kSize + 64) / kbit_per_sec(1500);
  EXPECT_GT(received_at, wan_tx);          // at least the WAN serialization
  EXPECT_LT(received_at, wan_tx + 0.5);    // plus small latencies/handshake
}

TEST(SimTcp, PayloadIntegrityAcrossSizes) {
  Fixture f;
  for (std::size_t size : {0UL, 1UL, 1000UL, 65536UL, 1048576UL}) {
    Bytes sent = pattern_bytes(size, size);
    Bytes received;
    std::uint16_t port_box = 0;
    Process* server = nullptr;
    server = f.engine.spawn("server", [&] {
      auto l = f.host("b").stack().listen(0);
      ASSERT_TRUE(l.ok());
      // Tell the client which port we got via a side channel (the test).
      port_box = (*l)->port();
      auto s = (*l)->accept(*server);
      auto m = (*s)->recv(*server);
      ASSERT_TRUE(m.ok());
      received = std::move(*m);
    });
    Process* client = nullptr;
    client = f.engine.spawn("client", [&] {
      client->sleep(0.001);  // let the server bind
      auto s = f.host("a").stack().connect(*client, Contact{"b", port_box});
      ASSERT_TRUE(s.ok());
      ASSERT_TRUE((*s)->send(sent).ok());
    });
    f.engine.run();
    EXPECT_EQ(fnv1a(received), fnv1a(sent)) << "size=" << size;
    EXPECT_EQ(received, sent);
  }
}

TEST(SimTcp, CloseDeliversEofAfterData) {
  Fixture f;
  std::vector<std::string> events;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("b").stack().listen(5000);
    auto s = (*l)->accept(*server);
    while (true) {
      auto m = (*s)->recv(*server);
      if (!m.ok()) {
        events.push_back("eof");
        break;
      }
      events.push_back(to_string(*m));
    }
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 5000});
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->send(to_bytes("one")).ok());
    ASSERT_TRUE((*s)->send(to_bytes("two")).ok());
    (*s)->close();
  });
  f.engine.run();
  EXPECT_EQ(events,
            (std::vector<std::string>{"one", "two", "eof"}));
}

TEST(SimTcp, SendAfterPeerCloseFails) {
  Fixture f;
  Status late_send;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("b").stack().listen(5000);
    auto s = (*l)->accept(*server);
    (*s)->close();
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 5000});
    ASSERT_TRUE(s.ok());
    auto eof = (*s)->recv(*client);  // observe the FIN
    ASSERT_FALSE(eof.ok());
    late_send = (*s)->send(to_bytes("too late"));
  });
  f.engine.run();
  EXPECT_FALSE(late_send.ok());
  EXPECT_EQ(late_send.error().code(), ErrorCode::kConnectionClosed);
}

TEST(SimTcp, EphemeralPortsRespectEnvRange) {
  Fixture f;
  Env env;
  env.set(env_keys::kTcpMinPort, "40000");
  env.set(env_keys::kTcpMaxPort, "40001");
  auto& stack = f.host("a").stack();
  auto l1 = stack.listen(0, &env);
  auto l2 = stack.listen(0, &env);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ((*l1)->port(), 40000);
  EXPECT_EQ((*l2)->port(), 40001);
  auto l3 = stack.listen(0, &env);
  ASSERT_FALSE(l3.ok());
  EXPECT_EQ(l3.error().code(), ErrorCode::kResourceExhausted);
}

TEST(SimTcp, PortReleasedWhenListenerDestroyed) {
  Fixture f;
  auto& stack = f.host("a").stack();
  {
    auto l = stack.listen(7000);
    ASSERT_TRUE(l.ok());
    EXPECT_FALSE(stack.listen(7000).ok());  // busy while held
  }
  EXPECT_TRUE(stack.listen(7000).ok());  // reusable after destruction
}

TEST(SimTcp, DuplicateBindFails) {
  Fixture f;
  auto& stack = f.host("a").stack();
  auto l1 = stack.listen(8000);
  ASSERT_TRUE(l1.ok());
  auto l2 = stack.listen(8000);
  ASSERT_FALSE(l2.ok());
  EXPECT_EQ(l2.error().code(), ErrorCode::kAlreadyExists);
}

TEST(SimTcp, ListenerCloseRefusesPendingConnections) {
  Fixture f;
  bool client_saw_eof = false;
  ListenerPtr listener;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto l = f.host("b").stack().listen(5000);
    listener = *l;
    server->sleep(1.0);   // let the SYN land in pending_
    listener->close();    // never accepts it
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"b", 5000});
    // The handshake succeeded (SYN accepted by the stack) but the listener
    // closed before the application accepted: the connection EOFs.
    ASSERT_TRUE(s.ok());
    auto m = (*s)->recv(*client);
    client_saw_eof = !m.ok();
  });
  f.engine.run();
  EXPECT_TRUE(client_saw_eof);
}

TEST(SimTcp, ConnectToUnknownHostFails) {
  Fixture f;
  ErrorCode code = ErrorCode::kOk;
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto s = f.host("a").stack().connect(*client, Contact{"nonesuch", 1});
    ASSERT_FALSE(s.ok());
    code = s.error().code();
  });
  f.engine.run();
  EXPECT_EQ(code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace wacs::sim
