#include "simnet/storage.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/fault.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {
namespace {

TEST(DurableStore, PutGetEraseRoundTrip) {
  DurableStore disk;
  EXPECT_EQ(disk.get("k"), nullptr);
  disk.put("k", to_bytes("hello"));
  ASSERT_NE(disk.get("k"), nullptr);
  EXPECT_EQ(to_string(*disk.get("k")), "hello");
  disk.put("k", to_bytes("replaced"));
  EXPECT_EQ(to_string(*disk.get("k")), "replaced");
  EXPECT_TRUE(disk.erase("k"));
  EXPECT_FALSE(disk.erase("k"));
  EXPECT_EQ(disk.get("k"), nullptr);
}

TEST(DurableStore, AppendGrowsWithoutRewriting) {
  DurableStore disk;
  disk.append("log", to_bytes("aa"));
  disk.append("log", to_bytes("bb"));
  ASSERT_NE(disk.get("log"), nullptr);
  EXPECT_EQ(to_string(*disk.get("log")), "aabb");
  EXPECT_EQ(disk.writes(), 2u);
  EXPECT_EQ(disk.bytes_written(), 4u);
}

TEST(DurableStore, KeysFilterByPrefixInOrder) {
  DurableStore disk;
  disk.put("journal/b", to_bytes("1"));
  disk.put("journal/a", to_bytes("2"));
  disk.put("other", to_bytes("3"));
  EXPECT_EQ(disk.keys("journal/"),
            (std::vector<std::string>{"journal/a", "journal/b"}));
  EXPECT_EQ(disk.keys().size(), 3u);
}

TEST(DurableStore, SurvivesHostCrashAndRestart) {
  // The asymmetry the journal builds on: the fault injector kills a crashed
  // host's processes, but the host's disk keeps everything written before
  // the crash.
  Engine engine;
  Network net{engine};
  FaultInjector fault{net, /*seed=*/1};
  net.add_site("s", fw::Policy::open(),
               LinkParams{.name = "", .latency_s = 0, .bandwidth_bps = 1e9});
  net.add_host({.name = "c", .site = "s"});

  bool writer_survived = false;
  Process* writer = nullptr;
  writer = engine.spawn("writer", [&] {
    net.host("c").disk().put("state", to_bytes("precious"));
    writer->sleep(10.0);  // still parked when the crash lands
    writer_survived = true;
  });
  fault.register_host_process("c", writer);
  fault.plan_host_crash("c", from_sec(1.0));
  fault.plan_host_restart("c", from_sec(2.0));
  engine.run();

  EXPECT_FALSE(writer_survived);  // the process died...
  const Bytes* kept = net.host("c").disk().get("state");
  ASSERT_NE(kept, nullptr);  // ...the disk did not
  EXPECT_EQ(to_string(*kept), "precious");
}

}  // namespace
}  // namespace wacs::sim
