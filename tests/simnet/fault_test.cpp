#include "simnet/fault.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/units.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {
namespace {

// Two sites joined by the WAN link "imnet", mirroring the paper's testbed.
struct Fixture {
  Engine engine;
  Network net{engine};
  FaultInjector fault{net, /*seed=*/1};
  Fixture() {
    LinkParams lan{.name = "", .latency_s = msec(0.4),
                   .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
    net.add_site("rwcp", fw::Policy::open(), lan);
    net.add_site("etl", fw::Policy::open(), lan);
    net.add_host({.name = "a", .site = "rwcp"});
    net.add_host({.name = "c", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      LinkParams{.name = "imnet", .latency_s = msec(3.1),
                                 .bandwidth_bps = kbit_per_sec(1500)});
  }
  Host& host(const std::string& n) { return net.host(n); }
};

TEST(Fault, LinkFlapResetsBlockedTransferInsteadOfHanging) {
  Fixture f;
  // Down at t=50ms; the client is parked in recv() by then, waiting on a
  // reply the server never sends. Without the fault layer this recv would
  // block forever and engine.run() would never return.
  f.fault.plan_link_flap("imnet", from_sec(0.05), from_sec(0.2));

  bool server_saw_reset = false;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto listener = f.host("c").stack().listen(5000);
    ASSERT_TRUE(listener.ok());
    auto sock = (*listener)->accept(*server);
    ASSERT_TRUE(sock.ok());
    auto msg = (*sock)->recv(*server);
    ASSERT_TRUE(msg.ok());
    // Hold the reply until well past the flap: the connection dies first.
    server->sleep(0.1);
    server_saw_reset = !(*sock)->send(to_bytes("late reply")).ok();
  });

  Error client_error(ErrorCode::kOk, "");
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto sock = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE((*sock)->send(to_bytes("ping")).ok());
    auto reply = (*sock)->recv(*client);
    ASSERT_FALSE(reply.ok());
    client_error = reply.error();
  });

  f.engine.run();  // terminates: the reset wakes the parked recv
  EXPECT_EQ(client_error.code(), ErrorCode::kConnectionReset);
  EXPECT_TRUE(server_saw_reset);
  EXPECT_EQ(f.fault.counters().link_down_events, 1u);
  EXPECT_GE(f.fault.counters().connections_reset, 1u);
}

TEST(Fault, ConnectDuringDownWindowTimesOutThenReconnectSucceeds) {
  Fixture f;
  f.fault.set_connect_timeout_s(0.5);
  f.fault.plan_link_flap("imnet", from_sec(0.0), from_sec(1.0));

  bool got_timeout = false;
  bool reconnected = false;
  std::string reply_text;
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    client->sleep(0.01);  // inside the down window
    auto sock = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_FALSE(sock.ok());
    got_timeout = sock.error().code() == ErrorCode::kTimeout;
    client->sleep(2.0);  // past up_at
    auto again = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_TRUE(again.ok());
    reconnected = true;
    ASSERT_TRUE((*again)->send(to_bytes("ping")).ok());
    auto reply = (*again)->recv(*client);
    ASSERT_TRUE(reply.ok());
    reply_text = to_string(*reply);
  });

  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto listener = f.host("c").stack().listen(5000);
    ASSERT_TRUE(listener.ok());
    auto sock = (*listener)->accept(*server);
    ASSERT_TRUE(sock.ok());
    auto msg = (*sock)->recv(*server);
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE((*sock)->send(to_bytes("pong")).ok());
  });

  f.engine.run();
  EXPECT_TRUE(got_timeout);
  EXPECT_TRUE(reconnected);
  EXPECT_EQ(reply_text, "pong");
  EXPECT_EQ(f.fault.counters().link_up_events, 1u);
}

TEST(Fault, SendIntoDownedPathFailsFast) {
  Fixture f;
  bool send_failed = false;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto listener = f.host("c").stack().listen(5000);
    ASSERT_TRUE(listener.ok());
    (void)(*listener)->accept(*server);
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    auto sock = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_TRUE(sock.ok());
    f.fault.set_link_down("imnet", true);
    send_failed = !(*sock)->send(to_bytes("into the void")).ok();
    f.fault.set_link_down("imnet", false);
  });
  f.engine.run();
  EXPECT_TRUE(send_failed);
}

TEST(Fault, PerLinkLossDropsMessagesDeterministically) {
  Fixture f;
  f.fault.plan_link_loss("imnet", from_sec(0.0), 1.0);  // drop everything

  bool recv_timed_out = false;
  Process* server = nullptr;
  server = f.engine.spawn("server", [&] {
    auto listener = f.host("c").stack().listen(5000);
    ASSERT_TRUE(listener.ok());
    auto sock = (*listener)->accept(*server);
    ASSERT_TRUE(sock.ok());
    auto msg = (*sock)->recv_deadline(*server, from_sec(2.0));
    recv_timed_out = !msg.ok() && msg.error().code() == ErrorCode::kTimeout;
  });
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    // The handshake predates the loss plan's effect on data frames only if
    // loss also ate the SYN; connect via loopback-free path still works
    // because loss applies per message send, not to the handshake.
    auto sock = f.host("a").stack().connect(*client, Contact{"c", 5000});
    if (!sock.ok()) return;
    (void)(*sock)->send(to_bytes("doomed"));
    client->sleep(3.0);
  });
  f.engine.run();
  EXPECT_TRUE(recv_timed_out);
  EXPECT_GE(f.fault.counters().messages_dropped, 1u);
}

TEST(Fault, HostCrashKillsRegisteredProcessesAndRunsRestartHooks) {
  Fixture f;
  bool victim_completed = false;
  bool hook_ran = false;

  Process* victim = nullptr;
  victim = f.engine.spawn("victim", [&] {
    victim->sleep(10.0);
    victim_completed = true;  // never reached: the crash kills us at t=1
  });
  f.fault.register_host_process("c", victim);
  f.fault.on_host_restart("c", [&] { hook_ran = true; });
  f.fault.plan_host_crash("c", from_sec(1.0));
  f.fault.plan_host_restart("c", from_sec(2.0));

  f.engine.run();
  EXPECT_FALSE(victim_completed);
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(f.fault.counters().hosts_crashed, 1u);
  EXPECT_EQ(f.fault.counters().hosts_restarted, 1u);
  EXPECT_EQ(f.fault.counters().processes_killed, 1u);
}

TEST(Fault, RestartHooksFireInPriorityThenRegistrationOrder) {
  // The recovery stack depends on this: a site's GASS cache (priority 10)
  // must be listening again before the Q server's replay hook (40) re-
  // dispatches parts whose inputs are gass:// URLs.
  Fixture f;
  std::vector<std::string> order;
  f.fault.on_host_restart("c", [&] { order.push_back("qserver"); }, 40);
  f.fault.on_host_restart("c", [&] { order.push_back("outer"); });  // 0
  f.fault.on_host_restart("c", [&] { order.push_back("gk"); }, 30);
  f.fault.on_host_restart("c", [&] { order.push_back("gass"); }, 10);
  f.fault.on_host_restart("c", [&] { order.push_back("gass2"); }, 10);
  f.fault.plan_host_crash("c", from_sec(1.0));
  f.fault.plan_host_restart("c", from_sec(2.0));
  f.engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"outer", "gass", "gass2",
                                             "gk", "qserver"}));
  EXPECT_EQ(f.fault.last_crash_time("c"), from_sec(1.0));
  EXPECT_EQ(f.fault.last_restart_time("c"), from_sec(2.0));
}

TEST(Fault, ConnectToCrashedHostTimesOut) {
  Fixture f;
  f.fault.set_connect_timeout_s(0.25);
  f.fault.crash_host_now("c");
  Error err(ErrorCode::kOk, "");
  Time elapsed = 0;
  Process* client = nullptr;
  client = f.engine.spawn("client", [&] {
    const Time start = f.engine.now();
    auto sock = f.host("a").stack().connect(*client, Contact{"c", 5000});
    ASSERT_FALSE(sock.ok());
    err = sock.error();
    elapsed = f.engine.now() - start;
  });
  f.engine.run();
  EXPECT_EQ(err.code(), ErrorCode::kTimeout);
  EXPECT_EQ(elapsed, from_sec(0.25));  // the full SYN timeout, no more
}

}  // namespace
}  // namespace wacs::sim
