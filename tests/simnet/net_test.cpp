#include "simnet/net.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {
namespace {

LinkParams lan_params() {
  return LinkParams{.name = "", .latency_s = msec(0.4),
                    .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
}

/// Two-site topology: "rwcp" (deny-based firewall, one DMZ host) and "etl"
/// (open firewall), joined by a slow WAN.
struct TwoSites {
  Engine engine;
  Network net{engine};
  TwoSites() {
    net.add_site("rwcp", fw::Policy::typical(), lan_params());
    net.add_site("etl", fw::Policy::open(), lan_params());
    net.add_host({.name = "rwcp-sun", .site = "rwcp"});
    net.add_host({.name = "rwcp-outer", .site = "rwcp", .zone = Zone::kDmz});
    net.add_host({.name = "etl-sun", .site = "etl"});
    net.connect_sites("rwcp", "etl",
                      LinkParams{.name = "imnet", .latency_s = msec(3.1),
                                 .bandwidth_bps = kbit_per_sec(1500)});
  }
};

TEST(Link, TransmissionTimeMatchesBandwidth) {
  Link link(LinkParams{.name = "l", .latency_s = 0.001,
                       .bandwidth_bps = 1e6, .duplex = true});
  // 1e6 bytes at 1e6 B/s = 1s transmission + 1ms latency.
  Time arrival = link.transmit(0, 0, 1000000);
  EXPECT_EQ(arrival, from_sec(1.001));
}

TEST(Link, BackToBackMessagesQueue) {
  Link link(LinkParams{.name = "l", .latency_s = 0.0,
                       .bandwidth_bps = 1000, .duplex = true});
  Time a1 = link.transmit(0, 0, 1000);  // occupies [0, 1s]
  Time a2 = link.transmit(0, 0, 1000);  // must wait: [1s, 2s]
  EXPECT_EQ(a1, kSecond);
  EXPECT_EQ(a2, 2 * kSecond);
}

TEST(Link, DuplexDirectionsAreIndependent) {
  Link link(LinkParams{.name = "l", .latency_s = 0.0,
                       .bandwidth_bps = 1000, .duplex = true});
  Time fwd = link.transmit(0, 0, 1000);
  Time rev = link.transmit(0, 1, 1000);
  EXPECT_EQ(fwd, kSecond);
  EXPECT_EQ(rev, kSecond);  // no queueing across directions
}

TEST(Link, SharedSegmentContendsAcrossDirections) {
  Link link(LinkParams{.name = "l", .latency_s = 0.0,
                       .bandwidth_bps = 1000, .duplex = false});
  Time fwd = link.transmit(0, 0, 1000);
  Time rev = link.transmit(0, 1, 1000);
  EXPECT_EQ(fwd, kSecond);
  EXPECT_EQ(rev, 2 * kSecond);  // same medium
}

TEST(Link, CountsTraffic) {
  Link link(LinkParams{.name = "l", .latency_s = 0, .bandwidth_bps = 1e9});
  link.transmit(0, 0, 100);
  link.transmit(0, 0, 200);
  EXPECT_EQ(link.bytes_carried(), 300u);
  EXPECT_EQ(link.messages_carried(), 2u);
}

TEST(Network, RoutesLoopbackSameHost) {
  TwoSites t;
  Host& h = t.net.host("rwcp-sun");
  auto path = t.net.route(h, h);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0]->params().name, "rwcp-sun-lo");
}

TEST(Network, RoutesLanWithinSite) {
  TwoSites t;
  auto path = t.net.route(t.net.host("rwcp-sun"), t.net.host("rwcp-outer"));
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0]->params().name, "rwcp-lan");
}

TEST(Network, RoutesLanWanLanAcrossSites) {
  TwoSites t;
  auto path = t.net.route(t.net.host("rwcp-sun"), t.net.host("etl-sun"));
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[1]->params().name, "imnet");
}

TEST(Network, NoRouteBetweenUnconnectedSites) {
  Engine e;
  Network net(e);
  net.add_site("a", fw::Policy::open(), lan_params());
  net.add_site("b", fw::Policy::open(), lan_params());
  net.add_host({.name = "ha", .site = "a"});
  net.add_host({.name = "hb", .site = "b"});
  auto path = net.route(net.host("ha"), net.host("hb"));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code(), ErrorCode::kNotFound);
}

TEST(Network, AdmitsIntraSiteInsideToInside) {
  TwoSites t;
  Engine e2;  // unused; silence only
  (void)e2;
  // inside -> inside never touches the firewall.
  Host& a = t.net.host("rwcp-sun");
  EXPECT_TRUE(t.net.admit_connection(a, a, 1234).ok());
  EXPECT_EQ(t.net.site("rwcp").firewall().allowed(), 0u);
}

TEST(Network, InsideToDmzIsOutboundAllowed) {
  TwoSites t;
  // The paper's allow-based outbound default: inside may dial the DMZ.
  EXPECT_TRUE(t.net
                  .admit_connection(t.net.host("rwcp-sun"),
                                    t.net.host("rwcp-outer"), 9911)
                  .ok());
  EXPECT_EQ(t.net.site("rwcp").firewall().allowed(), 1u);
}

TEST(Network, DmzToInsideIsInboundDeniedByDefault) {
  TwoSites t;
  auto verdict = t.net.admit_connection(t.net.host("rwcp-outer"),
                                        t.net.host("rwcp-sun"), 5000);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(t.net.site("rwcp").firewall().denied(), 1u);
}

TEST(Network, DmzToInsideAllowedThroughNxport) {
  TwoSites t;
  t.net.site("rwcp").firewall().set_policy(
      fw::Policy::typical().open_inbound_from(
          "rwcp-outer", fw::PortRange::single(9900), "nxport"));
  EXPECT_TRUE(t.net
                  .admit_connection(t.net.host("rwcp-outer"),
                                    t.net.host("rwcp-sun"), 9900)
                  .ok());
  // Same port from a cross-site host is still denied (rule pins src_host).
  EXPECT_FALSE(t.net
                   .admit_connection(t.net.host("etl-sun"),
                                     t.net.host("rwcp-sun"), 9900)
                   .ok());
}

TEST(Network, CrossSiteInboundDeniedIntoFirewalledSite) {
  TwoSites t;
  auto verdict = t.net.admit_connection(t.net.host("etl-sun"),
                                        t.net.host("rwcp-sun"), 7777);
  EXPECT_FALSE(verdict.ok());
}

TEST(Network, CrossSiteIntoDmzSkipsFirewall) {
  TwoSites t;
  // The outer proxy server lives outside the filter: reachable from the WAN.
  EXPECT_TRUE(t.net
                  .admit_connection(t.net.host("etl-sun"),
                                    t.net.host("rwcp-outer"), 9911)
                  .ok());
}

TEST(Network, CrossSiteOutboundFromFirewalledSiteAllowed) {
  TwoSites t;
  EXPECT_TRUE(t.net
                  .admit_connection(t.net.host("rwcp-sun"),
                                    t.net.host("etl-sun"), 80)
                  .ok());
}

TEST(Network, DeliverChargesLatencyAndBandwidth) {
  TwoSites t;
  Host& src = t.net.host("rwcp-sun");
  Host& dst = t.net.host("etl-sun");
  const std::uint64_t payload = 100000;
  const double wire = static_cast<double>(payload + Network::kMessageOverheadBytes);
  Time arrival = t.net.deliver(src, dst, payload);
  // 2 LAN hops (10 MB/s, 0.4 ms) + WAN hop (187500 B/s, 3.1 ms),
  // store-and-forward.
  const double expect = 2 * (wire / 10e6 + 0.0004) + wire / 187500.0 + 0.0031;
  EXPECT_NEAR(to_sec(arrival), expect, 1e-8);
}

TEST(Network, PathLatencyIgnoresBandwidth) {
  TwoSites t;
  Time lat = t.net.path_latency(t.net.host("rwcp-sun"), t.net.host("etl-sun"));
  EXPECT_NEAR(to_sec(lat), 0.0004 + 0.0031 + 0.0004, 1e-12);
}

TEST(Network, DuplicateHostNameAborts) {
  Engine e;
  Network net(e);
  net.add_site("s", fw::Policy::open(), lan_params());
  net.add_host({.name = "h", .site = "s"});
  EXPECT_DEATH(net.add_host({.name = "h", .site = "s"}), "duplicate");
}

TEST(Network, ConcurrentFlowsShareTheWanLink) {
  // Two simultaneous transfers over the 1.5 Mbit/s WAN must serialize on
  // the shared medium: together they take about twice as long as one.
  auto run_transfers = [](int flows) {
    Engine engine;
    Network net(engine);
    LinkParams lan{.name = "", .latency_s = msec(0.4),
                   .bandwidth_bps = mbyte_per_sec(100), .duplex = false};
    net.add_site("a", fw::Policy::open(), lan);
    net.add_site("b", fw::Policy::open(), lan);
    for (int i = 0; i < flows; ++i) {
      net.add_host({.name = "src" + std::to_string(i), .site = "a"});
      net.add_host({.name = "dst" + std::to_string(i), .site = "b"});
    }
    net.connect_sites("a", "b",
                      LinkParams{.name = "wan", .latency_s = msec(3),
                                 .bandwidth_bps = kbit_per_sec(1500)});
    double last_arrival = 0;
    for (int i = 0; i < flows; ++i) {
      engine.spawn("rx" + std::to_string(i), [&net, &last_arrival,
                                              i](Process& self) {
        auto l = net.host("dst" + std::to_string(i)).stack().listen(5000);
        auto s = (*l)->accept(self);
        auto m = (*s)->recv(self);
        WACS_CHECK(m.ok());
        last_arrival = std::max(last_arrival, to_sec(self.engine().now()));
      });
      engine.spawn("tx" + std::to_string(i), [&net, i](Process& self) {
        auto s = net.host("src" + std::to_string(i))
                     .stack()
                     .connect(self, Contact{"dst" + std::to_string(i), 5000});
        WACS_CHECK(s.ok());
        WACS_CHECK((*s)->send(pattern_bytes(200000)).ok());
      });
    }
    engine.run();
    return last_arrival;
  };
  const double one = run_transfers(1);
  const double two = run_transfers(2);
  EXPECT_NEAR(two / one, 2.0, 0.1);
}

TEST(Network, TrafficReportCountsAndResets) {
  TwoSites t;
  t.engine.spawn("p", [&](sim::Process& self) {
    auto l = t.net.host("etl-sun").stack().listen(5000);
    auto s = t.net.host("rwcp-sun").stack().connect(self,
                                                    {"etl-sun", 5000});
    WACS_CHECK(s.ok());
    WACS_CHECK((*s)->send(pattern_bytes(50000)).ok());
    auto acc = (*l)->try_accept();
    WACS_CHECK(acc.has_value());
    WACS_CHECK((*acc)->recv(self).ok());
  });
  t.engine.run();
  std::string report = t.net.traffic_report();
  EXPECT_NE(report.find("imnet"), std::string::npos);
  EXPECT_NE(report.find("rwcp-lan"), std::string::npos);
  t.net.reset_traffic_counters();
  std::string empty = t.net.traffic_report();
  EXPECT_EQ(empty.find("imnet"), std::string::npos);
}

TEST(Network, DescribeMentionsSitesHostsAndWan) {
  TwoSites t;
  std::string desc = t.net.describe();
  EXPECT_NE(desc.find("site rwcp"), std::string::npos);
  EXPECT_NE(desc.find("rwcp-outer"), std::string::npos);
  EXPECT_NE(desc.find("dmz"), std::string::npos);
  EXPECT_NE(desc.find("wan etl <-> rwcp"), std::string::npos);
}

TEST(Link, TransmitFillsTimingDecomposition) {
  Link link(LinkParams{.name = "l", .latency_s = 0.001,
                       .bandwidth_bps = 1000, .duplex = true});
  TxTiming first;
  TxTiming second;
  Time a1 = link.transmit(0, 0, 1000, &first);   // tx [0, 1s]
  Time a2 = link.transmit(0, 0, 1000, &second);  // queues behind the first
  EXPECT_EQ(first.queued, 0);
  EXPECT_EQ(first.tx, kSecond);
  EXPECT_EQ(first.lat, from_sec(0.001));
  EXPECT_EQ(a1, first.queued + first.tx + first.lat);
  EXPECT_EQ(second.queued, kSecond);
  EXPECT_EQ(a2, second.queued + second.tx + second.lat);  // start was t=0
}

TEST(Link, SamplingBucketsBytesAndBusyTime) {
  Link link(LinkParams{.name = "l", .latency_s = 0,
                       .bandwidth_bps = 1000, .duplex = true});
  link.enable_sampling(kSecond / 2);  // 0.5s buckets; tx of 1000B spans two
  link.transmit(0, 0, 1000);
  link.transmit(2 * kSecond, 0, 500);  // bucket 4, busy 0.5s
  const auto& samples = link.samples();
  ASSERT_GE(samples.size(), 5u);
  std::uint64_t sampled_bytes = 0;
  Time sampled_busy = 0;
  for (const auto& bucket : samples) {
    sampled_bytes += bucket.bytes;
    sampled_busy += bucket.busy;
    EXPECT_LE(bucket.busy, kSecond / 2);
  }
  EXPECT_EQ(sampled_bytes, link.bytes_carried());
  EXPECT_EQ(sampled_busy, from_sec(1.5));  // total serialization time
  EXPECT_EQ(samples[0].busy, kSecond / 2);
  EXPECT_EQ(samples[1].busy, kSecond / 2);
  EXPECT_EQ(samples[4].busy, kSecond / 2);
  link.reset_counters();
  EXPECT_TRUE(link.samples().empty());
}

TEST(Network, DeliverDetailTelescopesAcrossHops) {
  TwoSites t;
  Host& src = t.net.host("rwcp-sun");
  Host& dst = t.net.host("etl-sun");
  std::vector<HopCharge> detail;
  Time arrival = t.net.deliver(src, dst, 1000, &detail);
  ASSERT_EQ(detail.size(), 3u);  // LAN - WAN - LAN
  EXPECT_EQ(detail[0].kind, HopCharge::Kind::kLan);
  EXPECT_EQ(detail[1].kind, HopCharge::Kind::kWan);
  EXPECT_EQ(detail[2].kind, HopCharge::Kind::kLan);
  EXPECT_STREQ(hop_kind_name(detail[1].kind), "wan");
  ASSERT_NE(detail[1].link, nullptr);
  EXPECT_EQ(detail[1].link->params().name, "imnet");
  Time sum = 0;
  for (const HopCharge& hop : detail) {
    sum += hop.timing.queued + hop.timing.tx + hop.timing.lat;
  }
  EXPECT_EQ(sum, arrival);  // charges partition [send, arrival]
}

TEST(Network, DeliverDetailLoopbackIsLocal) {
  TwoSites t;
  Host& h = t.net.host("rwcp-sun");
  std::vector<HopCharge> detail;
  t.net.deliver(h, h, 64, &detail);
  ASSERT_EQ(detail.size(), 1u);
  EXPECT_EQ(detail[0].kind, HopCharge::Kind::kLocal);
}

TEST(Network, LinkSamplingCoversCurrentAndFutureLinks) {
  TwoSites t;
  t.net.enable_link_sampling(from_sec(0.01));
  Host& src = t.net.host("rwcp-sun");
  Host& dst = t.net.host("etl-sun");
  t.net.deliver(src, dst, 5000);
  json::Value util = t.net.utilization_json();
  ASSERT_NE(util.find("links"), nullptr);
  const json::Value* links = util.find("links");
  EXPECT_NE(links->find("imnet"), nullptr);
  EXPECT_GT(links->find("imnet")->items().size(), 0u);
  // The ASCII view renders a row per link with traffic.
  const std::string ascii = t.net.utilization_ascii(32);
  EXPECT_NE(ascii.find("imnet"), std::string::npos);
}

}  // namespace
}  // namespace wacs::sim
