// Telemetry must never perturb the simulation, and must itself be
// deterministic: two same-seed runs with tracing on produce byte-identical
// trace files, and a traced run produces exactly the same application
// results as an untraced one.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/telemetry.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"

namespace wacs::core {
namespace {

struct TracedRun {
  knapsack::RunStats stats;
  std::uint64_t events;
  std::string jsonl;
  std::string chrome;
};

TracedRun run_wide_area(bool traced) {
  telemetry::metrics().reset();
  telemetry::tracer().clear();
  if (traced) telemetry::tracer().enable();

  auto tb = make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(16, 3);
  rmf::JobSpec spec;
  spec.name = "trace-det";
  spec.task = knapsack::kParallelTask;
  auto placements = placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, "500"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK(result.ok() && result->ok);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());

  TracedRun out;
  out.stats = *stats;
  out.events = tb->engine().events_executed();
  out.jsonl = telemetry::tracer().to_jsonl();
  out.chrome = telemetry::tracer().to_chrome_json();
  telemetry::tracer().disable();
  return out;
}

TEST(TraceDeterminism, SameSeedRunsProduceByteIdenticalTraces) {
  TracedRun a = run_wide_area(/*traced=*/true);
  TracedRun b = run_wide_area(/*traced=*/true);
  EXPECT_GT(telemetry::tracer().event_count(), 100u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  // The traces actually contain the causal chain, not just engine noise.
  EXPECT_NE(a.jsonl.find("relay.hop"), std::string::npos);
  EXPECT_NE(a.jsonl.find("knapsack.steal"), std::string::npos);
  EXPECT_NE(a.jsonl.find("rmf.job"), std::string::npos);
  EXPECT_NE(a.jsonl.find("\"type\":\"flow_s\""), std::string::npos);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheSimulation) {
  TracedRun untraced = run_wide_area(/*traced=*/false);
  TracedRun traced = run_wide_area(/*traced=*/true);
  EXPECT_EQ(untraced.jsonl, "");
  EXPECT_EQ(untraced.events, traced.events);
  EXPECT_EQ(untraced.stats.app_seconds, traced.stats.app_seconds);
  EXPECT_EQ(untraced.stats.total_nodes, traced.stats.total_nodes);
  EXPECT_EQ(untraced.stats.master_steals_handled,
            traced.stats.master_steals_handled);
  ASSERT_EQ(untraced.stats.ranks.size(), traced.stats.ranks.size());
  for (std::size_t i = 0; i < untraced.stats.ranks.size(); ++i) {
    EXPECT_EQ(untraced.stats.ranks[i].nodes_traversed,
              traced.stats.ranks[i].nodes_traversed);
  }
}

TEST(TraceDeterminism, ChromeExportParsesAndMapsVirtualTime) {
  TracedRun run = run_wide_area(/*traced=*/true);
  auto parsed = json::Value::parse(run.chrome);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const json::Value* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items().size(), 100u);
  // Timestamps are virtual microseconds: all non-negative, and at least one
  // event lands beyond the search phase's start (i.e. the mapping is not
  // collapsing everything to zero).
  double max_ts = 0;
  for (const auto& e : events->items()) {
    const json::Value* ts = e.find("ts");
    if (ts == nullptr) continue;  // "M" metadata has no timestamp
    EXPECT_GE(ts->as_double(), 0.0);
    max_ts = std::max(max_ts, ts->as_double());
  }
  EXPECT_GE(max_ts, run.stats.app_seconds * 1e6);
}

}  // namespace
}  // namespace wacs::core
