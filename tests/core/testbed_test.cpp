#include "core/testbeds.hpp"

#include <gtest/gtest.h>

namespace wacs::core {
namespace {

TEST(Testbed, Figure5TopologyIsComplete) {
  auto tb = make_rwcp_etl_testbed();
  sim::Network& net = tb->net();
  // Sites and the IMnet WAN.
  EXPECT_TRUE(net.find_site("rwcp").ok());
  EXPECT_TRUE(net.find_site("etl").ok());
  EXPECT_TRUE(net.route(net.host("rwcp-sun"), net.host("etl-sun")).ok());
  // Figure 5's host table.
  EXPECT_EQ(net.host("rwcp-sun").cpus(), 4);
  EXPECT_EQ(net.host("etl-sun").cpus(), 6);
  EXPECT_EQ(net.host("etl-o2k").cpus(), 16);
  EXPECT_EQ(net.host("rwcp-inner").cpus(), 2);
  EXPECT_EQ(net.host("rwcp-outer").cpus(), 2);
  EXPECT_EQ(tb.compas.size(), 8u);
  for (const auto& name : tb.compas) {
    EXPECT_EQ(net.host(name).cpus(), 4);  // quad-processor Pentium Pro SMPs
    EXPECT_DOUBLE_EQ(net.host(name).cpu_speed(), calib::kSpeedCompas);
  }
  // Deployment zones.
  EXPECT_EQ(net.host("rwcp-outer").zone(), sim::Zone::kDmz);
  EXPECT_EQ(net.host("rwcp-gate").zone(), sim::Zone::kDmz);
  EXPECT_EQ(net.host("rwcp-inner").zone(), sim::Zone::kInside);
}

TEST(Testbed, ServicesAreUp) {
  auto tb = make_rwcp_etl_testbed();
  EXPECT_NE(tb->outer(), nullptr);
  EXPECT_NE(tb->inner(), nullptr);
  EXPECT_NE(tb->allocator(), nullptr);
  EXPECT_NE(tb->gatekeeper(), nullptr);
  EXPECT_EQ(tb->qservers().size(), 11u);  // rwcp-sun + 8 compas + 2 etl
  EXPECT_EQ(tb->allocator()->resources().size(), 11u);
}

TEST(Testbed, RwcpFirewallHasExactlyTheDocumentedHoles) {
  auto tb = make_rwcp_etl_testbed();
  const fw::Policy& policy = tb->net().site("rwcp").firewall().policy();
  EXPECT_EQ(policy.default_inbound(), fw::Action::kDeny);
  EXPECT_EQ(policy.default_outbound(), fw::Action::kAllow);
  // nxport + allocator + one per RWCP Q server (rwcp-sun + 8 compas).
  std::size_t nxport_rules = 0, rmf_rules = 0;
  for (const auto& rule : policy.rules()) {
    if (rule.comment == "nxport") ++nxport_rules;
    if (rule.comment.rfind("Q client", 0) == 0) ++rmf_rules;
  }
  EXPECT_EQ(nxport_rules, 1u);
  EXPECT_EQ(rmf_rules, 1u + 9u);  // allocator + 9 RWCP Q servers
}

TEST(Testbed, ProxyEnvConfiguredOnlyWhenRequested) {
  auto with_proxy = make_rwcp_etl_testbed();
  const Env& env = with_proxy->qservers().front()->site_env();
  EXPECT_TRUE(env.has(env_keys::kProxyOuterServer));

  TestbedOptions options;
  options.rwcp_uses_proxy = false;
  auto without = make_rwcp_etl_testbed(options);
  EXPECT_FALSE(
      without->qservers().front()->site_env().has(env_keys::kProxyOuterServer));
}

TEST(Testbed, EtlHostsHaveNoProxyEnv) {
  auto tb = make_rwcp_etl_testbed();
  for (const auto& q : tb->qservers()) {
    if (q->contact().host.rfind("etl", 0) == 0) {
      EXPECT_FALSE(q->site_env().has(env_keys::kProxyOuterServer))
          << q->contact().host;
    }
  }
}

TEST(Testbed, OpenFirewallOptionRemovesDenials) {
  TestbedOptions options;
  options.open_rwcp_firewall = true;
  auto tb = make_rwcp_etl_testbed(options);
  EXPECT_EQ(tb->net().site("rwcp").firewall().policy().default_inbound(),
            fw::Action::kAllow);
}

TEST(Testbed, Table3PlacementsHaveTheRightShapes) {
  auto tb = make_rwcp_etl_testbed();
  auto count = [](const std::vector<rmf::Placement>& ps) {
    int n = 0;
    for (const auto& p : ps) n += p.count;
    return n;
  };
  EXPECT_EQ(count(placement_compas(tb)), 8);
  EXPECT_EQ(count(placement_etl_o2k()), 8);
  EXPECT_EQ(count(placement_local_area(tb)), 12);
  EXPECT_EQ(count(placement_wide_area(tb)), 20);
  // COMPaS: one processor per node ("8 processors, 1 processor on each
  // node").
  for (const auto& p : placement_compas(tb)) EXPECT_EQ(p.count, 1);
}

TEST(Testbed, DirectInboundToRwcpIsDenied) {
  auto tb = make_rwcp_etl_testbed();
  ErrorCode code = ErrorCode::kOk;
  tb->engine().spawn("probe", [&](sim::Process& self) {
    auto conn = tb->net().host("etl-sun").stack().connect(
        self, Contact{"rwcp-sun", 12345});
    if (!conn.ok()) code = conn.error().code();
  });
  tb->engine().run();
  EXPECT_EQ(code, ErrorCode::kPermissionDenied);
}

TEST(Testbed, EtlComputeHostsAreDirectlyReachable) {
  // "ETL-Sun and ETL-O2K can be accessed directly from RWCP."
  auto tb = make_rwcp_etl_testbed();
  bool reached = false;
  tb->engine().spawn("probe", [&](sim::Process& self) {
    auto listener = tb->net().host("etl-o2k").stack().listen(5555);
    ASSERT_TRUE(listener.ok());
    auto conn = tb->net().host("rwcp-sun").stack().connect(
        self, Contact{"etl-o2k", 5555});
    reached = conn.ok();
  });
  tb->engine().run();
  EXPECT_TRUE(reached);
}

TEST(Testbed, DescribeEchoesFigure5) {
  auto tb = make_rwcp_etl_testbed();
  std::string desc = tb->net().describe();
  EXPECT_NE(desc.find("site rwcp"), std::string::npos);
  EXPECT_NE(desc.find("compas08"), std::string::npos);
  EXPECT_NE(desc.find("wan etl <-> rwcp"), std::string::npos);
  EXPECT_NE(desc.find("1500 kbit/s"), std::string::npos);
}

}  // namespace
}  // namespace wacs::core
