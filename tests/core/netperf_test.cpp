// The network microbenchmark driver itself (core/netperf.hpp).
#include "core/netperf.hpp"

#include <gtest/gtest.h>

#include "core/testbeds.hpp"

namespace wacs::core {
namespace {

TEST(NetPerf, DirectLanMatchesCalibration) {
  TestbedOptions options;
  options.rwcp_uses_proxy = false;
  auto tb = make_rwcp_etl_testbed(options);
  NetPerfOptions perf;
  perf.message_sizes = {4096};
  auto r = measure_path(*tb, "rwcp-sun", "compas01", perf);
  EXPECT_NEAR(r.latency_ms, 0.41, 0.05);
  EXPECT_GT(r.bandwidth_bps[0], 2e6);
}

TEST(NetPerf, BandwidthGrowsWithMessageSize) {
  TestbedOptions options;
  options.rwcp_uses_proxy = false;
  auto tb = make_rwcp_etl_testbed(options);
  NetPerfOptions perf;
  perf.rounds_per_size = 8;
  perf.message_sizes = {1024, 16384, 262144, 1000000};
  auto r = measure_path(*tb, "rwcp-sun", "compas01", perf);
  ASSERT_EQ(r.bandwidth_bps.size(), 4u);
  for (std::size_t i = 1; i < r.bandwidth_bps.size(); ++i) {
    // Larger messages amortize the per-message latency: monotone increase.
    EXPECT_GT(r.bandwidth_bps[i], r.bandwidth_bps[i - 1]) << "size idx " << i;
  }
}

TEST(NetPerf, ProxiedPathIsSlowerThanDirect) {
  auto direct = [] {
    TestbedOptions o;
    o.rwcp_uses_proxy = false;
    auto tb = make_rwcp_etl_testbed(o);
    return measure_path(*tb, "rwcp-sun", "compas01");
  }();
  auto proxied = [] {
    auto tb = make_rwcp_etl_testbed();
    return measure_path(*tb, "rwcp-sun", "compas01");
  }();
  EXPECT_GT(proxied.latency_ms, 20 * direct.latency_ms);
  EXPECT_LT(proxied.bandwidth_bps[1], direct.bandwidth_bps[1] / 5);
}

TEST(NetPerf, SymmetricPairsAgree) {
  // Measuring A->B and B->A on identical fresh testbeds gives identical
  // numbers (the topology is symmetric for this pair).
  auto ab = [] {
    TestbedOptions o;
    o.rwcp_uses_proxy = false;
    auto tb = make_rwcp_etl_testbed(o);
    return measure_path(*tb, "compas01", "compas02");
  }();
  auto ba = [] {
    TestbedOptions o;
    o.rwcp_uses_proxy = false;
    auto tb = make_rwcp_etl_testbed(o);
    return measure_path(*tb, "compas02", "compas01");
  }();
  EXPECT_DOUBLE_EQ(ab.latency_ms, ba.latency_ms);
  EXPECT_DOUBLE_EQ(ab.bandwidth_bps[0], ba.bandwidth_bps[0]);
}

}  // namespace
}  // namespace wacs::core
