#include "core/grid.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace wacs::core {
namespace {

sim::LinkParams lan() {
  return sim::LinkParams{.name = "", .latency_s = msec(0.4),
                         .bandwidth_bps = mbyte_per_sec(10), .duplex = false};
}

/// Minimal single-site grid used to exercise GridSystem wiring directly.
std::unique_ptr<GridSystem> small_grid() {
  auto g = std::make_unique<GridSystem>();
  g->add_site("s", fw::Policy::typical(), lan());
  g->add_host({.name = "worker", .site = "s", .cpus = 4});
  g->add_host({.name = "inner", .site = "s", .cpus = 1});
  g->add_host({.name = "edge", .site = "s", .zone = sim::Zone::kDmz});
  return g;
}

TEST(GridSystem, BootsMinimalSingleSiteGrid) {
  auto g = small_grid();
  g->add_proxy_pair("edge", "inner", proxy::RelayParams{});
  g->add_allocator("inner");
  g->add_gatekeeper("edge", "secret");
  g->add_qserver("worker");

  g->registry().register_task("hello", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) ctx.result = to_bytes("hi from " + ctx.host->name());
  });

  rmf::JobSpec spec;
  spec.name = "hello";
  spec.task = "hello";
  spec.nprocs = 2;
  spec.placements = {{"worker", 2}};
  auto result = g->run_job("worker", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(to_string(result->output), "hi from worker");
  EXPECT_EQ(g->credential(), "secret");
}

TEST(GridSystem, QServerBeforeGatekeeperStillGetsFirewallRule) {
  auto g = small_grid();
  g->add_allocator("inner");
  g->add_qserver("worker");  // before the gatekeeper exists
  g->add_gatekeeper("edge", "secret");
  std::size_t q_rules = 0;
  for (const auto& rule : g->net().site("s").firewall().policy().rules()) {
    if (rule.comment == "Q client -> Q server") ++q_rules;
  }
  EXPECT_EQ(q_rules, 1u);
}

TEST(GridSystem, GatekeeperMustLiveInTheDmz) {
  auto g = small_grid();
  g->add_allocator("inner");
  EXPECT_DEATH(g->add_gatekeeper("worker", "secret"), "outside the firewall");
}

TEST(GridSystem, OuterServerMustLiveInTheDmz) {
  auto g = small_grid();
  EXPECT_DEATH(g->add_proxy_pair("inner", "worker", proxy::RelayParams{}),
               "DMZ");
}

TEST(GridSystem, AllocatorRequiredBeforeGatekeeper) {
  auto g = small_grid();
  EXPECT_DEATH(g->add_gatekeeper("edge", "secret"), "add_allocator");
}

TEST(GridSystem, SetHostEnvOverridesPerHost) {
  auto g = small_grid();
  Env env;
  env.set("X", "1");
  g->set_host_env("worker", env);
  Env env2;
  env2.set("X", "2");
  g->set_host_env("worker", env2);  // override, not append
  g->add_allocator("inner");
  g->add_qserver("worker");
  EXPECT_EQ(g->qservers().front()->site_env().get("X").value(), "2");
}

}  // namespace
}  // namespace wacs::core
