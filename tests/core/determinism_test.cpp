// Determinism: the whole stack — engine, network, proxies, RMF, MPI,
// knapsack — must produce bit-identical results run after run. This is what
// makes the bench tables reproducible and regressions diffable.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"

namespace wacs::core {
namespace {

struct Fingerprint {
  double app_seconds;
  std::uint64_t master_steals;
  std::uint64_t events;
  std::vector<std::uint64_t> rank_nodes;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_once() {
  auto tb = make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(18, 5);
  rmf::JobSpec spec;
  spec.name = "det";
  spec.task = knapsack::kParallelTask;
  auto placements = placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, "500"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK(result.ok() && result->ok);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());

  Fingerprint fp;
  fp.app_seconds = stats->app_seconds;
  fp.master_steals = stats->master_steals_handled;
  fp.events = tb->engine().events_executed();
  for (const auto& r : stats->ranks) fp.rank_nodes.push_back(r.nodes_traversed);
  return fp;
}

TEST(Determinism, IdenticalFingerprintAcrossRuns) {
  Fingerprint a = run_once();
  Fingerprint b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 1000u);
}

TEST(Determinism, MicrobenchmarkTimesAreExact) {
  // Two fresh testbeds measure identical virtual latencies.
  auto measure = [] {
    auto tb = make_rwcp_etl_testbed();
    double done = -1;
    tb->engine().spawn("m", [&](sim::Process& self) {
      auto l = tb->net().host("compas01").stack().listen(5000);
      auto c = tb->net().host("rwcp-sun").stack().connect(self,
                                                          {"compas01", 5000});
      WACS_CHECK(c.ok());
      WACS_CHECK((*c)->send(pattern_bytes(4096)).ok());
      auto srv = (*l)->try_accept();
      WACS_CHECK(srv.has_value());
      auto msg = (*srv)->recv(self);
      WACS_CHECK(msg.ok());
      done = sim::to_sec(tb->engine().now());
    });
    tb->engine().run();
    return done;
  };
  EXPECT_EQ(measure(), measure());
}

}  // namespace
}  // namespace wacs::core
