// The Figure 1 three-site wide-area cluster system: two firewalled sites
// (RWCP, TITech), each with its own Nexus Proxy pair, plus ETL.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "mpi/comm.hpp"

namespace wacs::core {
namespace {

TEST(ThreeSite, TopologyAndServices) {
  auto tb = make_three_site_testbed();
  EXPECT_TRUE(tb->net().find_site("titech").ok());
  EXPECT_EQ(tb->net().host("titech-smp").cpus(), 16);
  EXPECT_EQ(tb->net().host("titech-outer").zone(), sim::Zone::kDmz);
  ASSERT_EQ(tb->proxies().size(), 2u);
  EXPECT_NE(tb->proxy_for("rwcp"), nullptr);
  EXPECT_NE(tb->proxy_for("titech"), nullptr);
  EXPECT_EQ(tb->proxy_for("etl"), nullptr);
  // Routes exist between every pair of sites.
  EXPECT_TRUE(
      tb->net().route(tb->net().host("rwcp-sun"), tb->net().host("titech-smp"))
          .ok());
  EXPECT_TRUE(
      tb->net().route(tb->net().host("etl-sun"), tb->net().host("titech-smp"))
          .ok());
}

TEST(ThreeSite, BothFirewallsDenyDirectInbound) {
  auto tb = make_three_site_testbed();
  ErrorCode to_rwcp = ErrorCode::kOk, to_titech = ErrorCode::kOk;
  tb->engine().spawn("probe", [&](sim::Process& self) {
    auto a = tb->net().host("etl-sun").stack().connect(
        self, Contact{"rwcp-sun", 1234});
    if (!a.ok()) to_rwcp = a.error().code();
    auto b = tb->net().host("rwcp-outer").stack().connect(
        self, Contact{"titech-smp", 1234});
    if (!b.ok()) to_titech = b.error().code();
  });
  tb->engine().run();
  EXPECT_EQ(to_rwcp, ErrorCode::kPermissionDenied);
  EXPECT_EQ(to_titech, ErrorCode::kPermissionDenied);
}

TEST(ThreeSite, CrossFirewallMpiChainsTwoProxies) {
  // rank0 at RWCP (behind fw 1), rank1 at TITech (behind fw 2): the link
  // rank0->rank1 goes rwcp-outer -> titech-outer -> titech-inner -> rank1.
  auto tb = make_three_site_testbed();
  tb->registry().register_task("xfw", [](rmf::JobContext& ctx) {
    auto comm = mpi::Comm::init(ctx);
    if (comm->rank() == 0) {
      comm->send(1, 1, to_bytes("across two firewalls"));
      ctx.result = comm->recv(1, 2);
    } else {
      Bytes msg = comm->recv(0, 1);
      comm->send(0, 2, to_bytes("echo: " + to_string(msg)));
    }
    comm->finalize();
  });
  rmf::JobSpec spec;
  spec.name = "xfw";
  spec.task = "xfw";
  spec.nprocs = 2;
  spec.placements = {{"rwcp-sun", 1}, {"titech-smp", 1}};
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(to_string(result->output), "echo: across two firewalls");
  // Both proxy pairs carried traffic.
  EXPECT_GT(tb->proxy_for("rwcp")->outer->stats().messages, 0u);
  EXPECT_GT(tb->proxy_for("titech")->outer->stats().messages, 0u);
  EXPECT_GT(tb->proxy_for("titech")->inner->stats().messages, 0u);
}

TEST(ThreeSite, KnapsackAcrossAllThreeSites) {
  auto tb = make_three_site_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(20, 2);
  rmf::JobSpec spec;
  spec.name = "k3";
  spec.task = knapsack::kParallelTask;
  auto placements = placement_three_site(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  EXPECT_EQ(spec.nprocs, 28);
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  auto stats = knapsack::RunStats::decode(result->output);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->best_value, inst.total_profit());
  EXPECT_EQ(stats->total_nodes, knapsack::full_tree_nodes(20));
  ASSERT_EQ(stats->ranks.size(), 28u);
}

TEST(ThreeSite, Figure5PlacementsStillWork) {
  auto tb = make_three_site_testbed();
  tb->registry().register_task("noop", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) ctx.result = to_bytes("ok");
  });
  rmf::JobSpec spec;
  spec.name = "noop";
  spec.task = "noop";
  spec.nprocs = 20;
  spec.placements = placement_wide_area(tb);
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok) << result->error;
}

}  // namespace
}  // namespace wacs::core
