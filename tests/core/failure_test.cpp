// Failure injection: every misconfiguration or missing daemon must surface
// as a clean error, never a hang or a crash.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/testbeds.hpp"
#include "proxy/client.hpp"

namespace wacs::core {
namespace {

TEST(Failure, SubmitToHostWithoutGatekeeperIsRefused) {
  auto tb = make_rwcp_etl_testbed();
  Result<rmf::JobResult> outcome(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("probe", [&](sim::Process& self) {
    rmf::JobSpec spec;
    spec.name = "x";
    spec.task = "x";
    spec.credential = "wacs-grid";
    spec.nprocs = 1;
    // etl-sun runs no gatekeeper; dialing its gatekeeper port must refuse.
    outcome = rmf::submit_and_wait(self, tb->net().host("rwcp-sun"),
                                   Contact{"etl-sun", 2119}, spec);
  });
  tb->engine().run();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionRefused);
}

TEST(Failure, PlacementOnUnknownHostFailsCleanly) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("t", [](rmf::JobContext&) {});
  rmf::JobSpec spec;
  spec.name = "t";
  spec.task = "t";
  spec.nprocs = 1;
  spec.placements = {{"no-such-host", 1}};
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("unreachable"), std::string::npos);
}

TEST(Failure, PlacementOnHostWithoutQServerFailsCleanly) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("t", [](rmf::JobContext&) {});
  rmf::JobSpec spec;
  spec.name = "t";
  spec.task = "t";
  spec.nprocs = 1;
  // rwcp-inner exists but runs no Q server (and its firewall has no hole
  // for the Q server port there).
  spec.placements = {{"rwcp-inner", 1}};
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
}

TEST(Failure, NxConnectWithoutOuterDaemonFails) {
  // A proxy-configured client whose outer server address points nowhere.
  auto tb = make_rwcp_etl_testbed();
  ErrorCode code = ErrorCode::kOk;
  tb->engine().spawn("p", [&](sim::Process& self) {
    proxy::ProxyClient client(tb->net().host("rwcp-sun"),
                              Contact{"rwcp-outer", 55}, /* wrong port */
                              Contact{"rwcp-inner", 9900});
    auto conn = client.nx_connect(self, Contact{"etl-sun", 80});
    ASSERT_FALSE(conn.ok());
    code = conn.error().code();
  });
  tb->engine().run();
  EXPECT_EQ(code, ErrorCode::kConnectionRefused);
}

TEST(Failure, PassiveOpenWithDeadInnerReportsEofToRemote) {
  // Bind succeeds at the outer server, but the registered inner contact is
  // wrong: a remote peer's connection must EOF, not hang.
  auto tb = make_rwcp_etl_testbed();
  bool remote_saw_eof = false;
  Contact public_contact;

  tb->engine().spawn("bound", [&](sim::Process& self) {
    proxy::ProxyClient client(tb->net().host("rwcp-sun"),
                              tb->outer()->contact(),
                              Contact{"rwcp-inner", 1234} /* dead inner */);
    auto bound = client.nx_bind(self);
    ASSERT_TRUE(bound.ok());  // registration itself succeeds
    public_contact = (*bound)->public_contact();
    // nx_accept would wait forever — the test only drives the remote side.
  });

  tb->engine().spawn("remote", [&](sim::Process& self) {
    self.sleep(0.1);
    auto conn = tb->net().host("etl-sun").stack().connect(self, public_contact);
    ASSERT_TRUE(conn.ok());  // the outer server accepted the TCP connection
    auto msg = (*conn)->recv(self);
    remote_saw_eof = !msg.ok();  // bridge to the inner failed -> EOF
  });

  tb->engine().run();
  EXPECT_TRUE(remote_saw_eof);
}

TEST(Failure, ClosedFirewallBreaksRmfControlPath) {
  // Without the Q-client firewall holes, the job manager cannot reach the
  // allocator: the submission must fail with a clear message.
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("t", [](rmf::JobContext&) {});
  // Simulate an admin wiping the RWCP rules (keeps default deny inbound).
  tb->net().site("rwcp").firewall().set_policy(fw::Policy::typical());
  rmf::JobSpec spec;
  spec.name = "t";
  spec.task = "t";
  spec.nprocs = 1;  // unpinned: forces the allocator consultation
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("allocator unreachable"), std::string::npos);
}

TEST(Failure, ProxyRouteSurvivesWrongEnvOnTheFarSide) {
  // An ETL process mistakenly configured to use RWCP's proxy still works:
  // its connects simply relay through the outer server.
  auto tb = make_rwcp_etl_testbed();
  bool ok = false;
  tb->engine().spawn("p", [&](sim::Process& self) {
    Env env;
    env.set(env_keys::kProxyOuterServer,
            tb->outer()->contact().to_string());
    env.set(env_keys::kProxyInnerServer,
            tb->inner()->contact().to_string());
    nexus::CommContext misconfigured(tb->net().host("etl-sun"), env);
    auto listener = tb->net().host("etl-o2k").stack().listen(4000);
    ASSERT_TRUE(listener.ok());
    auto conn = misconfigured.connect(self, Contact{"etl-o2k", 4000});
    ok = conn.ok();
  });
  tb->engine().run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace wacs::core
