#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace wacs {
namespace {

RetryPolicy test_policy() {
  RetryPolicy p;
  p.max_attempts = 5;
  p.initial_backoff_ns = 1'000'000;  // 1 ms
  p.multiplier = 2.0;
  p.max_backoff_ns = 100'000'000;  // 100 ms
  p.jitter = 0.2;
  return p;
}

std::vector<std::int64_t> delay_sequence(const RetryPolicy& policy,
                                         std::uint64_t seed) {
  RetrySchedule schedule(policy, seed);
  std::vector<std::int64_t> delays;
  for (;;) {
    const std::int64_t d = schedule.next_delay_ns(0);
    if (d < 0) break;
    delays.push_back(d);
  }
  return delays;
}

TEST(RetrySchedule, SameSeedSameDelaySequence) {
  const auto a = delay_sequence(test_policy(), 7);
  const auto b = delay_sequence(test_policy(), 7);
  ASSERT_EQ(a.size(), 4u);  // max_attempts=5 -> 4 retries
  EXPECT_EQ(a, b);
}

TEST(RetrySchedule, DifferentSeedsDiverge) {
  const auto a = delay_sequence(test_policy(), 7);
  const auto b = delay_sequence(test_policy(), 8);
  EXPECT_NE(a, b);  // jitter=0.2 makes a collision across all 4 essentially nil
}

TEST(RetrySchedule, JitterStaysWithinBounds) {
  const RetryPolicy policy = test_policy();
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    RetrySchedule schedule(policy, seed);
    double base = static_cast<double>(policy.initial_backoff_ns);
    for (;;) {
      const std::int64_t d = schedule.next_delay_ns(0);
      if (d < 0) break;
      EXPECT_GE(static_cast<double>(d), base * (1.0 - policy.jitter) - 1.0);
      EXPECT_LE(static_cast<double>(d), base * (1.0 + policy.jitter) + 1.0);
      base = std::min(base * policy.multiplier,
                      static_cast<double>(policy.max_backoff_ns));
    }
  }
}

TEST(RetrySchedule, BackoffCapsAtMax) {
  RetryPolicy policy = test_policy();
  policy.max_attempts = 20;
  policy.jitter = 0;  // isolate the exponential base
  RetrySchedule schedule(policy, 1);
  std::int64_t last = 0;
  for (int i = 0; i < 19; ++i) {
    const std::int64_t d = schedule.next_delay_ns(0);
    ASSERT_GE(d, 0);
    EXPECT_LE(d, policy.max_backoff_ns);
    EXPECT_GE(d, last);  // monotone without jitter
    last = d;
  }
  EXPECT_EQ(last, policy.max_backoff_ns);
  EXPECT_LT(schedule.next_delay_ns(0), 0);  // budget exhausted
}

TEST(RetrySchedule, DeadlineCutsTheLoopShort) {
  RetryPolicy policy = test_policy();
  policy.jitter = 0;
  policy.deadline_ns = 1'500'000;  // room for the 1 ms retry, not the 2 ms one
  RetrySchedule schedule(policy, 1);
  EXPECT_EQ(schedule.next_delay_ns(0), policy.initial_backoff_ns);
  // Second retry would start at 1 ms elapsed + 2 ms backoff > deadline.
  EXPECT_LT(schedule.next_delay_ns(1'000'000), 0);
}

TEST(RetrySchedule, ElapsedAtOrPastDeadlineGivesUpImmediately) {
  RetryPolicy policy = test_policy();
  policy.deadline_ns = 1'000'000;
  RetrySchedule schedule(policy, 1);
  EXPECT_LT(schedule.next_delay_ns(policy.deadline_ns), 0);
}

struct FakeClock {
  std::int64_t now_ns = 0;
  std::vector<std::int64_t> sleeps;
  void sleep(std::int64_t ns) {
    sleeps.push_back(ns);
    now_ns += ns;
  }
};

TEST(RetryCall, SucceedsAfterTransientFailures) {
  FakeClock clock;
  int calls = 0;
  auto result = retry_call(
      test_policy(), 3,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status(ErrorCode::kUnavailable, "flap");
        return Status();
      },
      [&](std::int64_t ns) { clock.sleep(ns); }, [&] { return clock.now_ns; });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps.size(), 2u);
}

TEST(RetryCall, NonRetryableErrorPassesStraightThrough) {
  FakeClock clock;
  int calls = 0;
  auto result = retry_call(
      test_policy(), 3,
      [&]() -> Status {
        ++calls;
        return Status(ErrorCode::kPermissionDenied, "firewall said no");
      },
      [&](std::int64_t ns) { clock.sleep(ns); }, [&] { return clock.now_ns; });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST(RetryCall, ZeroRetryPolicyRunsOpExactlyOnce) {
  FakeClock clock;
  int calls = 0;
  auto result = retry_call(
      RetryPolicy::none(), 3,
      [&]() -> Result<int> {
        ++calls;
        return Result<int>(Error(ErrorCode::kTimeout, "slow"));
      },
      [&](std::int64_t ns) { clock.sleep(ns); }, [&] { return clock.now_ns; });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST(RetryCall, ExhaustsAttemptsAndReturnsLastError) {
  FakeClock clock;
  int calls = 0;
  auto result = retry_call(
      test_policy(), 3,
      [&]() -> Status {
        ++calls;
        return Status(ErrorCode::kConnectionReset, "rst");
      },
      [&](std::int64_t ns) { clock.sleep(ns); }, [&] { return clock.now_ns; });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kConnectionReset);
  EXPECT_EQ(calls, 5);  // max_attempts
}

TEST(RetryableClassification, MatchesTheRecoveryModel) {
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(is_retryable(ErrorCode::kConnectionRefused));
  EXPECT_TRUE(is_retryable(ErrorCode::kConnectionReset));
  EXPECT_FALSE(is_retryable(ErrorCode::kPermissionDenied));
  EXPECT_FALSE(is_retryable(ErrorCode::kProtocolError));
  EXPECT_FALSE(is_retryable(ErrorCode::kNotFound));
}

}  // namespace
}  // namespace wacs
