#include "common/json.hpp"

#include <gtest/gtest.h>

namespace wacs::json {
namespace {

TEST(JsonValue, DumpIsDeterministicAndInsertionOrdered) {
  Value v = Value::object();
  v.set("b", 1);
  v.set("a", 2.5);
  v.set("s", "hi");
  v.set("t", true);
  v.set("n", nullptr);
  EXPECT_EQ(v.dump(), R"({"b":1,"a":2.5,"s":"hi","t":true,"n":null})");
}

TEST(JsonValue, SetOverwritesInPlace) {
  Value v = Value::object();
  v.set("x", 1);
  v.set("y", 2);
  v.set("x", 3);
  EXPECT_EQ(v.dump(), R"({"x":3,"y":2})");
}

TEST(JsonValue, IntegersNeverPassThroughFloatingPoint) {
  Value v = Value::array();
  v.push_back(std::int64_t{9007199254740993});  // above 2^53
  EXPECT_EQ(v.dump(), "[9007199254740993]");
}

TEST(JsonValue, StringEscaping) {
  Value v = Value("quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(v.dump(), R"("quote\" slash\\ newline\n tab\t")");
}

TEST(JsonValue, ParseRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x",true,null],"b":{"c":-7},"d":""})";
  auto parsed = Value::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_EQ(parsed->find("b")->find("c")->as_int(), -7);
  EXPECT_EQ(parsed->find("a")->items().size(), 5u);
}

TEST(JsonValue, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::parse("{").ok());
  EXPECT_FALSE(Value::parse("[1,]").ok());
  EXPECT_FALSE(Value::parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Value::parse("").ok());
}

TEST(JsonValue, FindOnNonObjectIsNull) {
  Value v = Value(42);
  EXPECT_EQ(v.find("x"), nullptr);
  Value obj = Value::object();
  obj.set("present", 1);
  EXPECT_EQ(obj.find("absent"), nullptr);
  ASSERT_NE(obj.find("present"), nullptr);
}

}  // namespace
}  // namespace wacs::json
