#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wacs {
namespace {

TEST(BufWriter, WritesFixedWidthLittleEndian) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x34);  // LSB first
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xEF);
  EXPECT_EQ(b[6], 0xDE);
}

TEST(BufRoundTrip, AllScalarTypes) {
  BufWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  w.u64(0xFFFFFFFFFFFFFFFFULL);
  w.i32(-42);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);

  BufReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 65535);
  EXPECT_EQ(r.u32().value(), 123456789u);
  EXPECT_EQ(r.u64().value(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_EQ(r.i64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159265358979);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_FALSE(r.boolean().value());
  EXPECT_TRUE(r.at_end());
}

TEST(BufRoundTrip, StringsAndBlobs) {
  BufWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string(10000, 'x'));
  Bytes payload = {1, 2, 3, 0, 255};
  w.blob(payload);

  BufReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.str().value(), "");
  EXPECT_EQ(r.str().value(), std::string(10000, 'x'));
  EXPECT_EQ(r.blob().value(), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(BufRoundTrip, EmbeddedNulBytesInString) {
  BufWriter w;
  std::string s("a\0b\0c", 5);
  w.str(s);
  BufReader r(w.bytes());
  EXPECT_EQ(r.str().value(), s);
}

TEST(BufReader, TruncationIsAnErrorNotACrash) {
  BufWriter w;
  w.u64(1);
  Bytes data = std::move(w).take();
  data.pop_back();
  BufReader r(data);
  auto got = r.u64();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code(), ErrorCode::kProtocolError);
}

TEST(BufReader, TruncatedStringBodyIsAnError) {
  BufWriter w;
  w.u32(100);  // claims a 100-byte string...
  w.raw(to_bytes("short"));  // ...but only 5 bytes follow
  BufReader r(w.bytes());
  auto got = r.str();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code(), ErrorCode::kProtocolError);
}

TEST(BufReader, LyingLengthPrefixLargerThanBuffer) {
  BufWriter w;
  w.u32(0xFFFFFFFF);
  BufReader r(w.bytes());
  EXPECT_FALSE(r.blob().ok());
}

TEST(BufReader, ReadingPastEndAfterSuccess) {
  BufWriter w;
  w.u8(1);
  BufReader r(w.bytes());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u8().ok());
}

TEST(PatternBytes, DeterministicAndSeedSensitive) {
  Bytes a = pattern_bytes(1024, 1);
  Bytes b = pattern_bytes(1024, 1);
  Bytes c = pattern_bytes(1024, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1024u);
}

TEST(PatternBytes, PrefixStability) {
  // A longer payload starts with the shorter one (same stream).
  Bytes small = pattern_bytes(100, 7);
  Bytes big = pattern_bytes(200, 7);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), big.begin()));
}

TEST(Fnv1a, DistinguishesPayloads) {
  Bytes a = pattern_bytes(4096, 1);
  Bytes b = pattern_bytes(4096, 2);
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_EQ(fnv1a(a), fnv1a(pattern_bytes(4096, 1)));
}

TEST(Fnv1a, EmptyInputHasKnownOffsetBasis) {
  EXPECT_EQ(fnv1a(Bytes{}), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace wacs
