#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace wacs {
namespace {

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Format, DurationScales) {
  EXPECT_EQ(format_duration_ms(0.005), "5.0 us");
  EXPECT_EQ(format_duration_ms(0.41), "0.41 ms");
  EXPECT_EQ(format_duration_ms(25.0), "25.0 ms");
  EXPECT_EQ(format_duration_ms(1500.0), "1.50 s");
}

TEST(Format, BandwidthScales) {
  EXPECT_EQ(format_bandwidth(6.32e6), "6.32 MB/s");
  EXPECT_EQ(format_bandwidth(70.5e3), "70.5 KB/s");
  EXPECT_EQ(format_bandwidth(512), "512 B/s");
}

TEST(Format, CountWithThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  EXPECT_EQ(t.to_string(),
            "name         value\n"
            "------------------\n"
            "a            1\n"
            "longer-name  22\n");
}

TEST(TextTable, HeaderOnlyTable) {
  TextTable t({"x"});
  EXPECT_EQ(t.to_string(), "x\n-\n");
}

}  // namespace
}  // namespace wacs
