#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace wacs {
namespace {

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ConstantSequenceHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(3.25);
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_EQ(s.min(), 3.25);
  EXPECT_EQ(s.max(), 3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequentialAccumulation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0,
                                      -1.5, 12.25, 0.0};
  RunningStats whole;
  RunningStats left, right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i < values.size() / 2 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  RunningStats empty;
  s.merge(empty);  // no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  RunningStats target;
  target.merge(s);  // empty target copies the other side
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
  EXPECT_DOUBLE_EQ(target.variance(), s.variance());
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Format, DurationScales) {
  EXPECT_EQ(format_duration_ms(0.005), "5.0 us");
  EXPECT_EQ(format_duration_ms(0.41), "0.41 ms");
  EXPECT_EQ(format_duration_ms(25.0), "25.0 ms");
  EXPECT_EQ(format_duration_ms(1500.0), "1.50 s");
}

TEST(Format, BandwidthScales) {
  EXPECT_EQ(format_bandwidth(6.32e6), "6.32 MB/s");
  EXPECT_EQ(format_bandwidth(70.5e3), "70.5 KB/s");
  EXPECT_EQ(format_bandwidth(512), "512 B/s");
}

TEST(Format, CountWithThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  EXPECT_EQ(t.to_string(),
            "name         value\n"
            "------------------\n"
            "a            1\n"
            "longer-name  22\n");
}

TEST(TextTable, HeaderOnlyTable) {
  TextTable t({"x"});
  EXPECT_EQ(t.to_string(), "x\n-\n");
}

}  // namespace
}  // namespace wacs
