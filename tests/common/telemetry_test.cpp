#include "common/telemetry.hpp"

#include <gtest/gtest.h>

namespace wacs::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics().reset();
    tracer().clear();
    tracer().disable();
  }
  void TearDown() override {
    tracer().disable();
    tracer().clear();
    metrics().reset();
  }
};

TEST_F(TelemetryTest, CounterAccumulatesAndResets) {
  Counter& c = metrics().counter("test.counter");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  metrics().reset();
  EXPECT_EQ(c.value(), 0u);  // handle stays valid across reset
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(TelemetryTest, RegistryDeduplicatesByName) {
  Counter& a = metrics().counter("test.same");
  Counter& b = metrics().counter("test.same");
  EXPECT_EQ(&a, &b);
}

TEST_F(TelemetryTest, GaugeTracksUpAndDown) {
  Gauge& g = metrics().gauge("test.gauge");
  g.add(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.set(-10);
  EXPECT_EQ(g.value(), -10);
}

TEST_F(TelemetryTest, HistogramBucketsAndQuantiles) {
  Histogram& h = metrics().histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow bucket
  auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  // p25 lands in the first bucket, p100 in the overflow.
  EXPECT_LE(snap.quantile(0.25), 1.0);
  EXPECT_GE(snap.quantile(1.0), 100.0);
}

TEST_F(TelemetryTest, SnapshotIsSortedByName) {
  metrics().counter("test.b").add(1);
  metrics().counter("test.a").add(1);
  auto snap = metrics().snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  EXPECT_LT(snap.counters[0].first, snap.counters[1].first);
}

TEST_F(TelemetryTest, DisabledTracerRecordsNothing) {
  {
    Span span("cat", "disabled.span");
    EXPECT_FALSE(span.active());
    tracer().instant("cat", "disabled.instant");
    EXPECT_EQ(tracer().flow_start("cat", span.context()), 0u);
  }
  EXPECT_EQ(tracer().event_count(), 0u);
}

TEST_F(TelemetryTest, SpanNestingPropagatesParent) {
  tracer().enable();
  {
    Span outer("cat", "outer");
    ASSERT_TRUE(outer.active());
    {
      Span inner("cat", "inner");
      ASSERT_TRUE(inner.active());
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
      EXPECT_NE(inner.context().span_id, outer.context().span_id);
    }
  }
  EXPECT_EQ(tracer().event_count(), 2u);
  // Inner span closes first, so it is recorded first.
  const std::string jsonl = tracer().to_jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_LT(jsonl.find("\"name\":\"inner\""), jsonl.find("\"name\":\"outer\""));
}

TEST_F(TelemetryTest, ExplicitParentChainsAcrossSpans) {
  tracer().enable();
  TraceContext upstream;
  {
    Span producer("cat", "producer");
    upstream = producer.context();
  }
  {
    Span consumer("cat", "consumer", upstream);
    EXPECT_EQ(consumer.context().trace_id, upstream.trace_id);
  }
  const std::string jsonl = tracer().to_jsonl();
  EXPECT_NE(jsonl.find("\"parent\":" + std::to_string(upstream.span_id)),
            std::string::npos);
}

TEST_F(TelemetryTest, FlowPairsShareAnId) {
  tracer().enable();
  Span span("cat", "sender");
  const std::uint64_t flow = tracer().flow_start("cat", span.context());
  EXPECT_NE(flow, 0u);
  tracer().flow_end(flow, span.context());
  const std::string jsonl = tracer().to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"flow_s\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"flow_f\""), std::string::npos);
}

TEST_F(TelemetryTest, ChromeExportIsWellFormedJson) {
  tracer().enable();
  set_current_track("worker@hostA");
  {
    Span span("cat", "unit");
    span.arg("k", json::Value(1));
    tracer().instant("cat", "tick");
  }
  set_current_track("engine");
  const std::string chrome = tracer().to_chrome_json();
  auto parsed = json::Value::parse(chrome);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const json::Value* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata ("M") names the hostA process group, then the real events.
  bool saw_meta = false, saw_span = false;
  for (const auto& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") saw_meta = true;
    if (ph == "X") saw_span = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
}

TEST_F(TelemetryTest, ClearResetsIdsForReproducibleRuns) {
  tracer().enable();
  { Span span("cat", "first"); }
  const std::string run1 = tracer().to_jsonl();
  tracer().clear();
  tracer().enable();
  { Span span("cat", "first"); }
  EXPECT_EQ(tracer().to_jsonl(), run1);
}

TEST_F(TelemetryTest, RenderShowsCountersAndHistograms) {
  metrics().counter("test.render.counter").add(42);
  metrics().histogram("test.render.hist", default_ms_buckets()).observe(3.0);
  const std::string table = metrics().render();
  EXPECT_NE(table.find("test.render.counter"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("test.render.hist"), std::string::npos);
}

TEST_F(TelemetryTest, HistogramSummaryEmpty) {
  Histogram& h = metrics().histogram("test.sum.empty", {1.0, 10.0});
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST_F(TelemetryTest, HistogramSummarySingleBucket) {
  Histogram& h = metrics().histogram("test.sum.single", {1.0, 10.0, 100.0});
  h.observe(5.0);
  h.observe(5.0);
  h.observe(5.0);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  // All mass sits in the (1, 10] bucket: every quantile interpolates inside
  // that bucket's bounds and the sequence is monotone.
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LE(s.p99, 10.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST_F(TelemetryTest, ExponentialBoundsAreGeometricAndInclusive) {
  const auto bounds = Histogram::exponential_bounds(0.001, 10000.0, 40);
  ASSERT_EQ(bounds.size(), 40u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.001);
  EXPECT_DOUBLE_EQ(bounds.back(), 10000.0);
  // Constant ratio between adjacent bounds (geometric ladder).
  const double ratio = bounds[1] / bounds[0];
  for (std::size_t i = 2; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], ratio, ratio * 1e-9);
  }
}

TEST_F(TelemetryTest, ExponentialHistogramSpansMicrosecondsToSeconds) {
  Histogram h = Histogram::exponential(0.001, 10000.0, 40);
  h.observe(0.002);    // 2 µs
  h.observe(8000.0);   // 8 s
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  // Both land in interior buckets — neither clamped to an end.
  EXPECT_EQ(snap.counts.front(), 0u);
  EXPECT_EQ(snap.counts.back(), 0u);
}

TEST_F(TelemetryTest, DeltaSinceReportsChangesAndAdvancesBase) {
  Counter& c = metrics().counter("test.delta.c");
  Gauge& g = metrics().gauge("test.delta.g");
  c.add(5);
  g.set(10);
  Registry::Snapshot base;  // empty: everything deltas from zero
  Registry::Delta d = metrics().delta_since(base);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].first, "test.delta.c");
  EXPECT_EQ(d.counters[0].second, 5);
  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_EQ(d.gauges[0].second, 10);

  // No changes: the next delta is empty (unchanged series omitted).
  EXPECT_TRUE(metrics().delta_since(base).empty());

  // Counters delta forward, gauges can delta negative.
  c.add(2);
  g.add(-4);
  d = metrics().delta_since(base);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].second, 2);
  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_EQ(d.gauges[0].second, -4);
}

TEST_F(TelemetryTest, DeltaSinceSurvivesNewInstrumentsAppearing) {
  Counter& a = metrics().counter("test.delta2.a");
  a.add(1);
  Registry::Snapshot base;
  (void)metrics().delta_since(base);
  // A series born after the baseline deltas from zero.
  Counter& b = metrics().counter("test.delta2.b");
  b.add(7);
  const Registry::Delta d = metrics().delta_since(base);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].first, "test.delta2.b");
  EXPECT_EQ(d.counters[0].second, 7);
}

TEST_F(TelemetryTest, HistogramSummaryOverflowBucket) {
  Histogram& h = metrics().histogram("test.sum.overflow", {1.0});
  h.observe(5.0);
  h.observe(10.0);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  // The overflow bucket interpolates toward the observed max, never past it.
  EXPECT_GT(s.p99, 1.0);
  EXPECT_LE(s.p99, 10.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

}  // namespace
}  // namespace wacs::telemetry
