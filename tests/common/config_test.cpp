#include "common/config.hpp"

#include <gtest/gtest.h>

namespace wacs {
namespace {

TEST(Env, SetGetUnset) {
  Env env;
  EXPECT_FALSE(env.has("KEY"));
  env.set("KEY", "value");
  EXPECT_TRUE(env.has("KEY"));
  EXPECT_EQ(env.get("KEY").value(), "value");
  env.unset("KEY");
  EXPECT_FALSE(env.get("KEY").has_value());
}

TEST(Env, GetIntFallsBackWhenAbsent) {
  Env env;
  auto v = env.get_int("TCP_MIN_PORT", 5000);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5000);
}

TEST(Env, GetIntParsesPresentValue) {
  Env env;
  env.set(env_keys::kTcpMinPort, "40000");
  auto v = env.get_int(env_keys::kTcpMinPort, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 40000);
}

TEST(Env, GetIntRejectsGarbageLoudly) {
  // A typo'd config value must be an error, not a silent fallback.
  Env env;
  env.set(env_keys::kTcpMinPort, "4o000");
  auto v = env.get_int(env_keys::kTcpMinPort, 0);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code(), ErrorCode::kInvalidArgument);
}

TEST(Env, GetContactAbsentIsEmptyOptional) {
  Env env;
  auto c = env.get_contact(env_keys::kProxyOuterServer);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->has_value());
}

TEST(Env, GetContactParsesPresentValue) {
  Env env;
  env.set(env_keys::kProxyOuterServer, "rwcp-outer:9911");
  auto c = env.get_contact(env_keys::kProxyOuterServer);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->has_value());
  EXPECT_EQ((*c)->host, "rwcp-outer");
  EXPECT_EQ((*c)->port, 9911);
}

TEST(Env, GetContactRejectsMalformedValue) {
  Env env;
  env.set(env_keys::kProxyOuterServer, "not-a-contact");
  auto c = env.get_contact(env_keys::kProxyOuterServer);
  EXPECT_FALSE(c.ok());
}

TEST(Env, OverwriteReplacesValue) {
  Env env;
  env.set("K", "1");
  env.set("K", "2");
  EXPECT_EQ(env.get("K").value(), "2");
  EXPECT_EQ(env.size(), 1u);
}

}  // namespace
}  // namespace wacs
