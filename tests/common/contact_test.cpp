#include "common/contact.hpp"

#include <gtest/gtest.h>

namespace wacs {
namespace {

TEST(Contact, ParsesHostPort) {
  auto c = Contact::parse("rwcp-sun:2811");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->host, "rwcp-sun");
  EXPECT_EQ(c->port, 2811);
}

TEST(Contact, RoundTripsThroughToString) {
  Contact c{"etl-o2k", 9000};
  auto parsed = Contact::parse(c.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, c);
}

TEST(Contact, ParsesIpv6Literal) {
  auto c = Contact::parse("[::1]:8080");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->host, "::1");
  EXPECT_EQ(c->port, 8080);
}

TEST(Contact, LastColonSplitsHostWithColons) {
  // Not bracketed, but the port must come from the last colon.
  auto c = Contact::parse("a:b:123");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->host, "a:b");
  EXPECT_EQ(c->port, 123);
}

struct BadContactCase {
  const char* text;
};

class ContactRejects : public ::testing::TestWithParam<BadContactCase> {};

TEST_P(ContactRejects, MalformedInput) {
  auto c = Contact::parse(GetParam().text);
  ASSERT_FALSE(c.ok()) << GetParam().text;
  EXPECT_EQ(c.error().code(), ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ContactRejects,
    ::testing::Values(BadContactCase{""}, BadContactCase{"hostonly"},
                      BadContactCase{":80"}, BadContactCase{"host:"},
                      BadContactCase{"host:abc"}, BadContactCase{"host:12x"},
                      BadContactCase{"host:70000"}, BadContactCase{"host:-1"},
                      BadContactCase{"[::1]"}, BadContactCase{"[::1:80"},
                      BadContactCase{"[::1]80"}));

TEST(Contact, PortBoundaries) {
  EXPECT_TRUE(Contact::parse("h:0").ok());
  EXPECT_TRUE(Contact::parse("h:65535").ok());
  EXPECT_FALSE(Contact::parse("h:65536").ok());
}

}  // namespace
}  // namespace wacs
