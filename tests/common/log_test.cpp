// The structured (JSON) log sink: format shape, escaping, and the runtime
// toggle. format_line is the seam — the tests never scrape stderr.
#include "common/log.hpp"

#include <gtest/gtest.h>

#include "common/json.hpp"

namespace wacs::log {
namespace {

/// RAII guard: every test leaves the sink the way it found it.
struct JsonSink {
  bool saved = json_enabled();
  explicit JsonSink(bool on) { set_json(on); }
  ~JsonSink() { set_json(saved); }
};

TEST(LogFormat, HumanFormatIsTheDefaultShape) {
  JsonSink off(false);
  const std::string line = format_line(Level::kWarn, "rmf.gk", "hello");
  EXPECT_NE(line.find("[WARN"), std::string::npos);
  EXPECT_NE(line.find("rmf.gk"), std::string::npos);
  EXPECT_NE(line.find("hello"), std::string::npos);
  EXPECT_EQ(line.find('{'), std::string::npos);  // not JSON
}

TEST(LogFormat, JsonLineParsesAndCarriesAllFields) {
  JsonSink on(true);
  const std::string line =
      format_line(Level::kError, "nxproxy.outer", "relay failed");
  auto doc = json::Value::parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->find("level")->as_string(), "ERROR");
  EXPECT_EQ(doc->find("component")->as_string(), "nxproxy.outer");
  EXPECT_EQ(doc->find("msg")->as_string(), "relay failed");
  EXPECT_GT(doc->find("ts_ms")->as_int(), 0);
}

TEST(LogFormat, JsonEscapesHostileMessageBytes) {
  JsonSink on(true);
  const std::string line = format_line(
      Level::kInfo, "c\"omp", "quote \" backslash \\ newline \n tab \t");
  auto doc = json::Value::parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->find("component")->as_string(), "c\"omp");
  EXPECT_EQ(doc->find("msg")->as_string(),
            "quote \" backslash \\ newline \n tab \t");
  // One line per record, however hostile the payload.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogFormat, ToggleSwitchesSinksAtRuntime) {
  JsonSink on(true);
  EXPECT_TRUE(json_enabled());
  const std::string json_line = format_line(Level::kInfo, "x", "m");
  set_json(false);
  EXPECT_FALSE(json_enabled());
  const std::string human_line = format_line(Level::kInfo, "x", "m");
  EXPECT_NE(json_line, human_line);
  EXPECT_TRUE(json::Value::parse(json_line).ok());
  EXPECT_FALSE(json::Value::parse(human_line).ok());
}

}  // namespace
}  // namespace wacs::log
