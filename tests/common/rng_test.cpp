#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wacs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversAllValuesInSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U(0,1) is 0.5; 10k samples keep us within a few sigma.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(42);
  std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(42);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace wacs
