#include "common/error.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace wacs {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(Status, CarriesError) {
  Status s(ErrorCode::kPermissionDenied, "firewall said no");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(s.to_string(), "PermissionDenied: firewall said no");
}

TEST(ErrorCode, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "UnknownErrorCode");
  }
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kTimeout, "deadline passed");
  EXPECT_EQ(e.to_string(), "Timeout: deadline passed");
  Error bare(ErrorCode::kTimeout, "");
  EXPECT_EQ(bare.to_string(), "Timeout");
}

}  // namespace
}  // namespace wacs
