// Compiled with -DWACS_PROF=0 (see tests/prof/CMakeLists.txt): the
// compiled-out tier of the profiler. PROF_SCOPE must expand to nothing —
// not "a timer that checks a flag", nothing — so instrumented hot paths in
// a WACS_PROF=0 build carry zero profiling code. The proof: force-enable
// recording, execute scopes, and observe that no frame was ever created.
#include <gtest/gtest.h>

#include "prof/prof.hpp"

static_assert(WACS_PROF == 0,
              "this test must be built with -DWACS_PROF=0; the CMake "
              "target test_prof_off_guard sets it");

namespace wacs::prof {
namespace {

TEST(ProfOffGuard, ScopeMacroCompilesToNothing) {
  reset();
  enable();  // recording force-enabled: any surviving scope code would fire
  {
    PROF_SCOPE("guard.must_not_exist");
    {
      PROF_SCOPE("guard.child");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  disable();
  // The library API stays linked (tools build unconditionally), but the
  // macro left no frames behind: the instrumentation is not in this binary.
  EXPECT_TRUE(collect_folded().empty());
}

TEST(ProfOffGuard, ScopeMacroIsAnExpressionStatement) {
  // The compiled-out form must still parse everywhere the real macro does:
  // several in one block, inside an if with braces, inside a loop.
  enable();
  PROF_SCOPE("a");
  PROF_SCOPE("b");
  if (enabled()) {
    PROF_SCOPE("c");
  }
  for (int i = 0; i < 2; ++i) {
    PROF_SCOPE("d");
  }
  disable();
  EXPECT_TRUE(collect_folded().empty());
}

}  // namespace
}  // namespace wacs::prof
