// Profiling must be advisory-only (DESIGN.md §15): enabling host-time
// recording may not perturb the simulation. Same-seed runs with profiling
// on and off must produce byte-identical observability journals, timeline
// snapshots, virtual makespans, and search statistics — host timestamps
// live only in the profile dump, never in simulation outputs.
#include <gtest/gtest.h>

#include <string>

#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "prof/prof.hpp"

namespace wacs::prof {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;

rmf::JobSpec knapsack_spec(const knapsack::Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "prof-determinism";
  spec.task = knapsack::kParallelTask;
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {"etl-o2k", 2}};
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{knapsack::args::kInterval, "200"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kBackUnit, "32"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  spec.deadline_seconds = 300;
  return spec;
}

struct RunOutputs {
  std::string journal;
  std::string snapshot;
  double wall_seconds = 0;
  std::int64_t best_value = 0;
  std::uint64_t total_nodes = 0;
  std::uint64_t events_profiled = 0;
};

RunOutputs run_once(const knapsack::Instance& inst) {
  RunOutputs out;
  Testbed tb = make_rwcp_etl_testbed();
  tb->enable_observability("rwcp-sun");
  auto result = tb->run_job("rwcp-sun", knapsack_spec(inst));
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  auto stats = knapsack::RunStats::decode(result->output);
  EXPECT_TRUE(stats.ok());
  out.journal = tb->collector()->journal();
  out.snapshot =
      tb->collector()->timeline().snapshot_json(tb->engine().now()).dump();
  out.wall_seconds = result->wall_seconds;
  out.best_value = stats->best_value;
  out.total_nodes = stats->total_nodes;
  out.events_profiled = tb->engine().profile().events_recorded();
  return out;
}

TEST(ProfDeterminism, EnabledProfilingLeavesSimulationByteIdentical) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 5);

  reset();
  disable();
  const RunOutputs off = run_once(inst);
  EXPECT_EQ(off.events_profiled, 0u);

  enable();
  const RunOutputs on = run_once(inst);
  disable();
  // The profiled run actually recorded — otherwise this test would pass
  // trivially with the profiler dead.
  EXPECT_GT(on.events_profiled, 0u);
  EXPECT_FALSE(collect_folded().empty());
  reset();

  // Everything the simulation emits is identical to the byte: profiling
  // never touched the event queue, the clock, or the metrics plane.
  EXPECT_EQ(on.journal, off.journal);
  EXPECT_EQ(on.snapshot, off.snapshot);
  EXPECT_EQ(on.wall_seconds, off.wall_seconds);
  EXPECT_EQ(on.best_value, off.best_value);
  EXPECT_EQ(on.total_nodes, off.total_nodes);
  EXPECT_FALSE(off.journal.empty());
}

TEST(ProfDeterminism, ProfiledDumpCarriesEngineAndScopeData) {
  knapsack::Instance inst = knapsack::no_prune_instance(12, 3);
  reset();
  enable();
  Testbed tb = make_rwcp_etl_testbed();
  auto result = tb->run_job("rwcp-sun", knapsack_spec(inst));
  disable();
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  // The dump a bench or SIGUSR1 handler would write: engine section with
  // per-event costs and the lookahead ledger, scopes from PROF_SCOPE.
  EngineProfile& profile = tb->engine().profile();
  EXPECT_GT(profile.events_recorded(), 0u);
  // Cross-site steals and backtracking replies crossed rwcp<->etl, so the
  // lookahead ledger must have seen both classes of delivery.
  EXPECT_GT(profile.lookahead().intra_site, 0u);
  EXPECT_GT(profile.lookahead().cross_site, 0u);
  EXPECT_GT(profile.min_cross_site_latency_ns(), 0);

  const std::string body = dump_json("determinism-test", &profile, {});
  reset();
  EXPECT_NE(body.find("\"kind\":\"wacs-prof\""), std::string::npos);
  EXPECT_NE(body.find("lookahead"), std::string::npos);
}

}  // namespace
}  // namespace wacs::prof
