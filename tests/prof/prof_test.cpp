// Unit tests for the host-time profiling layer (DESIGN.md §15): scope
// trees and folded stacks, the log2 latency histogram, the engine profile
// (slice slots, lookahead ledger), and the dump/parse/merge round trip
// through the wacs-prof report library.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "prof/prof.hpp"
#include "prof/report.hpp"

namespace wacs::prof {
namespace {

const FoldedLine* find_stack(const std::vector<FoldedLine>& lines,
                             const std::string& stack) {
  for (const auto& l : lines) {
    if (l.stack == stack) return &l;
  }
  return nullptr;
}

// Burns a little real host time so scope self-times are strictly positive
// even on coarse clocks.
void spin_ns(std::int64_t ns) {
  const std::int64_t t0 = now_ns();
  while (now_ns() - t0 < ns) {
  }
}

TEST(ProfScopes, NestedFramesFoldIntoStacks) {
  reset();
  enable();
  {
    PROF_SCOPE("t_outer");
    spin_ns(20'000);
    {
      PROF_SCOPE("t_inner");
      spin_ns(20'000);
    }
    {
      PROF_SCOPE("t_inner");
      spin_ns(20'000);
    }
  }
  disable();

  const auto folded = collect_folded();
  const FoldedLine* outer = find_stack(folded, "t_outer");
  const FoldedLine* inner = find_stack(folded, "t_outer;t_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->stat.count, 1u);
  EXPECT_EQ(inner->stat.count, 2u);
  // Self = total - child: the parent's self time excludes the children.
  EXPECT_GE(outer->stat.total_ns, inner->stat.total_ns);
  EXPECT_EQ(outer->stat.self_ns(),
            outer->stat.total_ns - outer->stat.child_ns);
  EXPECT_GE(outer->stat.child_ns, inner->stat.total_ns);
  EXPECT_GT(inner->stat.self_ns(), 0);

  // flamegraph.pl format: "stack self_ns", one line per frame.
  const std::string text = folded_to_string(folded);
  EXPECT_NE(text.find("t_outer;t_inner "), std::string::npos);
  reset();
}

TEST(ProfScopes, DisabledScopesRecordNothing) {
  reset();
  ASSERT_FALSE(enabled());
  {
    PROF_SCOPE("t_should_not_record");
    spin_ns(1'000);
  }
  EXPECT_TRUE(collect_folded().empty());
}

TEST(ProfScopes, ScopeOpenedBeforeDisableStillClosesCleanly) {
  reset();
  enable();
  {
    PROF_SCOPE("t_straddle");
    // Profiling flips off mid-frame: the timer was armed at entry, so the
    // frame still closes and records rather than corrupting the tree.
    disable();
    spin_ns(1'000);
  }
  const auto folded = collect_folded();
  EXPECT_NE(find_stack(folded, "t_straddle"), nullptr);
  reset();
}

TEST(ProfLog2Hist, ObserveTracksCountMinMaxAndQuantiles) {
  Log2Hist h;
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (std::int64_t v : {100, 200, 400, 800, 1600}) h.observe(v);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.total_ns, 3100);
  EXPECT_EQ(h.min_ns, 100);
  EXPECT_EQ(h.max_ns, 1600);
  // Log2 buckets give geometric-midpoint quantiles: accurate to a factor
  // of two, monotone in q.
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, p10);
  EXPECT_GE(p99, p50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p99, 2.0 * 1600.0);

  const json::Value j = h.json();
  EXPECT_EQ(j.find("count")->as_int(), 5);
}

TEST(ProfEngineProfile, SliceSlotReferencesSurviveClear) {
  EngineProfile p;
  Log2Hist& slot = p.slice_slot("rank0@rwcp-sun");
  slot.observe(1000);
  EXPECT_EQ(p.slice_slot("rank0@rwcp-sun").count, 1u);
  p.clear();
  // clear() zeroes slots in place so cached references (Process keeps one
  // per run) stay valid instead of dangling.
  EXPECT_EQ(&p.slice_slot("rank0@rwcp-sun"), &slot);
  EXPECT_EQ(slot.count, 0u);
  slot.observe(2000);
  EXPECT_EQ(p.slice_slot("rank0@rwcp-sun").count, 1u);
}

TEST(ProfEngineProfile, LookaheadLedgerClassifiesDeliveries) {
  EngineProfile p;
  p.record_delivery("rwcp", "rwcp", 5'000);
  p.record_delivery("rwcp", "etl", 40'000'000);
  p.record_delivery("etl", "rwcp", 25'000'000);
  p.record_delivery("rwcp", "etl", 60'000'000);

  EXPECT_EQ(p.lookahead().intra_site, 1u);
  EXPECT_EQ(p.lookahead().cross_site, 3u);
  EXPECT_DOUBLE_EQ(p.lookahead().cross_fraction(), 0.75);
  // The minimum cross-site latency is the conservative-DES lookahead
  // bound; intra-site deliveries must not drag it down.
  EXPECT_EQ(p.min_cross_site_latency_ns(), 25'000'000);

  const std::string text = p.render();
  EXPECT_NE(text.find("cross-site"), std::string::npos);
  const json::Value j = p.json();
  ASSERT_NE(j.find("lookahead"), nullptr);
}

TEST(ProfEngineProfile, EventCostsAggregateByLabel) {
  EngineProfile p;
  static const char* kDeliver = "net.deliver";
  static const char* kTimer = "engine.timer";
  p.record_event(kDeliver, 1'000, 4);
  p.record_event(kDeliver, 3'000, 5);
  p.record_event(kTimer, 500, 2);
  EXPECT_EQ(p.events_recorded(), 3u);
  const auto folded = p.folded();
  const FoldedLine* deliver = find_stack(folded, "engine.run;net.deliver");
  ASSERT_NE(deliver, nullptr);
  EXPECT_EQ(deliver->stat.count, 2u);
  EXPECT_EQ(deliver->stat.total_ns, 4'000);
}

TEST(ProfReport, DumpRoundTripsThroughParseAndMerge) {
  reset();
  enable();
  {
    PROF_SCOPE("t_dump_scope");
    spin_ns(10'000);
  }
  disable();

  EngineProfile engine;
  static const char* kStep = "rank.step";
  engine.record_event(kStep, 2'000, 1);
  engine.record_delivery("rwcp", "etl", 40'000'000);

  json::Value extra = json::Value::object();
  extra.set("note", std::string("round-trip"));
  const std::string body = dump_json("unit-test", &engine, std::move(extra));
  reset();

  auto dump = parse_dump(body);
  ASSERT_TRUE(dump.ok()) << dump.error().to_string();
  EXPECT_EQ(dump->source, "unit-test");
  EXPECT_NE(find_stack(dump->scopes, "t_dump_scope"), nullptr);
  ASSERT_FALSE(dump->engine.is_null());
  ASSERT_FALSE(dump->extra.is_null());

  MergedProfile merged;
  merged.add(*dump);
  EXPECT_NE(merged.render_hotspots(10).find("t_dump_scope"),
            std::string::npos);
  EXPECT_NE(merged.render_events().find("rank.step"), std::string::npos);
  EXPECT_NE(merged.render_lookahead().find("cross-site"), std::string::npos);
  EXPECT_NE(merged.folded().find("t_dump_scope "), std::string::npos);
  EXPECT_EQ(merged.json().find("kind")->as_string(), "wacs-prof-merged");
}

TEST(ProfReport, ParseFoldedAcceptsFlamegraphText) {
  auto dump = parse_folded("a;b 100\na 50\n", "folded-file");
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump->source, "folded-file");
  const FoldedLine* ab = find_stack(dump->scopes, "a;b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->stat.self_ns(), 100);
}

TEST(ProfReport, ParseRejectsGarbageAndWrongKind) {
  EXPECT_FALSE(parse_dump("{not json").ok());
  EXPECT_FALSE(parse_dump("{\"kind\":\"something-else\"}").ok());
  // parse_any sniffs the first byte: '{' must go down the JSON path and
  // fail loudly, not be misread as one giant folded stack.
  EXPECT_FALSE(parse_any("{\"kind\":\"bench\"}", "x").ok());
}

}  // namespace
}  // namespace wacs::prof
