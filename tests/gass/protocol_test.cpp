#include "gass/protocol.hpp"

#include <gtest/gtest.h>

namespace wacs::gass {
namespace {

TEST(GassUrl, RoundTrip) {
  GassUrl url{Contact{"rwcp-outer", 9921}, "ab12cd"};
  EXPECT_EQ(url.to_string(), "gass://rwcp-outer:9921/ab12cd");
  auto parsed = GassUrl::parse(url.to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(*parsed, url);
}

TEST(GassUrl, ParseRejectsMalformedUrls) {
  EXPECT_FALSE(GassUrl::parse("").ok());
  EXPECT_FALSE(GassUrl::parse("http://host:1/key").ok());
  EXPECT_FALSE(GassUrl::parse("gass://host:1").ok());       // no key
  EXPECT_FALSE(GassUrl::parse("gass://host:1/").ok());      // empty key
  EXPECT_FALSE(GassUrl::parse("gass://host/key").ok());     // no port
  EXPECT_FALSE(GassUrl::parse("gass://:123/key").ok());     // empty host
  EXPECT_FALSE(GassUrl::parse("gass://host:nan/key").ok());  // bad port
}

TEST(GassProtocol, GetRoundTrip) {
  Get req;
  req.key = "deadbeef";
  req.origin = "gass://origin:7200/deadbeef";
  req.stripe_id = 2;
  req.stripe_count = 4;
  req.resume_chunks = 17;
  req.chunk_bytes = 4096;
  req.window_chunks = 3;
  const Bytes frame = req.encode();
  auto type = peek_type(frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kGet);
  auto d = Get::decode(frame);
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d->key, req.key);
  EXPECT_EQ(d->origin, req.origin);
  EXPECT_EQ(d->stripe_id, 2u);
  EXPECT_EQ(d->stripe_count, 4u);
  EXPECT_EQ(d->resume_chunks, 17u);
  EXPECT_EQ(d->chunk_bytes, 4096u);
  EXPECT_EQ(d->window_chunks, 3u);
}

TEST(GassProtocol, GetDecodeValidates) {
  Get req;
  req.key = "k";
  req.stripe_id = 4;
  req.stripe_count = 4;  // stripe_id must be < stripe_count
  EXPECT_FALSE(Get::decode(req.encode()).ok());

  Get zero;
  zero.key = "k";
  zero.chunk_bytes = 0;
  EXPECT_FALSE(Get::decode(zero.encode()).ok());
}

TEST(GassProtocol, GetReplyRoundTrip) {
  auto ok = GetReply::decode(GetReply{true, 123456, ""}.encode());
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->total_bytes, 123456u);

  auto bad = GetReply::decode(GetReply{false, 0, "no such object"}.encode());
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->error, "no such object");
}

TEST(GassProtocol, ChunkRoundTripPreservesBinaryPayload) {
  Chunk c;
  c.seq = 9;
  c.offset = 9 * 8192;
  c.payload = Bytes{0x00, 0xFF, 0x00, 0x7F, 0x80};
  auto d = Chunk::decode(c.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->seq, 9u);
  EXPECT_EQ(d->offset, 9u * 8192u);
  EXPECT_EQ(d->payload, c.payload);
}

TEST(GassProtocol, AckAndPutRoundTrip) {
  auto ack = ChunkAck::decode(ChunkAck{41}.encode());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->seq, 41u);

  Put put;
  put.data = pattern_bytes(1000, 7);
  auto d = Put::decode(put.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->data, put.data);

  auto reply = PutReply::decode(
      PutReply{true, "cafe", "gass://h:1/cafe", ""}.encode());
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->key, "cafe");
  EXPECT_EQ(reply->url, "gass://h:1/cafe");
}

TEST(GassProtocol, PeekTypeRejectsGarbage) {
  EXPECT_FALSE(peek_type(Bytes{}).ok());
  EXPECT_FALSE(peek_type(Bytes{0}).ok());
  EXPECT_FALSE(peek_type(Bytes{99}).ok());
}

TEST(GassProtocol, ChunkMath) {
  EXPECT_EQ(chunk_count(0, 8192), 0u);
  EXPECT_EQ(chunk_count(1, 8192), 1u);
  EXPECT_EQ(chunk_count(8192, 8192), 1u);
  EXPECT_EQ(chunk_count(8193, 8192), 2u);

  // 10 chunks over 4 stripes: stripes 0,1 get 3 (chunks 0/4/8 and 1/5/9),
  // stripes 2,3 get 2.
  EXPECT_EQ(stripe_chunks(10, 0, 4), 3u);
  EXPECT_EQ(stripe_chunks(10, 1, 4), 3u);
  EXPECT_EQ(stripe_chunks(10, 2, 4), 2u);
  EXPECT_EQ(stripe_chunks(10, 3, 4), 2u);
  EXPECT_EQ(stripe_chunks(0, 0, 4), 0u);
  EXPECT_EQ(stripe_chunks(10, 0, 1), 10u);
}

}  // namespace
}  // namespace wacs::gass
