// End-to-end GASS transfers over the simulated testbed: LAN round trips,
// proxied cross-site fetches, striping gains, and fault resumption.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "gass/client.hpp"
#include "gass/server.hpp"

namespace wacs::gass {
namespace {

std::uint64_t wan_bytes(core::GridSystem& g) {
  std::uint64_t total = 0;
  for (const sim::Link* link : g.net().all_links()) {
    if (link->params().name == "imnet") total += link->bytes_carried();
  }
  return total;
}

/// Puts `data` on the RWCP site server from rwcp-sun and returns the
/// advertised (public, proxied) URL.
GassUrl put_at_rwcp(core::Testbed& tb, const Bytes& data) {
  Result<GassUrl> url(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("put", [&](sim::Process& self) {
    GassClient client(tb->net().host("rwcp-sun"), Env{});
    url = client.put(self, tb->gass_server_for("rwcp")->contact(), data);
  });
  tb->engine().run();
  WACS_CHECK_MSG(url.ok(), url.error().to_string());
  return *url;
}

TEST(GassTransfer, LanPutFetchRoundTrip) {
  auto tb = core::make_rwcp_etl_testbed();
  // Sizes that stress the chunking: empty, one byte, a non-multiple of the
  // chunk size, and an exact multiple.
  const std::vector<std::size_t> sizes = {0, 1, 20000, 4 * 8192};
  for (std::size_t size : sizes) {
    const Bytes data = pattern_bytes(size, size + 1);
    const GassUrl url = put_at_rwcp(tb, data);
    Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
    TransferStats stats;
    tb->engine().spawn("fetch", [&](sim::Process& self) {
      GassClient client(tb->net().host("compas01"), Env{});
      // Same-site fetch: dial the server's LAN contact, not the public one.
      GassUrl lan{tb->gass_server_for("rwcp")->contact(), url.key};
      fetched = client.fetch(self, lan, {}, &stats);
    });
    tb->engine().run();
    ASSERT_TRUE(fetched.ok()) << fetched.error().to_string();
    EXPECT_EQ(*fetched, data) << "size " << size;
    EXPECT_EQ(stats.bytes, size);
    EXPECT_EQ(stats.chunks, chunk_count(size, kDefaultChunkBytes));
    EXPECT_EQ(stats.resumes, 0u);
  }
}

TEST(GassTransfer, FetchUnknownKeyFails) {
  auto tb = core::make_rwcp_etl_testbed();
  Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("fetch", [&](sim::Process& self) {
    GassClient client(tb->net().host("compas01"), Env{});
    fetched = client.fetch(
        self, GassUrl{tb->gass_server_for("rwcp")->contact(), "0123abcd"});
  });
  tb->engine().run();
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.error().code(), ErrorCode::kNotFound);
}

TEST(GassTransfer, ProxiedCrossSiteFetchDeliversExactBytes) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes data = pattern_bytes(100'000, 5);
  const GassUrl url = put_at_rwcp(tb, data);
  // The advertised URL names the outer server's public contact: an ETL
  // client dialing it crosses the WAN and the passive-open relay.
  EXPECT_EQ(url.server.host, "rwcp-outer");

  Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
  TransferStats stats;
  tb->engine().spawn("fetch", [&](sim::Process& self) {
    GassClient client(tb->net().host("etl-sun"), Env{});
    fetched = client.fetch(self, url, {}, &stats);
  });
  tb->engine().run();
  ASSERT_TRUE(fetched.ok()) << fetched.error().to_string();
  EXPECT_EQ(*fetched, data);
  EXPECT_EQ(stats.bytes, data.size());
}

/// Fetches `url` from etl-sun with `stripes` streams on a fresh testbed
/// seeded with `data` and returns the fetch's virtual duration.
double proxied_fetch_seconds(const Bytes& data, int stripes) {
  auto tb = core::make_rwcp_etl_testbed();
  const GassUrl url = put_at_rwcp(tb, data);
  TransferStats stats;
  Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("fetch", [&](sim::Process& self) {
    GassClient client(tb->net().host("etl-sun"), Env{});
    TransferOptions opts;
    opts.stripes = stripes;
    fetched = client.fetch(self, url, opts, &stats);
  });
  tb->engine().run();
  WACS_CHECK_MSG(fetched.ok(), fetched.error().to_string());
  WACS_CHECK(*fetched == data);
  return stats.seconds;
}

TEST(GassTransfer, StripingBeatsSingleStreamOnProxiedPath) {
  // The windowed protocol caps one stripe at window*chunk/RTT, and the
  // relay's per-message cost inflates the proxied RTT well past the WAN
  // serialization time — so a single stream cannot fill the 1.5 Mbps pipe
  // and adding stripes must strictly help (the GridFTP effect).
  const Bytes data = pattern_bytes(256 * 1024, 9);
  const double one = proxied_fetch_seconds(data, 1);
  const double four = proxied_fetch_seconds(data, 4);
  EXPECT_LT(four, one);

  // Deterministic: the same seed and topology reproduce the exact timing.
  EXPECT_DOUBLE_EQ(four, proxied_fetch_seconds(data, 4));
}

TEST(GassTransfer, OuterCrashMidTransferResumesFromRestartMarkers) {
  // Satellite: kill the outer proxy mid-transfer. The stripes must resume
  // from their restart markers, so the WAN carries roughly the remaining
  // bytes — not the whole file again.
  auto tb = core::make_rwcp_etl_testbed();
  tb->faults(7);
  const std::size_t kSize = 512 * 1024;
  const Bytes data = pattern_bytes(kSize, 11);
  const GassUrl url = put_at_rwcp(tb, data);

  // The put run left the clock past t=0 (stale recv deadlines fire before
  // the engine goes idle), so plan the outage relative to now: the fetch
  // below starts at `base` and runs for several virtual seconds.
  const sim::Time base = tb->engine().now();
  const std::uint64_t wan_before = wan_bytes(*tb.grid);
  tb->faults().plan_host_crash("rwcp-outer", base + sim::from_sec(1.2));
  tb->faults().plan_host_restart("rwcp-outer", base + sim::from_sec(2.0));

  Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
  TransferStats stats;
  tb->engine().spawn("fetch", [&](sim::Process& self) {
    GassClient client(tb->net().host("etl-sun"), Env{});
    fetched = client.fetch(self, url, {}, &stats);
  });
  tb->engine().run();

  ASSERT_TRUE(fetched.ok()) << fetched.error().to_string();
  EXPECT_EQ(*fetched, data);
  EXPECT_GT(stats.resumes, 0u);
  EXPECT_GT(stats.seconds, 2.0);  // the outage really interrupted it

  const std::uint64_t wan_delta = wan_bytes(*tb.grid) - wan_before;
  // Payload crosses once, plus framing/acks plus at most the unacked
  // window per stripe re-sent after the crash. A restart-from-zero would
  // re-cross everything delivered before t=1.2s (several hundred KB).
  EXPECT_GE(wan_delta, kSize);
  EXPECT_LT(wan_delta, kSize + kSize / 3);
}

}  // namespace
}  // namespace wacs::gass
