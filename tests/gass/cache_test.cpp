#include "gass/cache.hpp"

#include <gtest/gtest.h>

#include "security/sha256.hpp"

namespace wacs::gass {
namespace {

TEST(ObjectStore, PutKeysByContentAddress) {
  ObjectStore store;
  const Bytes abc = to_bytes("abc");
  const std::string key = store.put(abc);
  // NIST FIPS 180-2 vector for "abc".
  EXPECT_EQ(key,
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  ASSERT_TRUE(store.contains(key));
  EXPECT_EQ(*store.peek(key), abc);
}

TEST(ObjectStore, PutIsIdempotent) {
  ObjectStore store;
  const Bytes data = pattern_bytes(5000, 3);
  const std::string k1 = store.put(data);
  const std::string k2 = store.put(data);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(store.objects(), 1u);
  EXPECT_EQ(store.stored_bytes(), 5000u);
}

TEST(ObjectStore, FindCountsHitsAndMisses) {
  ObjectStore store;
  const std::string key = store.put(to_bytes("payload"));
  EXPECT_EQ(store.find("not-a-key"), nullptr);
  EXPECT_NE(store.find(key), nullptr);
  EXPECT_NE(store.find(key), nullptr);
  EXPECT_EQ(store.hits(), 2u);
  EXPECT_EQ(store.misses(), 1u);
}

TEST(ObjectStore, PeekDoesNotCount) {
  ObjectStore store;
  const std::string key = store.put(to_bytes("payload"));
  EXPECT_NE(store.peek(key), nullptr);
  EXPECT_EQ(store.peek("nope"), nullptr);
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_EQ(store.misses(), 0u);
}

TEST(ObjectStore, EmptyObjectIsStorable) {
  ObjectStore store;
  const std::string key = store.put(Bytes{});
  EXPECT_EQ(key, security::sha256_hex(Bytes{}));
  ASSERT_NE(store.peek(key), nullptr);
  EXPECT_TRUE(store.peek(key)->empty());
}

}  // namespace
}  // namespace wacs::gass
