// GASS-backed job staging: the site cache pulls each input across the WAN
// once and fans it out over the LAN (the Table 4 wide-area scenario).
#include <atomic>

#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "gass/client.hpp"
#include "gass/server.hpp"
#include "security/sha256.hpp"

namespace wacs::gass {
namespace {

std::uint64_t wan_bytes(core::GridSystem& g) {
  std::uint64_t total = 0;
  for (const sim::Link* link : g.net().all_links()) {
    if (link->params().name == "imnet") total += link->bytes_carried();
  }
  return total;
}

TEST(GassStaging, SiteCachePullThroughIsSingleFlight) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes data = pattern_bytes(120'000, 21);

  Result<GassUrl> origin(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("put", [&](sim::Process& self) {
    GassClient client(tb->net().host("rwcp-sun"), Env{});
    origin = client.put(self, tb->gass_server_for("rwcp")->contact(), data);
  });
  tb->engine().run();
  ASSERT_TRUE(origin.ok()) << origin.error().to_string();

  // Two ETL hosts stage concurrently through their site server: the first
  // miss pulls across the WAN, the second waits on the same flight.
  Env etl_env;
  etl_env.set(env_keys::kGassServer,
              tb->gass_server_for("etl")->contact().to_string());
  std::vector<Result<Bytes>> got(
      2, Result<Bytes>(Error(ErrorCode::kInternal, "unset")));
  const char* hosts[] = {"etl-sun", "etl-o2k"};
  for (int i = 0; i < 2; ++i) {
    tb->engine().spawn(std::string("stage@") + hosts[i],
                       [&, i](sim::Process& self) {
                         GassClient client(tb->net().host(hosts[i]), etl_env);
                         got[static_cast<std::size_t>(i)] =
                             client.stage(self, *origin);
                       });
  }
  tb->engine().run();

  for (const auto& r : got) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(*r, data);
  }
  GassServer* etl = tb->gass_server_for("etl");
  EXPECT_EQ(etl->pull_throughs(), 1u);
  EXPECT_TRUE(etl->store().contains(origin->key));
}

TEST(GassStaging, StageFromOriginSiteStaysOnTheLan) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes data = pattern_bytes(60'000, 4);

  Result<GassUrl> origin(Error(ErrorCode::kInternal, "unset"));
  Result<Bytes> staged(Error(ErrorCode::kInternal, "unset"));
  std::uint64_t wan_before = 0;
  std::uint64_t wan_after = 0;
  tb->engine().spawn("put-stage", [&](sim::Process& self) {
    GassClient putter(tb->net().host("rwcp-sun"), Env{});
    origin = putter.put(self, tb->gass_server_for("rwcp")->contact(), data);
    ASSERT_TRUE(origin.ok());
    // Let the t=0 background traffic (MDS publishes) finish crossing the
    // WAN before taking the baseline.
    self.sleep(0.5);
    wan_before = wan_bytes(*tb.grid);
    // A COMPaS node stages what its own site server already holds: the
    // cache hit must never touch the WAN (or the relay).
    Env env;
    env.set(env_keys::kGassServer,
            tb->gass_server_for("rwcp")->contact().to_string());
    GassClient client(tb->net().host("compas03"), env);
    staged = client.stage(self, *origin);
    wan_after = wan_bytes(*tb.grid);
  });
  tb->engine().run();
  ASSERT_TRUE(staged.ok()) << staged.error().to_string();
  EXPECT_EQ(*staged, data);
  EXPECT_EQ(wan_after, wan_before);
}

/// Registers a task that verifies each rank received `expected` under the
/// name "instance" and counts verified ranks into `ranks_ok`.
void register_check_task(core::GridSystem& g, const Bytes& expected,
                         std::atomic<int>* ranks_ok) {
  g.registry().register_task("check-input", [&expected,
                                             ranks_ok](rmf::JobContext& ctx) {
    auto it = ctx.input_files.find("instance");
    if (it != ctx.input_files.end() && it->second == expected) {
      ranks_ok->fetch_add(1);
    }
    if (ctx.rank == 0) ctx.result = to_bytes("done");
  });
}

TEST(GassStaging, WideAreaJobStagesEachInputOnceOverWan) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes input = pattern_bytes(100 * 1024, 33);
  std::atomic<int> ranks_ok{0};
  register_check_task(*tb.grid, input, &ranks_ok);
  tb->registry().register_task("noop", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) ctx.result = to_bytes("done");
  });

  rmf::JobSpec base;
  base.nprocs = 20;
  base.placements = core::placement_wide_area(tb);

  // Control: the same 20-rank job with no inputs, to measure the WAN bytes
  // the submission/rendezvous machinery costs on its own.
  rmf::JobSpec control = base;
  control.name = control.task = "noop";
  std::uint64_t mark = wan_bytes(*tb.grid);
  auto r0 = tb->run_job("rwcp-sun", control);
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  ASSERT_TRUE(r0->ok) << r0->error;
  const std::uint64_t control_cost = wan_bytes(*tb.grid) - mark;

  // First staged run: the input crosses the IMnet exactly once (the ETL
  // site server's pull-through); RWCP's nine parts stay on the LAN.
  rmf::JobSpec staged = base;
  staged.name = staged.task = "check-input";
  staged.input_files = {{"instance", input}};
  staged.stage_via_gass = true;
  mark = wan_bytes(*tb.grid);
  auto r1 = tb->run_job("rwcp-sun", staged);
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  ASSERT_TRUE(r1->ok) << r1->error;
  EXPECT_EQ(ranks_ok.load(), 20);
  const std::uint64_t delta1 = wan_bytes(*tb.grid) - mark;
  EXPECT_GE(delta1, control_cost + input.size());
  EXPECT_LT(delta1, control_cost + input.size() + input.size() / 4);

  // Second identical run: every site cache is warm, so the WAN cost falls
  // back to roughly the control job's.
  mark = wan_bytes(*tb.grid);
  auto r2 = tb->run_job("rwcp-sun", staged);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  ASSERT_TRUE(r2->ok) << r2->error;
  EXPECT_EQ(ranks_ok.load(), 40);
  const std::uint64_t delta2 = wan_bytes(*tb.grid) - mark;
  EXPECT_LT(delta2, control_cost + input.size() / 8);

  EXPECT_EQ(tb->gass_server_for("etl")->pull_throughs(), 1u);
}

TEST(GassStaging, InlineStagingRemainsTheFallback) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes input = pattern_bytes(30'000, 2);
  std::atomic<int> ranks_ok{0};
  register_check_task(*tb.grid, input, &ranks_ok);

  rmf::JobSpec spec;
  spec.name = spec.task = "check-input";
  spec.nprocs = 20;
  spec.placements = core::placement_wide_area(tb);
  spec.input_files = {{"instance", input}};
  // stage_via_gass left false: payloads ride inside the submit RPC.
  auto r = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_TRUE(r->ok) << r->error;
  EXPECT_EQ(ranks_ok.load(), 20);
  EXPECT_EQ(tb->gass_server_for("etl")->pull_throughs(), 0u);
  EXPECT_EQ(tb->gass_server_for("rwcp")->store().objects(), 0u);
}

}  // namespace
}  // namespace wacs::gass
