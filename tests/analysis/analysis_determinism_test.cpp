// Analysis determinism: same-seed runs must yield byte-identical
// critical-path and timeline reports, and bench-diff must pass on the
// metrics-only reports of two untraced same-seed runs (tracing off does not
// change what the regression gate sees).
#include <gtest/gtest.h>

#include <string>

#include "analysis/bench_diff.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/timeline.hpp"
#include "analysis/trace.hpp"
#include "common/bench_report.hpp"
#include "common/telemetry.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"

namespace wacs::analysis {
namespace {

struct RunOutput {
  std::string jsonl;       // trace (empty when untraced)
  json::Value report;      // metrics-only bench report
};

RunOutput run_wide_area(bool traced) {
  telemetry::metrics().reset();
  telemetry::tracer().clear();
  if (traced) telemetry::tracer().enable();

  auto tb = core::make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(16, 3);
  rmf::JobSpec spec;
  spec.name = "analysis-det";
  spec.task = knapsack::kParallelTask;
  auto placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, "500"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK(result.ok() && result->ok);

  RunOutput out;
  out.jsonl = telemetry::tracer().to_jsonl();
  telemetry::tracer().disable();

  bench::Report report("analysis-det");
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  report.set("total_nodes", stats->total_nodes);
  report.set("app_seconds", stats->app_seconds);
  report.attach_metrics_snapshot();
  out.report = report.root();
  return out;
}

TEST(AnalysisDeterminism, SameSeedRunsYieldByteIdenticalReports) {
  RunOutput a = run_wide_area(/*traced=*/true);
  RunOutput b = run_wide_area(/*traced=*/true);
  ASSERT_FALSE(a.jsonl.empty());

  Trace ta = parse_trace(a.jsonl);
  Trace tb = parse_trace(b.jsonl);
  auto cpa = critical_path(ta);
  auto cpb = critical_path(tb);
  ASSERT_TRUE(cpa.ok() && cpb.ok());
  EXPECT_EQ(cpa->to_json().dump(), cpb->to_json().dump());
  EXPECT_EQ(cpa->render(), cpb->render());

  Timeline tla = build_timeline(ta);
  Timeline tlb = build_timeline(tb);
  EXPECT_EQ(tla.to_json().dump(), tlb.to_json().dump());
  EXPECT_EQ(tla.render_ascii(), tlb.render_ascii());
}

TEST(AnalysisDeterminism, TracingOffBenchDiffStillPasses) {
  RunOutput a = run_wide_area(/*traced=*/false);
  RunOutput b = run_wide_area(/*traced=*/false);
  EXPECT_TRUE(a.jsonl.empty());

  DiffResult result = diff_reports(a.report, b.report);
  EXPECT_TRUE(result.pass()) << result.markdown();
  EXPECT_GT(result.compared, 3u);

  // And an untraced report diffs clean against a traced run's report too:
  // tracing must not perturb the metrics the gate compares.
  RunOutput traced = run_wide_area(/*traced=*/true);
  DiffResult cross = diff_reports(a.report, traced.report);
  EXPECT_TRUE(cross.pass()) << cross.markdown();
}

}  // namespace
}  // namespace wacs::analysis
