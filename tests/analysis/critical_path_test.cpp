// Critical-path extraction: the synthetic case checks exact attribution,
// and the wide-area knapsack run checks the acceptance property — the
// category breakdown PARTITIONS the virtual makespan (sums exactly).
#include "analysis/critical_path.hpp"

#include <gtest/gtest.h>

#include "common/telemetry.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "simnet/time.hpp"

namespace wacs::analysis {
namespace {

const char kSmallTrace[] =
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank0@h0","ts":0,"dur":100,"trace":1,"span":1})"
    "\n"
    R"({"type":"flow_s","cat":"tcp","name":"msg","track":"job1.rank0@h0","ts":50,"trace":1,"flow":10,"span":1,"args":{"arr":80,"bytes":164,"path":[{"l":"lan1","k":"lan","q":5,"tx":15,"lat":10}]}})"
    "\n"
    R"({"type":"flow_f","cat":"tcp","name":"msg","track":"job1.rank1@h1","ts":90,"trace":1,"flow":10})"
    "\n"
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank1@h1","ts":90,"dur":110,"trace":1,"span":2})"
    "\n";

TEST(CriticalPath, SyntheticTwoRankChainAttributesExactly) {
  Trace trace = parse_trace(kSmallTrace);
  auto cp = critical_path(trace);
  ASSERT_TRUE(cp.ok()) << cp.error().to_string();
  EXPECT_EQ(cp->end, 200);
  EXPECT_EQ(cp->terminal_track, "job1.rank1@h1");
  EXPECT_EQ(cp->hops, 1u);

  // [0,50) compute on rank0, [50,80) lan hop, [80,90) inbox queueing,
  // [90,200) compute on rank1.
  ASSERT_EQ(cp->segments.size(), 4u);
  EXPECT_EQ(cp->segments[0].begin, 0);
  EXPECT_EQ(cp->segments[0].end, 50);
  EXPECT_EQ(cp->segments[0].cat, Category::kCompute);
  EXPECT_EQ(cp->segments[1].cat, Category::kLanLink);
  EXPECT_EQ(cp->segments[1].track, "lan1");
  EXPECT_EQ(cp->segments[1].dur(), 30);
  EXPECT_EQ(cp->segments[2].cat, Category::kQueue);
  EXPECT_EQ(cp->segments[2].what, "inbox");
  EXPECT_EQ(cp->segments[2].dur(), 10);
  EXPECT_EQ(cp->segments[3].begin, 90);
  EXPECT_EQ(cp->segments[3].end, 200);
  EXPECT_EQ(cp->segments[3].cat, Category::kCompute);

  EXPECT_EQ(cp->by_category.at(Category::kCompute), 160);
  EXPECT_EQ(cp->by_category.at(Category::kLanLink), 30);
  EXPECT_EQ(cp->by_category.at(Category::kQueue), 10);
  EXPECT_EQ(cp->by_category.at(Category::kWanLink), 0);
}

TEST(CriticalPath, SegmentsAreContiguousAndRenderWorks) {
  Trace trace = parse_trace(kSmallTrace);
  auto cp = critical_path(trace);
  ASSERT_TRUE(cp.ok());
  TimeNs cursor = 0;
  for (const PathSegment& seg : cp->segments) {
    EXPECT_EQ(seg.begin, cursor);
    EXPECT_GT(seg.end, seg.begin);
    cursor = seg.end;
  }
  EXPECT_EQ(cursor, cp->end);

  const std::string text = cp->render();
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
  const json::Value report = cp->to_json();
  EXPECT_NE(report.find("by_category_ns"), nullptr);
}

TEST(CriticalPath, RecoverySpansCategorizeAsRecovery) {
  // rmf.recovery.* spans live under the "rmf" trace category; they must map
  // to the recovery bucket, not fall through to rmf -> setup.
  const char* line =
      R"({"type":"span","cat":"rmf","name":"rmf.recovery.replay","track":"gk@rwcp-gate","ts":0,"dur":120,"trace":1,"span":1})"
      "\n";
  Trace trace = parse_trace(line);
  auto cp = critical_path(trace);
  ASSERT_TRUE(cp.ok()) << cp.error().to_string();
  EXPECT_EQ(cp->end, 120);
  EXPECT_EQ(cp->by_category.at(Category::kRecovery), 120);
  EXPECT_EQ(std::string(category_name(Category::kRecovery)), "recovery");
  // The fixed category list includes the new bucket exactly once.
  int seen = 0;
  for (Category cat : kAllCategories) {
    if (cat == Category::kRecovery) ++seen;
  }
  EXPECT_EQ(seen, 1);
}

TEST(CriticalPath, ErrorsOnEmptyOrUnmatchedTerminal) {
  Trace empty = parse_trace("");
  EXPECT_FALSE(critical_path(empty).ok());
  Trace trace = parse_trace(kSmallTrace);
  CriticalPathOptions opt;
  opt.terminal = "no.such.span";
  EXPECT_FALSE(critical_path(trace, opt).ok());
}

// The acceptance check: analyse a real traced wide-area proxied knapsack
// run (the Table 4 configuration at test scale) and require that the
// category breakdown sums exactly to the virtual makespan, with the
// interesting categories all represented.
TEST(CriticalPath, WideAreaKnapsackBreakdownSumsToMakespan) {
  telemetry::metrics().reset();
  telemetry::tracer().clear();
  telemetry::tracer().enable();

  auto tb = core::make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(16, 3);
  rmf::JobSpec spec;
  spec.name = "cp-accept";
  spec.task = knapsack::kParallelTask;
  auto placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, "500"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok() && result->ok);

  const std::string jsonl = telemetry::tracer().to_jsonl();
  telemetry::tracer().disable();
  telemetry::tracer().clear();

  Trace trace = parse_trace(jsonl);
  EXPECT_EQ(trace.malformed, 0u);
  EXPECT_GT(trace.spans.size(), 50u);
  EXPECT_GT(trace.flows.size(), 50u);

  auto cp = critical_path(trace);
  ASSERT_TRUE(cp.ok()) << cp.error().to_string();
  EXPECT_GT(cp->end, 0);
  EXPECT_GT(cp->hops, 0u);

  // Partition property: contiguous from 0 to the makespan...
  TimeNs cursor = 0;
  for (const PathSegment& seg : cp->segments) {
    ASSERT_EQ(seg.begin, cursor);
    cursor = seg.end;
  }
  EXPECT_EQ(cursor, cp->end);
  // ...so the category totals sum to the makespan exactly.
  TimeNs total = 0;
  for (const auto& [cat, ns] : cp->by_category) total += ns;
  EXPECT_EQ(total, cp->end);

  // A proxied wide-area run's end-to-end path must show real compute and
  // real WAN/relay/queueing time.
  EXPECT_GT(cp->by_category.at(Category::kCompute), 0);
  EXPECT_GT(cp->by_category.at(Category::kWanLink), 0);
  EXPECT_GT(cp->by_category.at(Category::kRelay), 0);
  EXPECT_GT(cp->by_category.at(Category::kQueue), 0);
}

// §13 acceptance: a run that *recovers from a gatekeeper crash* must still
// yield a breakdown that partitions the (longer) makespan exactly — the
// recovery machinery introduces no unattributed time.
TEST(CriticalPath, RecoveredRunBreakdownStillPartitionsMakespan) {
  telemetry::metrics().reset();
  telemetry::tracer().clear();
  telemetry::tracer().enable();

  auto tb = core::make_rwcp_etl_testbed();
  tb->faults(17);
  tb->enable_recovery();
  tb->faults().plan_host_crash("rwcp-gate", sim::from_sec(0.2));
  tb->faults().plan_host_restart("rwcp-gate", sim::from_sec(0.9));

  knapsack::Instance inst = knapsack::no_prune_instance(12, 7);
  rmf::JobSpec spec;
  spec.name = "cp-recovery";
  spec.task = knapsack::kParallelTask;
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 1}, {"compas02", 1}};
  spec.nprocs = 4;
  spec.args = {{knapsack::args::kInterval, "200"},
               {knapsack::args::kStealUnit, "8"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  spec.deadline_seconds = 300;
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;

  const std::string jsonl = telemetry::tracer().to_jsonl();
  telemetry::tracer().disable();
  telemetry::tracer().clear();

  Trace trace = parse_trace(jsonl);
  EXPECT_EQ(trace.malformed, 0u);
  std::size_t recovery_spans = 0;
  for (const SpanEv& s : trace.spans) {
    if (s.name.rfind("rmf.recovery", 0) == 0) ++recovery_spans;
  }
  EXPECT_GE(recovery_spans, 1u);  // the gatekeeper's replay span, at least

  auto cp = critical_path(trace);
  ASSERT_TRUE(cp.ok()) << cp.error().to_string();
  TimeNs cursor = 0;
  for (const PathSegment& seg : cp->segments) {
    ASSERT_EQ(seg.begin, cursor);
    cursor = seg.end;
  }
  EXPECT_EQ(cursor, cp->end);
  TimeNs total = 0;
  for (const auto& [cat, ns] : cp->by_category) total += ns;
  EXPECT_EQ(total, cp->end);
}

}  // namespace
}  // namespace wacs::analysis
