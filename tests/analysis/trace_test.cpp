// Trace loading: lenient JSONL parsing (skip-and-count malformed lines),
// flow matching across start/end events, and causal-graph construction.
#include "analysis/trace.hpp"

#include <gtest/gtest.h>

namespace wacs::analysis {
namespace {

const char kSmallTrace[] =
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank0@h0","ts":0,"dur":100,"trace":1,"span":1})"
    "\n"
    R"({"type":"flow_s","cat":"tcp","name":"msg","track":"job1.rank0@h0","ts":50,"trace":1,"flow":10,"span":1,"args":{"arr":80,"bytes":164,"path":[{"l":"lan1","k":"lan","q":5,"tx":15,"lat":10}]}})"
    "\n"
    R"({"type":"flow_f","cat":"tcp","name":"msg","track":"job1.rank1@h1","ts":90,"trace":1,"flow":10})"
    "\n"
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank1@h1","ts":90,"dur":110,"trace":1,"span":2})"
    "\n";

TEST(TraceParse, BuildsSpansFlowsAndIndexes) {
  Trace trace = parse_trace(kSmallTrace);
  EXPECT_EQ(trace.malformed, 0u);
  EXPECT_EQ(trace.events, 4u);
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.flows.size(), 1u);
  EXPECT_EQ(trace.end_ts, 200);

  const FlowEv& flow = trace.flows[0];
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.src_track, "job1.rank0@h0");
  EXPECT_EQ(flow.dst_track, "job1.rank1@h1");
  EXPECT_EQ(flow.src_ts, 50);
  EXPECT_EQ(flow.dst_ts, 90);
  EXPECT_EQ(flow.arrival, 80);
  EXPECT_EQ(flow.bytes, 164u);
  ASSERT_EQ(flow.path.size(), 1u);
  EXPECT_EQ(flow.path[0].link, "lan1");
  EXPECT_EQ(flow.path[0].kind, "lan");
  EXPECT_EQ(flow.path[0].queued + flow.path[0].tx + flow.path[0].lat, 30);

  ASSERT_EQ(trace.arrivals_by_track.count("job1.rank1@h1"), 1u);
  EXPECT_EQ(trace.spans_by_track.size(), 2u);
  EXPECT_NE(trace.span_by_id(2), nullptr);
  EXPECT_EQ(trace.span_by_id(2)->name, "knapsack.search");
  EXPECT_EQ(trace.span_by_id(99), nullptr);
}

TEST(TraceParse, MalformedLinesAreSkippedAndCounted) {
  const std::string text = std::string(kSmallTrace) +
                           "this is not json\n"
                           "{\"type\":\"span\",\"truncated\":tru\n"
                           "[1,2,3]\n"
                           "\"a bare string\"\n"
                           "{\"no_type\":1}\n"
                           "\n"  // blank lines are not malformed
                           "   \n";
  Trace trace = parse_trace(text);
  EXPECT_EQ(trace.events, 4u);
  EXPECT_EQ(trace.malformed, 5u);
  EXPECT_EQ(trace.spans.size(), 2u);  // the good events still load fully
  EXPECT_EQ(trace.flows.size(), 1u);
}

TEST(TraceParse, HalfFlowsAreKeptButNotIndexed) {
  Trace trace = parse_trace(
      R"({"type":"flow_s","cat":"tcp","name":"msg","track":"a","ts":5,"trace":1,"flow":3})"
      "\n");
  ASSERT_EQ(trace.flows.size(), 1u);
  EXPECT_FALSE(trace.flows[0].complete());
  EXPECT_TRUE(trace.arrivals_by_track.empty());
}

TEST(TraceGraphBuild, ConnectsTrackOrderAndFlows) {
  Trace trace = parse_trace(kSmallTrace);
  TraceGraph graph = TraceGraph::build(trace);
  // One flow edge (span 1 -> span 2); no same-track pairs in this trace.
  bool found_flow_edge = false;
  for (const auto& edge : graph.edges) {
    if (edge.kind == TraceGraph::Edge::Kind::kFlow) {
      found_flow_edge = true;
      EXPECT_EQ(trace.spans[edge.from].id, 1u);
      EXPECT_EQ(trace.spans[edge.to].id, 2u);
      EXPECT_EQ(edge.flow, 10u);
    }
  }
  EXPECT_TRUE(found_flow_edge);
}

}  // namespace
}  // namespace wacs::analysis
