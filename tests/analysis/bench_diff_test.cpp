// bench-diff policy: exact compare by default (same-seed runs are
// deterministic), ratio tolerances by path suffix, "git" ignored, missing
// keys fail, added keys warn.
#include "analysis/bench_diff.hpp"

#include <gtest/gtest.h>

namespace wacs::analysis {
namespace {

json::Value sample_report() {
  json::Value root = json::Value::object();
  root.set("bench", "table4");
  root.set("schema_version", 2);
  root.set("git", "abc1234");
  root.set("total_nodes", std::int64_t{131071});
  root.set("app_seconds", 0.145);
  json::Value row = json::Value::object();
  row.set("system", "wide-area");
  row.set("seconds", 0.145);
  root.set("rows", json::Value::array().push_back(std::move(row)));
  json::Value links = json::Value::object();
  json::Value imnet = json::Value::object();
  imnet.set("bytes", std::int64_t{13937});
  links.set("imnet", std::move(imnet));
  root.set("links", std::move(links));
  return root;
}

TEST(BenchDiff, IdenticalReportsPass) {
  const json::Value a = sample_report();
  const json::Value b = sample_report();
  DiffResult result = diff_reports(a, b);
  EXPECT_TRUE(result.pass());
  EXPECT_TRUE(result.diffs.empty());
  EXPECT_GT(result.compared, 4u);
}

TEST(BenchDiff, IntegerPerturbationFailsExactly) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  b.set("total_nodes", std::int64_t{131072});
  DiffResult result = diff_reports(a, b);
  EXPECT_FALSE(result.pass());
  ASSERT_EQ(result.diffs.size(), 1u);
  EXPECT_EQ(result.diffs[0].path, "total_nodes");
  EXPECT_EQ(result.diffs[0].verdict, FieldDiff::Verdict::kChanged);
}

TEST(BenchDiff, DoubleExactByDefaultTolerantWhenConfigured) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  b.set("app_seconds", 0.146);  // ~0.7% off
  EXPECT_FALSE(diff_reports(a, b).pass());

  DiffOptions opt;
  opt.ratio_tol.emplace_back("app_seconds", 0.05);
  DiffResult tolerant = diff_reports(a, b, opt);
  EXPECT_TRUE(tolerant.pass());
  // The within-tolerance delta is still reported for the verdict table.
  ASSERT_EQ(tolerant.diffs.size(), 1u);
  EXPECT_EQ(tolerant.diffs[0].verdict, FieldDiff::Verdict::kOk);
  EXPECT_GT(tolerant.diffs[0].rel, 0.0);

  opt.ratio_tol.clear();
  opt.ratio_tol.emplace_back("app_seconds", 0.001);  // tighter than the delta
  EXPECT_FALSE(diff_reports(a, b, opt).pass());
}

TEST(BenchDiff, SuffixMatchesNestedPaths) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  // The nested double lives at rows[0].seconds; the "seconds" suffix matches.
  json::Value row = json::Value::object();
  row.set("system", "wide-area");
  row.set("seconds", 0.150);
  b.set("rows", json::Value::array().push_back(std::move(row)));
  DiffOptions opt;
  opt.ratio_tol.emplace_back("seconds", 0.10);
  EXPECT_TRUE(diff_reports(a, b, opt).pass());
  EXPECT_FALSE(diff_reports(a, b).pass());
}

TEST(BenchDiff, MissingKeyFailsAddedKeyWarns) {
  json::Value a = sample_report();
  a.set("only_in_baseline", 1);
  json::Value b = sample_report();
  b.set("only_in_current", 2);
  DiffResult result = diff_reports(a, b);
  EXPECT_FALSE(result.pass());
  bool saw_missing = false;
  bool saw_added = false;
  for (const FieldDiff& d : result.diffs) {
    if (d.verdict == FieldDiff::Verdict::kMissing) {
      saw_missing = true;
      EXPECT_EQ(d.path, "only_in_baseline");
    }
    if (d.verdict == FieldDiff::Verdict::kAdded) {
      saw_added = true;
      EXPECT_EQ(d.path, "only_in_current");
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_added);

  // Added keys alone pass by default, fail under --strict-keys.
  const json::Value base = sample_report();
  DiffResult added_only = diff_reports(base, b);
  EXPECT_TRUE(added_only.pass());
  DiffOptions strict;
  strict.allow_new_keys = false;
  EXPECT_FALSE(diff_reports(base, b, strict).pass());
}

TEST(BenchDiff, GitStampIgnoredSchemaVersionExact) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  b.set("git", "def5678-dirty");
  EXPECT_TRUE(diff_reports(a, b).pass());

  b.set("schema_version", 3);
  DiffResult result = diff_reports(a, b);
  EXPECT_FALSE(result.pass());
  ASSERT_EQ(result.diffs.size(), 1u);
  EXPECT_EQ(result.diffs[0].path, "schema_version");
}

TEST(BenchDiff, ArrayLengthMismatchFails) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  json::Value extra = json::Value::object();
  extra.set("system", "other");
  extra.set("seconds", 0.2);
  b.find("rows")->push_back(std::move(extra));
  DiffResult result = diff_reports(a, b);
  EXPECT_FALSE(result.pass());
  ASSERT_FALSE(result.diffs.empty());
  EXPECT_EQ(result.diffs[0].path, "rows");
}

TEST(BenchDiff, MarkdownCarriesVerdict) {
  const json::Value a = sample_report();
  json::Value b = sample_report();
  EXPECT_NE(diff_reports(a, b).markdown("t").find("**PASS**"),
            std::string::npos);
  b.set("total_nodes", std::int64_t{1});
  const std::string md = diff_reports(a, b).markdown("table4");
  EXPECT_NE(md.find("**FAIL**"), std::string::npos);
  EXPECT_NE(md.find("total_nodes"), std::string::npos);
  EXPECT_NE(md.find("CHANGED"), std::string::npos);
  EXPECT_NE(md.find("### table4"), std::string::npos);
}

}  // namespace
}  // namespace wacs::analysis
