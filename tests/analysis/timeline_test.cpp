// Timeline reconstruction: per-rank activity split and per-link utilization
// rows, bucketed over the trace horizon.
#include "analysis/timeline.hpp"

#include <gtest/gtest.h>

namespace wacs::analysis {
namespace {

// rank0: steal span [0,200) inside search [0,1000); rank1 idle until 500
// then search [500,1000). One tcp flow with a 2-hop path (lan + wan).
const char kTrace[] =
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank0@h0","ts":0,"dur":1000,"trace":1,"span":1})"
    "\n"
    R"({"type":"span","cat":"knapsack","name":"knapsack.steal","track":"job1.rank0@h0","ts":0,"dur":200,"trace":1,"span":2,"parent":1})"
    "\n"
    R"({"type":"span","cat":"knapsack","name":"knapsack.search","track":"job1.rank1@h1","ts":500,"dur":500,"trace":1,"span":3})"
    "\n"
    R"({"type":"flow_s","cat":"tcp","name":"msg","track":"job1.rank0@h0","ts":100,"trace":1,"flow":5,"span":1,"args":{"arr":400,"bytes":1000,"path":[{"l":"lan1","k":"lan","q":0,"tx":100,"lat":50},{"l":"wan1","k":"wan","q":0,"tx":100,"lat":50}]}})"
    "\n"
    R"({"type":"flow_f","cat":"tcp","name":"msg","track":"job1.rank1@h1","ts":500,"trace":1,"flow":5})"
    "\n";

TEST(Timeline, RankRowsSplitComputeStealIdle) {
  Trace trace = parse_trace(kTrace);
  TimelineOptions opt;
  opt.buckets = 10;  // 100ns buckets over [0, 1000)
  Timeline tl = build_timeline(trace, opt);
  EXPECT_EQ(tl.end, 1000);
  EXPECT_EQ(tl.bucket_ns, 100);
  ASSERT_EQ(tl.ranks.size(), 2u);

  const auto& rank0 = tl.ranks.at("job1.rank0@h0");
  ASSERT_EQ(rank0.size(), 10u);
  // Buckets 0-1 are fully steal; the rest of the window is compute.
  EXPECT_EQ(rank0[0].steal, 100);
  EXPECT_EQ(rank0[0].compute, 0);
  EXPECT_EQ(rank0[1].steal, 100);
  EXPECT_EQ(rank0[2].compute, 100);
  EXPECT_EQ(rank0[2].idle, 0);

  const auto& rank1 = tl.ranks.at("job1.rank1@h1");
  // Idle before its window starts at 500, compute after.
  EXPECT_EQ(rank1[0].idle, 100);
  EXPECT_EQ(rank1[0].compute, 0);
  EXPECT_EQ(rank1[7].compute, 100);

  // Every bucket accounts for its full width.
  for (const auto& [track, row] : tl.ranks) {
    for (const auto& cell : row) {
      EXPECT_EQ(cell.compute + cell.steal + cell.comm + cell.idle, 100);
    }
  }
}

TEST(Timeline, LinkRowsFollowHopCharges) {
  Trace trace = parse_trace(kTrace);
  TimelineOptions opt;
  opt.buckets = 10;
  Timeline tl = build_timeline(trace, opt);
  ASSERT_EQ(tl.links.size(), 2u);
  // lan1 serializes [100,200), wan1 [250,350) (after lan1's tx+lat).
  const auto& lan = tl.links.at("lan1");
  const auto& wan = tl.links.at("wan1");
  TimeNs lan_busy = 0;
  TimeNs wan_busy = 0;
  std::uint64_t lan_bytes = 0;
  for (const auto& c : lan) { lan_busy += c.busy; lan_bytes += c.bytes; }
  for (const auto& c : wan) { wan_busy += c.busy; }
  EXPECT_EQ(lan_busy, 100);
  EXPECT_EQ(wan_busy, 100);
  EXPECT_EQ(lan_bytes, 1000u);
  EXPECT_EQ(lan[1].busy, 100);  // bucket [100,200)
  EXPECT_GT(wan[2].busy, 0);    // starts at 250
}

TEST(Timeline, JsonAndAsciiAreDeterministic) {
  Trace trace = parse_trace(kTrace);
  Timeline a = build_timeline(trace);
  Timeline b = build_timeline(trace);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());

  const std::string ascii = a.render_ascii();
  EXPECT_NE(ascii.find("job1.rank0@h0"), std::string::npos);
  EXPECT_NE(ascii.find("lan1"), std::string::npos);
  EXPECT_NE(ascii.find('S'), std::string::npos);  // steal cells render

  const json::Value report = a.to_json();
  ASSERT_NE(report.find("ranks"), nullptr);
  ASSERT_NE(report.find("links"), nullptr);
}

TEST(Timeline, ReaderDaemonTracksAreNotRanks) {
  Trace trace = parse_trace(
      R"({"type":"span","cat":"mpi","name":"mpi.demux","track":"mpi.rd.r0 job1.rank0","ts":0,"dur":10,"trace":1,"span":1})"
      "\n");
  Timeline tl = build_timeline(trace);
  EXPECT_TRUE(tl.ranks.empty());
}

}  // namespace
}  // namespace wacs::analysis
