// Deterministic socket-fault shim tests: loopback TCP only, ephemeral ports.
#include "sockets/fault.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cerrno>
#include <thread>
#include <utility>

namespace wacs::net::fault {
namespace {

std::pair<TcpSocket, TcpSocket> loopback_pair() {
  auto l = TcpListener::bind("127.0.0.1", 0);
  EXPECT_TRUE(l.ok());
  auto client = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  EXPECT_TRUE(client.ok());
  auto server = l->accept();
  EXPECT_TRUE(server.ok());
  return {std::move(*client), std::move(*server)};
}

TEST(FaultySocket, SlicedWritesDeliverByteIdenticalStream) {
  auto [client, server] = loopback_pair();
  FaultSpec spec;
  spec.seed = 7;
  spec.max_write_slice = 3;  // worst case: every write lands in crumbs
  FaultySocket faulty(std::move(client), spec, /*stream_id=*/1);

  const Bytes payload = pattern_bytes(10'000);
  std::thread writer([&] {
    ASSERT_TRUE(faulty.write_all(payload).ok());
    faulty.shutdown();
  });
  Bytes got;
  while (got.size() < payload.size()) {
    auto chunk = server.read_some(4096);
    if (!chunk.ok()) break;
    got.insert(got.end(), chunk->begin(), chunk->end());
  }
  writer.join();
  EXPECT_EQ(got, payload);
}

TEST(FaultySocket, SlicedFramesReassembleAcrossSplitLengthPrefix) {
  auto [client, server] = loopback_pair();
  FaultSpec spec;
  spec.seed = 11;
  spec.max_write_slice = 2;  // guarantees the 4-byte prefix gets split
  FaultySocket faulty(std::move(client), spec, 1);

  const Bytes frame = pattern_bytes(500);
  std::thread writer([&] { ASSERT_TRUE(faulty.write_frame(frame).ok()); });
  auto got = server.read_frame();
  writer.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, frame);
}

TEST(FaultySocket, ScheduledResetSurfacesAsPeerError) {
  auto [client, server] = loopback_pair();
  FaultSpec spec;
  spec.reset_after_bytes = 100;
  FaultySocket faulty(std::move(client), spec, 1);

  const Bytes payload = pattern_bytes(4096);
  auto s = faulty.write_all(payload);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kConnectionReset);
  EXPECT_GE(faulty.bytes_written(), 100);

  // Drain what arrived; the tail must be an error (RST), not a clean EOF.
  bool saw_error = false;
  for (int i = 0; i < 100; ++i) {
    auto chunk = server.read_some(4096);
    if (!chunk.ok()) {
      saw_error = chunk.error().code() != ErrorCode::kConnectionClosed;
      break;
    }
  }
  EXPECT_TRUE(saw_error) << "peer should observe ECONNRESET";
}

TEST(FaultSchedule, SameSeedSameStreamIsDeterministic) {
  FaultSpec spec;
  spec.seed = 42;
  spec.max_write_slice = 17;
  FaultSchedule a(spec, 3);
  FaultSchedule b(spec, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_slice(1000), b.next_slice(1000));
  }
}

TEST(FaultSchedule, DistinctStreamsDiverge) {
  FaultSpec spec;
  spec.seed = 42;
  spec.max_write_slice = 1000;
  FaultSchedule a(spec, 1);
  FaultSchedule b(spec, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_slice(100000) == b.next_slice(100000)) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(FaultyListener, InjectedTransientErrnoClassifiesRetryable) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  FaultyListener faulty(std::move(*l), FaultSpec{});
  faulty.fail_next(EMFILE);
  auto r = faulty.accept();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kUnavailable);
}

TEST(FaultyListener, InjectedFatalErrnoClassifiesTerminal) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  FaultyListener faulty(std::move(*l), FaultSpec{});
  faulty.fail_next(EBADF);
  auto r = faulty.accept();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kConnectionClosed);
}

TEST(FaultyListener, InjectionDoesNotConsumeQueuedConnection) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  const auto port = l->port();
  FaultyListener faulty(std::move(*l), FaultSpec{});
  auto client = TcpSocket::dial(Contact{"127.0.0.1", port});
  ASSERT_TRUE(client.ok());
  faulty.fail_next(ECONNABORTED);
  EXPECT_FALSE(faulty.accept().ok());
  // The queued connection is still there for the retry.
  auto conn = faulty.accept();
  EXPECT_TRUE(conn.ok());
}

TEST(ScopedAcceptFaults, HookFailsExactlyCountTimesOnOnePort) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  auto other = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(other.ok());
  {
    ScopedAcceptFaults faults(l->port(), EMFILE, 2);
    auto client = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 2; ++i) {
      auto r = l->accept();
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.error().code(), ErrorCode::kUnavailable);
    }
    EXPECT_EQ(faults.delivered(), 2);
    // Injections exhausted: the queued connection is accepted now.
    EXPECT_TRUE(l->accept().ok());
    // A different port is never touched by the hook.
    auto oc = TcpSocket::dial(Contact{"127.0.0.1", other->port()});
    ASSERT_TRUE(oc.ok());
    EXPECT_TRUE(other->accept().ok());
  }
}

TEST(TcpSocketTimeouts, ReadSomeTimeoutFiresWithoutData) {
  auto [client, server] = loopback_pair();
  auto r = server.read_some_timeout(1024, 50);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kTimeout);
  // And passes data through when it is there.
  ASSERT_TRUE(client.write_all(to_bytes("x")).ok());
  auto ok = server.read_some_timeout(1024, 1000);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(to_string(*ok), "x");
}

TEST(TcpSocketFraming, SmallMaxLenRejectsOversizedPrefixBeforePayload) {
  auto [client, server] = loopback_pair();
  // A 1 MiB length prefix against a 4 KiB cap must be rejected even though
  // no payload follows — the check runs before any allocation.
  const std::uint32_t huge = 1u << 20;
  Bytes header{static_cast<std::uint8_t>(huge),
               static_cast<std::uint8_t>(huge >> 8),
               static_cast<std::uint8_t>(huge >> 16),
               static_cast<std::uint8_t>(huge >> 24)};
  ASSERT_TRUE(client.write_all(header).ok());
  auto r = server.read_frame(4096);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kProtocolError);
}

TEST(TcpSocketKeepalive, SetKeepaliveIsObservableViaGetsockopt) {
  auto [client, server] = loopback_pair();
  ASSERT_TRUE(client.set_keepalive(30, 5, 3).ok());
  int on = 0;
  socklen_t len = sizeof on;
  ASSERT_EQ(::getsockopt(client.native(), SOL_SOCKET, SO_KEEPALIVE, &on, &len),
            0);
  EXPECT_EQ(on, 1);
}

}  // namespace
}  // namespace wacs::net::fault
