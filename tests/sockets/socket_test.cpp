// Real-socket substrate tests: loopback TCP only, ephemeral ports.
#include "sockets/socket.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace wacs::net {
namespace {

TEST(TcpListener, BindsEphemeralPort) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  EXPECT_GT(l->port(), 0);
}

TEST(TcpListener, RejectsBadAddress) {
  auto l = TcpListener::bind("not-an-ip", 0);
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.error().code(), ErrorCode::kInvalidArgument);
}

TEST(TcpListener, PortConflictFails) {
  auto l1 = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l1.ok());
  auto l2 = TcpListener::bind("127.0.0.1", l1->port());
  EXPECT_FALSE(l2.ok());
}

TEST(TcpSocket, DialRefusedWhenNobodyListens) {
  // Bind-then-drop guarantees the port was recently free.
  std::uint16_t dead_port;
  {
    auto l = TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(l.ok());
    dead_port = l->port();
  }
  auto s = TcpSocket::dial(Contact{"127.0.0.1", dead_port});
  EXPECT_FALSE(s.ok());
}

TEST(TcpSocket, EchoRoundTrip) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    auto data = conn->read_exact(5);
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(conn->write_all(*data).ok());
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->write_all(to_bytes("hello")).ok());
  auto echoed = c->read_exact(5);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(to_string(*echoed), "hello");
  server.join();
}

TEST(TcpSocket, FrameRoundTripIncludingEmpty) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 3; ++i) {
      auto f = conn->read_frame();
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(conn->write_frame(*f).ok());
    }
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  for (const Bytes& payload :
       {Bytes{}, to_bytes("x"), pattern_bytes(100000)}) {
    ASSERT_TRUE(c->write_frame(payload).ok());
    auto back = c->read_frame();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, payload);
  }
  server.join();
}

TEST(TcpSocket, OversizedFrameLengthRejected) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    auto f = conn->read_frame();
    EXPECT_FALSE(f.ok());
    EXPECT_EQ(f.error().code(), ErrorCode::kProtocolError);
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  // A length prefix claiming 4 GiB must be rejected without allocation.
  Bytes evil = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(c->write_all(evil).ok());
  server.join();
}

TEST(TcpSocket, EofMidFrameIsProtocolErrorNotHang) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    auto f = conn->read_frame();
    EXPECT_FALSE(f.ok());  // truncated
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  Bytes partial = {100, 0, 0, 0, 'a', 'b'};  // claims 100 bytes, sends 2
  ASSERT_TRUE(c->write_all(partial).ok());
  c->close();
  server.join();
}

TEST(TcpSocket, ReadExactReportsCleanEof) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    conn->close();
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  auto data = c->read_exact(10);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.error().code(), ErrorCode::kConnectionClosed);
  server.join();
}

TEST(TcpSocket, PeerAndLocalContacts) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    auto data = conn->read_exact(1);
    (void)data;
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  auto peer = c->peer();
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(peer->host, "127.0.0.1");
  EXPECT_EQ(peer->port, l->port());
  auto local = c->local();
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->host, "127.0.0.1");
  EXPECT_NE(local->port, 0);
  ASSERT_TRUE(c->write_all(to_bytes("x")).ok());
  server.join();
}

TEST(TcpListener, ShutdownUnblocksAccept) {
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  std::thread blocker([&] {
    auto conn = l->accept();
    EXPECT_FALSE(conn.ok());
  });
  // Give the thread a moment to park in accept().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  l->shutdown();
  blocker.join();
}

TEST(TcpSocket, LargeTransferIntegrity) {
  constexpr std::size_t kSize = 4 * 1024 * 1024;
  auto l = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(l.ok());
  Bytes sent = pattern_bytes(kSize, 99);
  std::thread server([&] {
    auto conn = l->accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_all(sent).ok());
  });
  auto c = TcpSocket::dial(Contact{"127.0.0.1", l->port()});
  ASSERT_TRUE(c.ok());
  auto got = c->read_exact(kSize);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(fnv1a(*got), fnv1a(sent));
  server.join();
}

}  // namespace
}  // namespace wacs::net
