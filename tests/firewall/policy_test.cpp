#include "firewall/policy.hpp"

#include <gtest/gtest.h>

namespace wacs::fw {
namespace {

ConnAttempt attempt(Direction dir, std::uint16_t port,
                    std::string src_site = "internet") {
  ConnAttempt a;
  a.src_host = "peer";
  a.src_site = std::move(src_site);
  a.dst_host = "rwcp-sun";
  a.dst_site = "rwcp";
  a.dst_port = port;
  a.direction = dir;
  return a;
}

TEST(Policy, TypicalIsDenyInboundAllowOutbound) {
  // The paper's assumed configuration (§1): deny based for incoming,
  // allow based for outgoing.
  Policy p = Policy::typical();
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 80)), Action::kDeny);
  EXPECT_EQ(p.evaluate(attempt(Direction::kOutbound, 80)), Action::kAllow);
}

TEST(Policy, OpenAllowsEverything) {
  Policy p = Policy::open();
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 1)), Action::kAllow);
  EXPECT_EQ(p.evaluate(attempt(Direction::kOutbound, 1)), Action::kAllow);
}

TEST(Policy, OpenInboundPunchesOnePort) {
  Policy p = Policy::typical();
  p.open_inbound(PortRange::single(9900), "nxport");
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 9900)), Action::kAllow);
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 9901)), Action::kDeny);
}

TEST(Policy, OpenInboundFromRestrictsSourceHost) {
  Policy p = Policy::typical();
  p.open_inbound_from("rwcp-outer", PortRange::single(9900), "nxport");
  auto a = attempt(Direction::kInbound, 9900);
  a.src_host = "rwcp-outer";
  EXPECT_EQ(p.evaluate(a), Action::kAllow);
  a.src_host = "attacker";
  EXPECT_EQ(p.evaluate(a), Action::kDeny);
}

TEST(Policy, FirstMatchWins) {
  Policy p = Policy::typical();
  Rule deny;
  deny.action = Action::kDeny;
  deny.direction = Direction::kInbound;
  deny.ports = PortRange::single(9900);
  p.add_rule(deny);
  p.open_inbound(PortRange::single(9900));  // shadowed by the deny above
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 9900)), Action::kDeny);
}

TEST(Policy, PortRangeWorkaroundModelsGlobus11) {
  // Globus 1.1's TCP_MIN_PORT/TCP_MAX_PORT approach: open a whole range.
  // The paper's criticism — this is effectively allow-based — shows up as
  // every port in the range being open to arbitrary sources.
  Policy p = Policy::typical();
  p.open_inbound(PortRange{40000, 41000}, "globus 1.1 port range");
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 40000)), Action::kAllow);
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 40500, "anywhere")),
            Action::kAllow);
  EXPECT_EQ(p.evaluate(attempt(Direction::kInbound, 41001)), Action::kDeny);
}

TEST(Firewall, CountsVerdicts) {
  Firewall fw("rwcp-fw", Policy::typical());
  EXPECT_FALSE(fw.permit(attempt(Direction::kInbound, 80)));
  EXPECT_TRUE(fw.permit(attempt(Direction::kOutbound, 80)));
  EXPECT_TRUE(fw.permit(attempt(Direction::kOutbound, 81)));
  EXPECT_EQ(fw.denied(), 1u);
  EXPECT_EQ(fw.allowed(), 2u);
  fw.reset_counters();
  EXPECT_EQ(fw.denied(), 0u);
  EXPECT_EQ(fw.allowed(), 0u);
}

TEST(Firewall, PolicySwapTakesEffect) {
  // The paper temporarily reconfigured the firewall to measure the
  // direct-communication baseline; the simulator supports the same.
  Firewall fw("rwcp-fw", Policy::typical());
  EXPECT_FALSE(fw.permit(attempt(Direction::kInbound, 5000)));
  fw.set_policy(Policy::open());
  EXPECT_TRUE(fw.permit(attempt(Direction::kInbound, 5000)));
}

TEST(Policy, ToStringListsRules) {
  Policy p = Policy::typical();
  p.open_inbound(PortRange::single(9900), "nxport");
  std::string dump = p.to_string();
  EXPECT_NE(dump.find("default inbound: deny"), std::string::npos);
  EXPECT_NE(dump.find("allow inbound tcp/9900"), std::string::npos);
  EXPECT_NE(dump.find("# nxport"), std::string::npos);
}

}  // namespace
}  // namespace wacs::fw
