#include "firewall/rule.hpp"

#include <gtest/gtest.h>

namespace wacs::fw {
namespace {

ConnAttempt inbound(std::string src_host, std::string src_site,
                    std::string dst_host, std::uint16_t port) {
  ConnAttempt a;
  a.src_host = std::move(src_host);
  a.src_site = std::move(src_site);
  a.dst_host = std::move(dst_host);
  a.dst_site = "rwcp";
  a.dst_port = port;
  a.direction = Direction::kInbound;
  return a;
}

TEST(PortRange, DefaultCoversEverything) {
  PortRange r;
  EXPECT_TRUE(r.contains(0));
  EXPECT_TRUE(r.contains(65535));
  EXPECT_TRUE(r.valid());
}

TEST(PortRange, SingleAndBounds) {
  PortRange r = PortRange::single(9900);
  EXPECT_TRUE(r.contains(9900));
  EXPECT_FALSE(r.contains(9899));
  EXPECT_FALSE(r.contains(9901));

  PortRange range{40000, 40010};
  EXPECT_TRUE(range.contains(40000));
  EXPECT_TRUE(range.contains(40010));
  EXPECT_FALSE(range.contains(39999));
  EXPECT_FALSE(range.contains(40011));
}

TEST(Rule, WildcardMatchesAnyPeer) {
  Rule r;
  r.action = Action::kAllow;
  r.direction = Direction::kInbound;
  EXPECT_TRUE(r.matches(inbound("anyone", "anywhere", "rwcp-sun", 1234)));
}

TEST(Rule, DirectionMustMatch) {
  Rule r;
  r.direction = Direction::kOutbound;
  EXPECT_FALSE(r.matches(inbound("a", "s", "b", 1)));
}

TEST(Rule, PortRangeNarrowsMatch) {
  Rule r;
  r.direction = Direction::kInbound;
  r.ports = PortRange::single(9900);
  EXPECT_TRUE(r.matches(inbound("a", "s", "b", 9900)));
  EXPECT_FALSE(r.matches(inbound("a", "s", "b", 9901)));
}

TEST(Rule, SrcHostNarrowsMatch) {
  Rule r;
  r.direction = Direction::kInbound;
  r.src_host = "rwcp-outer";
  EXPECT_TRUE(r.matches(inbound("rwcp-outer", "rwcp", "rwcp-inner", 9900)));
  EXPECT_FALSE(r.matches(inbound("evil-host", "rwcp", "rwcp-inner", 9900)));
}

TEST(Rule, SrcSiteNarrowsMatch) {
  Rule r;
  r.direction = Direction::kInbound;
  r.src_site = "etl";
  EXPECT_TRUE(r.matches(inbound("etl-sun", "etl", "rwcp-sun", 80)));
  EXPECT_FALSE(r.matches(inbound("x", "titech", "rwcp-sun", 80)));
}

TEST(Rule, DstHostNarrowsMatch) {
  Rule r;
  r.direction = Direction::kInbound;
  r.dst_host = "rwcp-inner";
  EXPECT_TRUE(r.matches(inbound("a", "s", "rwcp-inner", 1)));
  EXPECT_FALSE(r.matches(inbound("a", "s", "rwcp-sun", 1)));
}

TEST(Rule, AllCriteriaMustHoldSimultaneously) {
  Rule r;
  r.direction = Direction::kInbound;
  r.src_host = "rwcp-outer";
  r.dst_host = "rwcp-inner";
  r.ports = PortRange::single(9900);
  EXPECT_TRUE(r.matches(inbound("rwcp-outer", "rwcp", "rwcp-inner", 9900)));
  EXPECT_FALSE(r.matches(inbound("rwcp-outer", "rwcp", "rwcp-inner", 9901)));
  EXPECT_FALSE(r.matches(inbound("rwcp-outer", "rwcp", "other", 9900)));
  EXPECT_FALSE(r.matches(inbound("other", "rwcp", "rwcp-inner", 9900)));
}

TEST(Rule, ToStringIsReadable) {
  Rule r;
  r.action = Action::kAllow;
  r.direction = Direction::kInbound;
  r.ports = PortRange::single(9900);
  r.src_host = "rwcp-outer";
  r.comment = "nxport";
  EXPECT_EQ(r.to_string(),
            "allow inbound tcp/9900 from host=rwcp-outer  # nxport");
}

}  // namespace
}  // namespace wacs::fw
