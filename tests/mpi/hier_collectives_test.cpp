// WAN-aware (MagPIe-style) collectives: identical results to the linear
// algorithms, strictly fewer WAN crossings.
#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "mpi/comm.hpp"

namespace wacs::mpi {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;
using core::make_three_site_testbed;

std::vector<rmf::Placement> mixed_placements() {
  return {{"rwcp-sun", 2}, {"compas01", 1}, {"etl-sun", 2}, {"etl-o2k", 2}};
}

Bytes run_task(Testbed& tb, const std::string& name,
               std::vector<rmf::Placement> placements) {
  rmf::JobSpec spec;
  spec.name = name;
  spec.task = name;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  auto result = tb->run_job("rwcp-sun", spec);
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  return result->output;
}

TEST(HierCollectives, SiteTableReachesEveryRank) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("sites", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    WACS_CHECK(comm->site_aware());
    WACS_CHECK(static_cast<int>(comm->rank_sites().size()) == comm->size());
    // Own entry matches where we actually run.
    WACS_CHECK(comm->rank_sites()[static_cast<std::size_t>(comm->rank())] ==
               ctx.host->site());
    if (ctx.rank == 0) {
      std::string all;
      for (const auto& s : comm->rank_sites()) all += s + ",";
      ctx.result = to_bytes(all);
    }
    comm->finalize();
  });
  Bytes out = run_task(tb, "sites", mixed_placements());
  EXPECT_EQ(to_string(out), "rwcp,rwcp,rwcp,etl,etl,etl,etl,");
}

TEST(HierCollectives, ResultsMatchLinearCollectives) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("match", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    const std::int64_t mine = (comm->rank() + 1) * 7;

    const std::int64_t linear = comm->allreduce_sum(mine);
    const std::int64_t hier = comm->allreduce_sum_wan_aware(mine);
    WACS_CHECK(linear == hier);

    Bytes payload = pattern_bytes(1000, 3);
    Bytes lin = comm->bcast(0, comm->rank() == 0 ? payload : Bytes{});
    Bytes hie = comm->bcast_wan_aware(0, comm->rank() == 0 ? payload : Bytes{});
    WACS_CHECK(lin == payload && hie == payload);

    comm->barrier_wan_aware();
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(hier);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_task(tb, "match", mixed_placements());
  BufReader r(out);
  // sum over ranks 0..6 of (rank+1)*7 = 7 * 28
  EXPECT_EQ(r.i64().value(), 7 * 28);
}

TEST(HierCollectives, NonZeroRootWorks) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("root3", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    // Root 3 lives at ETL; ranks 0-2 at RWCP must get the data through
    // their site coordinator.
    Bytes payload = to_bytes("from-rank-3");
    Bytes got = comm->bcast_wan_aware(3, comm->rank() == 3 ? payload : Bytes{});
    WACS_CHECK(got == payload);
    const std::int64_t sum = comm->reduce_sum_wan_aware(3, comm->rank());
    if (comm->rank() == 3) {
      BufWriter w;
      w.i64(sum);
      ctx.result = std::move(w).take();
    }
    if (comm->rank() == 0) ctx.result = got;
    comm->finalize();
  });
  Bytes out = run_task(tb, "root3", mixed_placements());
  EXPECT_EQ(to_string(out), "from-rank-3");
}

TEST(HierCollectives, FewerWanCrossingsThanLinear) {
  // Count messages on the IMnet link for a bcast from rank 0 (RWCP) with 4
  // remote ranks at ETL: linear sends 4 WAN messages, hierarchical 1.
  auto measure = [](bool hierarchical) {
    auto tb = make_rwcp_etl_testbed();
    tb->registry().register_task("wan", [hierarchical](rmf::JobContext& ctx) {
      auto comm = Comm::init(ctx);
      comm->barrier();  // exclude startup traffic differences
      Bytes payload = pattern_bytes(10000, 1);
      for (int i = 0; i < 8; ++i) {
        Bytes in = comm->rank() == 0 ? payload : Bytes{};
        Bytes out = hierarchical ? comm->bcast_wan_aware(0, std::move(in))
                                 : comm->bcast(0, std::move(in));
        WACS_CHECK(out == payload);
      }
      comm->finalize();
    });
    rmf::JobSpec spec;
    spec.name = "wan";
    spec.task = "wan";
    spec.nprocs = 6;
    spec.placements = {{"rwcp-sun", 2}, {"etl-o2k", 4}};
    // Byte counters on the WAN link include startup; compare totals, the
    // startup part is identical across the two runs.
    auto result = tb->run_job("rwcp-sun", spec);
    EXPECT_TRUE(result.ok() && result->ok);
    auto path = tb->net().route(tb->net().host("rwcp-sun"),
                                tb->net().host("etl-o2k"));
    return (*path)[1]->bytes_carried();  // the WAN hop
  };

  const std::uint64_t linear_bytes = measure(false);
  const std::uint64_t hier_bytes = measure(true);
  EXPECT_LT(hier_bytes, linear_bytes);
  // 8 bcasts x 10 KB x (4 WAN copies vs 1): expect roughly 240 KB saved.
  EXPECT_GT(linear_bytes - hier_bytes, 150000u);
}

TEST(HierCollectives, ThreeSiteAllreduce) {
  auto tb = make_three_site_testbed();
  tb->registry().register_task("ar3", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    const std::int64_t sum = comm->allreduce_sum_wan_aware(1);
    WACS_CHECK(sum == comm->size());
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(sum);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  rmf::JobSpec spec;
  spec.name = "ar3";
  spec.task = "ar3";
  spec.nprocs = 6;
  spec.placements = {{"rwcp-sun", 2}, {"etl-o2k", 2}, {"titech-smp", 2}};
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result->ok) << result->error;
  BufReader r(result->output);
  EXPECT_EQ(r.i64().value(), 6);
}

}  // namespace
}  // namespace wacs::mpi
