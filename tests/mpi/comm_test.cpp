// MiniMPI semantics, exercised by running real jobs on the Figure 5 testbed
// (so messages cross LAN, WAN, and — for RWCP ranks — the Nexus Proxy).
#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include "core/testbeds.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"

namespace wacs::mpi {
namespace {

using core::Testbed;
using core::make_rwcp_etl_testbed;

/// Runs `body` as an MPI task across the given placements and returns rank
/// 0's result bytes.
Bytes run_mpi(Testbed& tb, const std::string& task_name,
              std::vector<rmf::Placement> placements, int nprocs) {
  rmf::JobSpec spec;
  spec.name = task_name;
  spec.task = task_name;
  spec.nprocs = nprocs;
  spec.placements = std::move(placements);
  auto result = tb->run_job("rwcp-sun", spec);
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result->ok) << result->error;
  return result->output;
}

std::vector<rmf::Placement> mixed_placements() {
  // 2 ranks at RWCP (proxied) + 2 at ETL (direct): messages cross every
  // kind of route.
  return {{"rwcp-sun", 1}, {"compas01", 1}, {"etl-sun", 1}, {"etl-o2k", 1}};
}

TEST(MiniMpi, RankAndSizeAreConsistent) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("ranks", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    const std::int64_t sum =
        comm->allreduce_sum(static_cast<std::int64_t>(comm->rank()));
    WACS_CHECK(comm->size() == ctx.nprocs);
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(sum);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "ranks", mixed_placements(), 4);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 0 + 1 + 2 + 3);
}

TEST(MiniMpi, PingPongAcrossTheProxy) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("pingpong", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 0) {
      comm->send(1, 7, to_bytes("ping"));
      Bytes reply = comm->recv(1, 8);
      ctx.result = reply;
    } else {
      Bytes msg = comm->recv(0, 7);
      WACS_CHECK(to_string(msg) == "ping");
      comm->send(0, 8, to_bytes("pong"));
    }
    comm->finalize();
  });
  // rank0 at RWCP (proxied), rank1 at ETL (direct) — the WAN round trip.
  Bytes out = run_mpi(tb, "pingpong", {{"rwcp-sun", 1}, {"etl-o2k", 1}}, 2);
  EXPECT_EQ(to_string(out), "pong");
}

TEST(MiniMpi, PerPairOrderingIsFifo) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("fifo", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    constexpr int kCount = 64;
    if (comm->rank() == 1) {
      for (int i = 0; i < kCount; ++i) comm->send_i64(0, 3, i);
    } else if (comm->rank() == 0) {
      bool ordered = true;
      for (int i = 0; i < kCount; ++i) {
        if (comm->recv_i64(1, 3) != i) ordered = false;
      }
      ctx.result = to_bytes(ordered ? "ordered" : "scrambled");
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "fifo", {{"rwcp-sun", 1}, {"etl-o2k", 1}}, 2);
  EXPECT_EQ(to_string(out), "ordered");
}

TEST(MiniMpi, AnySourceReceivesFromEveryone) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("anysrc", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 0) {
      std::int64_t sum = 0;
      std::vector<bool> seen(static_cast<std::size_t>(comm->size()), false);
      for (int i = 1; i < comm->size(); ++i) {
        Comm::RecvInfo info;
        sum += comm->recv_i64(Comm::kAnySource, 5, &info);
        seen[static_cast<std::size_t>(info.source)] = true;
      }
      bool all = true;
      for (int i = 1; i < comm->size(); ++i) {
        if (!seen[static_cast<std::size_t>(i)]) all = false;
      }
      BufWriter w;
      w.i64(all ? sum : -1);
      ctx.result = std::move(w).take();
    } else {
      comm->send_i64(0, 5, comm->rank() * 10);
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "anysrc", mixed_placements(), 4);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 10 + 20 + 30);
}

TEST(MiniMpi, TagsMatchSelectively) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("tags", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 1) {
      comm->send_i64(0, 100, 1);
      comm->send_i64(0, 200, 2);
      comm->send_i64(0, 300, 3);
    } else if (comm->rank() == 0) {
      // Receive out of send order by tag.
      const std::int64_t c = comm->recv_i64(1, 300);
      const std::int64_t a = comm->recv_i64(1, 100);
      const std::int64_t b = comm->recv_i64(1, 200);
      BufWriter w;
      w.i64(a * 100 + b * 10 + c);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "tags", {{"rwcp-sun", 1}, {"compas01", 1}}, 2);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 123);
}

TEST(MiniMpi, IprobeDoesNotConsume) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("iprobe", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 1) {
      comm->send_i64(0, 9, 77);
    } else if (comm->rank() == 0) {
      // Busy-wait via iprobe with a virtual-time backoff.
      Comm::RecvInfo info;
      while (!comm->iprobe(Comm::kAnySource, 9, &info)) {
        ctx.self->sleep(0.001);
      }
      // Probing twice still sees it; receiving consumes it.
      WACS_CHECK(comm->iprobe(1, 9));
      const std::int64_t v = comm->recv_i64(1, 9);
      WACS_CHECK(!comm->iprobe(1, 9));
      BufWriter w;
      w.i64(v);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "iprobe", {{"rwcp-sun", 1}, {"etl-sun", 1}}, 2);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 77);
}

TEST(MiniMpi, CollectivesAgreeEverywhere) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("collectives", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    comm->barrier();

    const Bytes root_payload = to_bytes("broadcast-data");
    Bytes got = comm->bcast(0, comm->rank() == 0 ? root_payload : Bytes{});
    WACS_CHECK(got == root_payload);

    auto gathered = comm->gather(0, to_bytes(std::to_string(comm->rank())));
    if (comm->rank() == 0) {
      WACS_CHECK(static_cast<int>(gathered.size()) == comm->size());
      for (int i = 0; i < comm->size(); ++i) {
        WACS_CHECK(to_string(gathered[static_cast<std::size_t>(i)]) ==
                   std::to_string(i));
      }
    }

    const std::int64_t sum = comm->allreduce_sum(comm->rank() + 1);
    const std::int64_t maxv = comm->allreduce_max(comm->rank() * 2);
    comm->barrier();
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(sum);
      w.i64(maxv);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "collectives", mixed_placements(), 4);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 1 + 2 + 3 + 4);
  EXPECT_EQ(r.i64().value(), 6);
}

TEST(MiniMpi, ScatterDistributesPerRankSlices) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("scatter", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    std::vector<Bytes> parts;
    if (comm->rank() == 0) {
      for (int i = 0; i < comm->size(); ++i) {
        parts.push_back(to_bytes("slice-" + std::to_string(i)));
      }
    }
    Bytes mine = comm->scatter(0, std::move(parts));
    WACS_CHECK(to_string(mine) == "slice-" + std::to_string(comm->rank()));
    // Confirm to rank 0 that everyone got the right slice.
    const std::int64_t ok = comm->allreduce_sum(1);
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(ok);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "scatter", mixed_placements(), 4);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 4);
}

TEST(MiniMpi, AlltoallExchangesEveryPair) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("alltoall", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    std::vector<Bytes> parts;
    for (int dst = 0; dst < comm->size(); ++dst) {
      parts.push_back(
          to_bytes(std::to_string(comm->rank()) + ">" + std::to_string(dst)));
    }
    auto got = comm->alltoall(std::move(parts));
    bool good = static_cast<int>(got.size()) == comm->size();
    for (int src = 0; good && src < comm->size(); ++src) {
      good = to_string(got[static_cast<std::size_t>(src)]) ==
             std::to_string(src) + ">" + std::to_string(comm->rank());
    }
    const std::int64_t all_good = comm->allreduce_sum(good ? 1 : 0);
    if (comm->rank() == 0) {
      BufWriter w;
      w.i64(all_good);
      ctx.result = std::move(w).take();
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "alltoall", mixed_placements(), 4);
  BufReader r(out);
  EXPECT_EQ(r.i64().value(), 4);
}

TEST(MiniMpi, LargeMessagesAcrossTheWan) {
  auto tb = make_rwcp_etl_testbed();
  Bytes payload = pattern_bytes(500000, 11);
  const std::uint64_t want = fnv1a(payload);
  tb->registry().register_task("bigmsg", [payload, want](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 0) {
      comm->send(1, 1, payload);
      Bytes echo = comm->recv(1, 2);
      BufWriter w;
      w.boolean(fnv1a(echo) == want);
      ctx.result = std::move(w).take();
    } else {
      Bytes msg = comm->recv(0, 1);
      comm->send(0, 2, std::move(msg));
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "bigmsg", {{"rwcp-sun", 1}, {"etl-o2k", 1}}, 2);
  BufReader r(out);
  EXPECT_TRUE(r.boolean().value());
}

TEST(MiniMpi, MessageCountersTrackTraffic) {
  auto tb = make_rwcp_etl_testbed();
  tb->registry().register_task("counters", [](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 0) {
      comm->send(1, 1, pattern_bytes(100));
      comm->send(1, 1, pattern_bytes(200));
      (void)comm->recv(1, 2);
      BufWriter w;
      w.u64(comm->messages_sent());
      w.u64(comm->bytes_sent());
      ctx.result = std::move(w).take();
    } else {
      (void)comm->recv(0, 1);
      (void)comm->recv(0, 1);
      comm->send(0, 2, {});
    }
    comm->finalize();
  });
  Bytes out = run_mpi(tb, "counters", {{"rwcp-sun", 1}, {"compas01", 1}}, 2);
  BufReader r(out);
  EXPECT_EQ(r.u64().value(), 2u);
  EXPECT_EQ(r.u64().value(), 300u);
}

TEST(MiniMpi, DialedOnlyLinkDetectsPeerDeath) {
  // Links are unidirectional and lazily dialed, so a rank that dialed a
  // peer which never dialed back has no accepted link whose reader could
  // notice that peer's death. The dialed-link monitor watches the (always
  // silent) reverse direction of the outgoing socket: the peer's host
  // crash resets it, and probe_or_lost() reports the loss instead of
  // parking forever.
  auto tb = make_rwcp_etl_testbed();
  tb->faults(11).plan_host_crash("etl-sun", sim::from_sec(1.0));
  bool detected = false;
  tb->registry().register_task("dialed-loss", [&](rmf::JobContext& ctx) {
    auto comm = Comm::init(ctx);
    if (comm->rank() == 0) {
      (void)comm->recv(1, 7);  // accept rank 1's dial; never dial back
      ctx.self->sleep(60.0);   // park until the host crash kills us
    } else {
      comm->send(0, 7, {});
      Comm::RecvInfo info;
      if (!comm->probe_or_lost(0, Comm::kAnyTag, &info)) {
        auto l = comm->take_lost_rank();
        detected = l.has_value() && *l == 0;
      }
    }
    comm->finalize();
  });
  rmf::JobSpec spec;
  spec.name = "dialed-loss";
  spec.task = "dialed-loss";
  spec.nprocs = 2;
  spec.placements = {{"etl-sun", 1}, {"etl-o2k", 1}};
  auto result = tb->run_job("rwcp-sun", spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  // Rank 0 died with its host, so the job fails — but CLEANLY: rank 1
  // noticed the loss, exited, and delivered its completion.
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace wacs::mpi
