// End-to-end tests of the REAL Nexus Proxy daemons over loopback TCP.
//
// Topology mirrors the paper on one machine: outer daemon ("outside the
// firewall"), inner daemon ("inside", on the nxport), application endpoints
// dialing through them with the Table 1 client functions.
#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace wacs::nxproxy {
namespace {

struct Daemons {
  OuterDaemon outer{"127.0.0.1", 0, "127.0.0.1"};
  InnerDaemon inner{"127.0.0.1", 0};
  Daemons() {
    EXPECT_TRUE(outer.start().ok());
    EXPECT_TRUE(inner.start().ok());
  }
};

TEST(NxProxyReal, ActiveOpenRelaysToTarget) {
  Daemons d;
  auto target = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(target.ok());

  std::thread server([&] {
    auto conn = target->accept();
    ASSERT_TRUE(conn.ok());
    auto data = conn->read_exact(4);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(to_string(*data), "ping");
    ASSERT_TRUE(conn->write_all(to_bytes("pong")).ok());
  });

  auto sock = NXProxyConnect(d.outer.contact(),
                             Contact{"127.0.0.1", target->port()});
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  ASSERT_TRUE(sock->write_all(to_bytes("ping")).ok());
  auto reply = sock->read_exact(4);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "pong");
  server.join();
}

TEST(NxProxyReal, ActiveOpenToDeadTargetReportsRefusal) {
  Daemons d;
  std::uint16_t dead_port;
  {
    auto l = net::TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(l.ok());
    dead_port = l->port();
  }
  auto sock = NXProxyConnect(d.outer.contact(), Contact{"127.0.0.1", dead_port});
  ASSERT_FALSE(sock.ok());
  EXPECT_EQ(sock.error().code(), ErrorCode::kConnectionRefused);
  EXPECT_GE(d.outer.stats().handshake_failures.load(), 1u);
}

TEST(NxProxyReal, PassiveOpenThroughOuterAndInner) {
  Daemons d;
  auto bound = NXProxyBind(d.outer.contact(), d.inner.contact());
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->public_contact.host, "127.0.0.1");
  EXPECT_NE(bound->public_contact.port, bound->listener.port())
      << "public port must be the outer server's, not the private listener's";

  std::thread remote([&] {
    auto conn = net::TcpSocket::dial(bound->public_contact);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_all(to_bytes("hi-there")).ok());
    auto reply = conn->read_exact(2);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(to_string(*reply), "ok");
  });

  auto accepted = NXProxyAccept(*bound);
  ASSERT_TRUE(accepted.ok()) << accepted.error().to_string();
  auto& [sock, peer] = *accepted;
  EXPECT_EQ(peer.host, "127.0.0.1");  // true peer, not the inner daemon
  auto data = sock.read_exact(8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(to_string(*data), "hi-there");
  ASSERT_TRUE(sock.write_all(to_bytes("ok")).ok());
  remote.join();
  EXPECT_GE(d.inner.stats().bytes_relayed.load(), 8u);
  EXPECT_GE(d.outer.stats().bytes_relayed.load(), 8u);
}

TEST(NxProxyReal, LargePayloadIntegrityThroughTwoRelays) {
  constexpr std::size_t kSize = 8 * 1024 * 1024;
  Daemons d;
  auto bound = NXProxyBind(d.outer.contact(), d.inner.contact());
  ASSERT_TRUE(bound.ok());
  Bytes payload = pattern_bytes(kSize, 7);

  std::thread remote([&] {
    auto conn = net::TcpSocket::dial(bound->public_contact);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_all(payload).ok());
    conn->shutdown();
  });

  auto accepted = NXProxyAccept(*bound);
  ASSERT_TRUE(accepted.ok());
  auto got = accepted->first.read_exact(kSize);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(fnv1a(*got), fnv1a(payload));
  remote.join();
  EXPECT_GE(d.outer.stats().bytes_relayed.load(), kSize);
  EXPECT_GE(d.inner.stats().bytes_relayed.load(), kSize);
}

TEST(NxProxyReal, BidirectionalTrafficInterleaves) {
  Daemons d;
  auto bound = NXProxyBind(d.outer.contact(), d.inner.contact());
  ASSERT_TRUE(bound.ok());

  std::thread remote([&] {
    auto conn = net::TcpSocket::dial(bound->public_contact);
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 20; ++i) {
      Bytes msg = pattern_bytes(1000, static_cast<std::uint64_t>(i));
      ASSERT_TRUE(conn->write_all(msg).ok());
      auto back = conn->read_exact(1000);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, msg) << "iteration " << i;
    }
  });

  auto accepted = NXProxyAccept(*bound);
  ASSERT_TRUE(accepted.ok());
  for (int i = 0; i < 20; ++i) {
    auto msg = accepted->first.read_exact(1000);
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(accepted->first.write_all(*msg).ok());
  }
  remote.join();
}

TEST(NxProxyReal, MultipleConcurrentRelayedConnections) {
  constexpr int kConns = 6;
  Daemons d;
  auto bound = NXProxyBind(d.outer.contact(), d.inner.contact());
  ASSERT_TRUE(bound.ok());

  std::thread acceptor([&] {
    std::vector<std::thread> echoes;
    for (int i = 0; i < kConns; ++i) {
      auto accepted = NXProxyAccept(*bound);
      ASSERT_TRUE(accepted.ok());
      auto sock = std::make_shared<net::TcpSocket>(std::move(accepted->first));
      echoes.emplace_back([sock] {
        while (true) {
          auto chunk = sock->read_some(65536);
          if (!chunk.ok()) break;
          if (!sock->write_all(*chunk).ok()) break;
        }
      });
    }
    for (auto& t : echoes) t.join();
  });

  std::vector<std::thread> clients;
  std::atomic<int> successes{0};
  for (int i = 0; i < kConns; ++i) {
    clients.emplace_back([&, i] {
      auto conn = net::TcpSocket::dial(bound->public_contact);
      ASSERT_TRUE(conn.ok());
      Bytes msg = pattern_bytes(20000, static_cast<std::uint64_t>(i + 100));
      ASSERT_TRUE(conn->write_all(msg).ok());
      auto back = conn->read_exact(msg.size());
      ASSERT_TRUE(back.ok());
      if (*back == msg) ++successes;
      conn->shutdown();
    });
  }
  for (auto& t : clients) t.join();
  acceptor.join();
  EXPECT_EQ(successes.load(), kConns);
}

TEST(NxProxyReal, SeparateBindsGetSeparatePublicPorts) {
  Daemons d;
  auto b1 = NXProxyBind(d.outer.contact(), d.inner.contact());
  auto b2 = NXProxyBind(d.outer.contact(), d.inner.contact());
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_NE(b1->public_contact.port, b2->public_contact.port);
  EXPECT_NE(b1->bind_id, b2->bind_id);
  EXPECT_EQ(d.outer.active_binds(), 2u);
}

TEST(NxProxyReal, StopUnblocksEverything) {
  auto d = std::make_unique<Daemons>();
  auto bound = NXProxyBind(d->outer.contact(), d->inner.contact());
  ASSERT_TRUE(bound.ok());
  // A remote that connects but never completes anything.
  auto idle = net::TcpSocket::dial(bound->public_contact);
  ASSERT_TRUE(idle.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Destroys daemons: must join all threads without hanging.
  d.reset();
  SUCCEED();
}

TEST(NxProxyReal, ChainedRelaysAcrossTwoProxySystems) {
  // Two independent proxy systems (think RWCP and TITech): a client behind
  // system A actively opens toward a peer that passively opened behind
  // system B. The bytes traverse outerA -> outerB -> innerB.
  OuterDaemon outer_a("127.0.0.1", 0, "127.0.0.1");
  OuterDaemon outer_b("127.0.0.1", 0, "127.0.0.1");
  InnerDaemon inner_b("127.0.0.1", 0);
  ASSERT_TRUE(outer_a.start().ok());
  ASSERT_TRUE(outer_b.start().ok());
  ASSERT_TRUE(inner_b.start().ok());

  auto bound = NXProxyBind(outer_b.contact(), inner_b.contact());
  ASSERT_TRUE(bound.ok());

  std::thread server([&] {
    auto accepted = NXProxyAccept(*bound);
    ASSERT_TRUE(accepted.ok());
    auto data = accepted->first.read_exact(5);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(to_string(*data), "chain");
    ASSERT_TRUE(accepted->first.write_all(to_bytes("works")).ok());
  });

  // Active open through outer A, targeting B's public contact.
  auto sock = NXProxyConnect(outer_a.contact(), bound->public_contact);
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  ASSERT_TRUE(sock->write_all(to_bytes("chain")).ok());
  auto reply = sock->read_exact(5);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(*reply), "works");
  server.join();
  EXPECT_GT(outer_a.stats().bytes_relayed.load(), 0u);
  EXPECT_GT(outer_b.stats().bytes_relayed.load(), 0u);
  EXPECT_GT(inner_b.stats().bytes_relayed.load(), 0u);
}

TEST(NxProxyReal, RelayPolicyBlocksUnlistedTargets) {
  // A deny-by-default outer daemon refuses to dial targets not on the
  // allow-list — the relay cannot be abused as an open proxy.
  auto allowed_target = net::TcpListener::bind("127.0.0.1", 0);
  auto blocked_target = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(allowed_target.ok());
  ASSERT_TRUE(blocked_target.ok());

  RelayAccessPolicy policy;
  policy.allow_target("127.0.0.1", allowed_target->port());
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", policy);
  ASSERT_TRUE(outer.start().ok());

  std::thread server([&] {
    auto conn = allowed_target->accept();
    if (!conn.ok()) return;
    auto data = conn->read_exact(2);
    if (data.ok()) (void)conn->write_all(*data);
  });

  auto ok = NXProxyConnect(outer.contact(),
                           {"127.0.0.1", allowed_target->port()});
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->write_all(to_bytes("hi")).ok());
  ASSERT_TRUE(ok->read_exact(2).ok());
  server.join();

  auto blocked = NXProxyConnect(outer.contact(),
                                {"127.0.0.1", blocked_target->port()});
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.error().message().find("not permitted"),
            std::string::npos);
  EXPECT_GE(outer.stats().handshake_failures.load(), 1u);
}

TEST(NxProxyReal, RelayPolicyAllowsAnyPortOnListedHost) {
  RelayAccessPolicy policy;
  policy.allow_target("10.1.2.3");  // any port
  EXPECT_TRUE(policy.permits({"10.1.2.3", 80}));
  EXPECT_TRUE(policy.permits({"10.1.2.3", 65535}));
  EXPECT_FALSE(policy.permits({"10.1.2.4", 80}));

  RelayAccessPolicy pinned;
  pinned.allow_target("10.1.2.3", 443);
  EXPECT_TRUE(pinned.permits({"10.1.2.3", 443}));
  EXPECT_FALSE(pinned.permits({"10.1.2.3", 80}));

  RelayAccessPolicy open;  // default: the paper's permissive behaviour
  EXPECT_TRUE(open.permits({"anything", 1}));

  RelayAccessPolicy closed;
  closed.deny_by_default();
  EXPECT_FALSE(closed.permits({"anything", 1}));
}

TEST(NxProxyReal, GarbageOnControlPortIsRejected) {
  Daemons d;
  auto conn = net::TcpSocket::dial(d.outer.contact());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->write_frame(to_bytes("this is not a proxy message")).ok());
  // The daemon should drop us; reading yields EOF rather than a hang.
  auto reply = conn->read_frame();
  EXPECT_FALSE(reply.ok());
  EXPECT_GE(d.outer.stats().handshake_failures.load(), 1u);
}

}  // namespace
}  // namespace wacs::nxproxy
