// Hostile-WAN hardening tests for the REAL Nexus Proxy daemons: slowloris
// and half-open peers, admission-gate shedding, accept-errno survival, bind
// leases, and graceful drain — all over loopback TCP with tight deadlines.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <functional>
#include <thread>

#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"
#include "sockets/fault.hpp"

namespace wacs::nxproxy {
namespace {

using namespace std::chrono_literals;

/// Polls `cond` until true or the deadline passes. Generous by default so a
/// loaded CI machine does not flake the eviction tests.
bool wait_until(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return cond();
}

std::uint64_t hs_kind_sum(const DaemonStats& s) {
  return s.hs_policy_denied.load() + s.hs_malformed.load() +
         s.hs_dial_failed.load() + s.hs_timeout.load();
}

/// An echo server on an ephemeral loopback port, serving one connection.
struct EchoTarget {
  net::TcpListener listener;
  std::thread thread;

  EchoTarget() {
    auto l = net::TcpListener::bind("127.0.0.1", 0);
    EXPECT_TRUE(l.ok());
    listener = std::move(*l);
    thread = std::thread([this] {
      auto conn = listener.accept();
      if (!conn.ok()) return;
      while (true) {
        auto data = conn->read_some(4096);
        if (!data.ok()) return;
        if (!conn->write_all(*data).ok()) return;
      }
    });
  }
  ~EchoTarget() {
    listener.shutdown();
    if (thread.joinable()) thread.join();
  }
  Contact contact() const { return Contact{"127.0.0.1", listener.port()}; }
};

TEST(NxProxyHardening, SlowlorisControlConnectionEvictedByDeadline) {
  DaemonOptions opts;
  opts.handshake_timeout_ms = 200;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());

  // One header byte, then silence: the classic slowloris. The daemon must
  // cut the connection when the handshake budget runs out.
  auto conn = net::TcpSocket::dial(outer.contact());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->write_all(Bytes{0x01}).ok());
  EXPECT_TRUE(wait_until([&] { return outer.stats().hs_timeout.load() >= 1; }))
      << "slowloris connection was not evicted";
  // The daemon closed its end; our next read reports it.
  auto r = conn->read_some_timeout(16, 2000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(outer.stats().handshake_failures.load(),
            hs_kind_sum(outer.stats()));
  outer.stop();
}

TEST(NxProxyHardening, HalfOpenRelaySessionEvictedByIdleDeadline) {
  DaemonOptions opts;
  opts.idle_timeout_ms = 200;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());
  EchoTarget target;

  auto sock = NXProxyConnect(outer.contact(), target.contact());
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  // Prove the session is live, then park it: a half-open peer in miniature.
  ASSERT_TRUE(sock->write_all(to_bytes("ping")).ok());
  auto echoed = sock->read_exact(4);
  ASSERT_TRUE(echoed.ok());

  EXPECT_TRUE(
      wait_until([&] { return outer.stats().idle_evictions.load() >= 1; }))
      << "idle session was not evicted";
  EXPECT_TRUE(
      wait_until([&] { return outer.stats().sessions_closed.load() >= 1; }));
  auto r = sock->read_some_timeout(16, 2000);
  EXPECT_FALSE(r.ok()) << "daemon should have torn the idle session down";
  outer.stop();
}

TEST(NxProxyHardening, AdmissionGateShedsWithBusyAndRecovers) {
  DaemonOptions opts;
  opts.max_connections = 1;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());
  EchoTarget target;

  // Occupy the only slot with a handshake that never completes.
  auto parked = net::TcpSocket::dial(outer.contact());
  ASSERT_TRUE(parked.ok());
  ASSERT_TRUE(wait_until([&] { return outer.stats().connections.load() >= 1; }));

  // The next connection must be shed with an explicit Busy (kUnavailable,
  // the retryable class), not left hanging.
  ClientOptions one_shot;
  one_shot.retry.max_attempts = 1;
  auto shed = NXProxyConnect(outer.contact(), target.contact(), one_shot);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kUnavailable);
  EXPECT_NE(shed.error().message().find("busy"), std::string::npos)
      << shed.error().to_string();
  EXPECT_GE(outer.stats().shed_connections.load(), 1u);

  // Free the slot; the default retry policy should now get through.
  parked->shutdown();
  auto sock = NXProxyConnect(outer.contact(), target.contact());
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  ASSERT_TRUE(sock->write_all(to_bytes("ok?")).ok());
  auto echoed = sock->read_exact(3);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(to_string(*echoed), "ok?");
  outer.stop();
}

TEST(NxProxyHardening, AcceptLoopSurvivesInjectedEmfile) {
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  ASSERT_TRUE(outer.start().ok());
  EchoTarget target;

  {
    net::fault::ScopedAcceptFaults faults(outer.contact().port, EMFILE, 3);
    // The accept loop is already blocked in accept(); the first connection
    // goes through and the injections hit the next three accept calls.
    auto first = NXProxyConnect(outer.contact(), target.contact());
    ASSERT_TRUE(first.ok()) << first.error().to_string();
    EXPECT_TRUE(
        wait_until([&] { return outer.stats().accept_retries.load() >= 3; }))
        << "daemon did not retry the injected EMFILEs";
    EXPECT_EQ(faults.delivered(), 3);
  }
  // The loop survived: a fresh client is served end to end.
  EchoTarget target2;
  auto sock = NXProxyConnect(outer.contact(), target2.contact());
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  ASSERT_TRUE(sock->write_all(to_bytes("alive")).ok());
  auto echoed = sock->read_exact(5);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(to_string(*echoed), "alive");
  outer.stop();
}

TEST(NxProxyHardening, ExpiredLeaseIsReapedListenerAndAll) {
  DaemonOptions opts;
  opts.bind_lease_ms = 150;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());

  auto bound = NXProxyBind(outer.contact(), Contact{"127.0.0.1", 1});
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  EXPECT_EQ(bound->lease_ms, 150u);
  EXPECT_EQ(outer.stats().leases_granted.load(), 1u);
  EXPECT_EQ(outer.active_binds(), 1u);
  const auto public_contact = bound->public_contact;

  // Never renew: the sweeper must reap the binding, close its public
  // listener, and release the active_binds slot.
  EXPECT_TRUE(wait_until([&] { return outer.active_binds() == 0; }))
      << "expired lease was not reaped";
  EXPECT_GE(outer.stats().leases_expired.load(), 1u);

  // Relay collapsing must not match the dead binding either: a proxied
  // connect to the reaped public port falls through to a real dial, which
  // is refused because the listener is gone.
  ClientOptions one_shot;
  one_shot.retry.max_attempts = 1;
  auto sock = NXProxyConnect(outer.contact(), public_contact, one_shot);
  ASSERT_FALSE(sock.ok());
  EXPECT_GE(outer.stats().hs_dial_failed.load(), 1u);
  outer.stop();
}

TEST(NxProxyHardening, RenewedLeaseStaysAliveThenLapsesWithoutRenewal) {
  DaemonOptions opts;
  opts.bind_lease_ms = 300;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());

  auto bound = NXProxyBind(outer.contact(), Contact{"127.0.0.1", 1});
  ASSERT_TRUE(bound.ok());
  // Renew at twice the rate the lease requires, across several lease
  // durations: the binding must survive the whole stretch.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(150ms);
    auto renewed = NXProxyRenewBind(outer.contact(), bound->bind_id);
    ASSERT_TRUE(renewed.ok()) << renewed.error().to_string();
    EXPECT_EQ(*renewed, 300u);
    EXPECT_EQ(outer.active_binds(), 1u) << "binding reaped despite renewals";
  }
  EXPECT_GE(outer.stats().leases_renewed.load(), 6u);

  // Stop renewing: the lease lapses and the binding goes away.
  EXPECT_TRUE(wait_until([&] { return outer.active_binds() == 0; }));
  auto late = NXProxyRenewBind(outer.contact(), bound->bind_id);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code(), ErrorCode::kNotFound);
  outer.stop();
}

TEST(NxProxyHardening, RenewUnknownBindIdFails) {
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  ASSERT_TRUE(outer.start().ok());
  auto r = NXProxyRenewBind(outer.contact(), 0xdeadbeef);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  outer.stop();
}

TEST(NxProxyHardening, GracefulDrainLetsInFlightSessionFinish) {
  DaemonOptions opts;
  opts.drain_ms = 5000;
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  ASSERT_TRUE(outer.start().ok());
  EchoTarget target;

  auto sock = NXProxyConnect(outer.contact(), target.contact());
  ASSERT_TRUE(sock.ok()) << sock.error().to_string();
  ASSERT_TRUE(sock->write_all(to_bytes("warm")).ok());
  ASSERT_TRUE(sock->read_exact(4).ok());

  const auto t0 = std::chrono::steady_clock::now();
  std::thread stopper([&] { outer.stop(); });
  // The listener closes immediately, but the in-flight session keeps
  // relaying during the drain window.
  std::this_thread::sleep_for(100ms);
  ASSERT_TRUE(sock->write_all(to_bytes("mid-drain")).ok());
  auto echoed = sock->read_exact(9);
  ASSERT_TRUE(echoed.ok()) << "session must stay usable while draining";
  EXPECT_EQ(to_string(*echoed), "mid-drain");

  // Closing our end finishes the session; stop() must return well before
  // the full drain budget instead of sleeping it out.
  sock->shutdown();
  stopper.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 4000) << "drain should return as soon as sessions end";
  EXPECT_EQ(outer.stats().sessions_opened.load(),
            outer.stats().sessions_closed.load());
}

TEST(NxProxyHardening, OversizedControlFrameRejectedBeforeAllocation) {
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  ASSERT_TRUE(outer.start().ok());

  auto conn = net::TcpSocket::dial(outer.contact());
  ASSERT_TRUE(conn.ok());
  // An 8 MiB length prefix on the 4 KiB control surface: rejected on the
  // header alone, no payload needed.
  const std::uint32_t huge = 8u << 20;
  Bytes header{static_cast<std::uint8_t>(huge),
               static_cast<std::uint8_t>(huge >> 8),
               static_cast<std::uint8_t>(huge >> 16),
               static_cast<std::uint8_t>(huge >> 24)};
  ASSERT_TRUE(conn->write_all(header).ok());
  EXPECT_TRUE(
      wait_until([&] { return outer.stats().hs_malformed.load() >= 1; }));
  auto r = conn->read_some_timeout(16, 2000);
  EXPECT_FALSE(r.ok()) << "daemon must close the connection";
  EXPECT_EQ(outer.stats().handshake_failures.load(),
            hs_kind_sum(outer.stats()));
  outer.stop();
}

TEST(NxProxyHardening, FailureKindsAlwaysSumToHandshakeFailures) {
  DaemonOptions opts;
  opts.handshake_timeout_ms = 200;
  RelayAccessPolicy policy;
  policy.allow_target("127.0.0.1", 1);  // deny-by-default, nothing useful
  OuterDaemon outer("127.0.0.1", 0, "127.0.0.1", policy, opts);
  ASSERT_TRUE(outer.start().ok());

  ClientOptions one_shot;
  one_shot.retry.max_attempts = 1;
  // policy_denied
  (void)NXProxyConnect(outer.contact(), Contact{"127.0.0.1", 2}, one_shot);
  // malformed
  {
    auto conn = net::TcpSocket::dial(outer.contact());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_frame(to_bytes("garbage-frame")).ok());
    (void)conn->read_some_timeout(16, 2000);
  }
  // timeout (slowloris)
  {
    auto conn = net::TcpSocket::dial(outer.contact());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_all(Bytes{0x01}).ok());
    EXPECT_TRUE(wait_until(
        [&] { return outer.stats().hs_timeout.load() >= 1; }));
  }
  EXPECT_GE(outer.stats().hs_policy_denied.load(), 1u);
  EXPECT_GE(outer.stats().hs_malformed.load(), 1u);
  EXPECT_GE(outer.stats().hs_timeout.load(), 1u);
  EXPECT_EQ(outer.stats().handshake_failures.load(),
            hs_kind_sum(outer.stats()));
  outer.stop();
}

TEST(NxProxyHardening, InnerDaemonShedsWithBusyAtCapacity) {
  DaemonOptions opts;
  opts.max_connections = 1;
  InnerDaemon inner("127.0.0.1", 0, opts);
  ASSERT_TRUE(inner.start().ok());

  auto parked = net::TcpSocket::dial(inner.contact());
  ASSERT_TRUE(parked.ok());
  ASSERT_TRUE(wait_until([&] { return inner.stats().connections.load() >= 1; }));

  auto conn = net::TcpSocket::dial(inner.contact());
  ASSERT_TRUE(conn.ok());
  auto frame = conn->read_frame_timeout(2000, proxy::kMaxControlFrameBytes);
  ASSERT_TRUE(frame.ok()) << "shed connection must get an explicit reply";
  auto type = proxy::peek_type(*frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, proxy::MsgType::kBusy);
  EXPECT_GE(inner.stats().shed_connections.load(), 1u);
  inner.stop();
}

}  // namespace
}  // namespace wacs::nxproxy
