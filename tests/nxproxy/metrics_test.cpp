// The /metrics admin endpoint of the real proxy daemons: loopback HTTP
// scrape after driving real relay traffic, plus unit checks of the text
// exposition itself.
#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"
#include "nxproxy/metrics_http.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace wacs::nxproxy {
namespace {

/// One-shot HTTP GET against loopback; returns the whole response.
std::string http_get(std::uint16_t port, const std::string& path) {
  auto conn = net::TcpSocket::dial(Contact{"127.0.0.1", port});
  EXPECT_TRUE(conn.ok());
  if (!conn.ok()) return "";
  EXPECT_TRUE(
      conn->write_all(to_bytes("GET " + path + " HTTP/1.0\r\n\r\n")).ok());
  std::string out;
  while (true) {
    auto chunk = conn->read_some(4096);
    if (!chunk.ok() || chunk->empty()) break;
    out += to_string(*chunk);
  }
  return out;
}

/// Value of a series line like `name{...} 42`, or -1 when absent.
long long series_value(const std::string& body, const std::string& prefix) {
  const auto pos = body.find(prefix);
  if (pos == std::string::npos) return -1;
  const auto space = body.find(' ', pos);
  if (space == std::string::npos) return -1;
  return std::atoll(body.c_str() + space + 1);
}

TEST(NxProxyMetrics, RenderEmitsAllSeriesWithRoleLabel) {
  DaemonStats stats;
  stats.connections.store(3);
  stats.bytes_relayed.store(1024);
  stats.connect_ms.observe(0.5);
  stats.relay_session_ms.observe(12.0);
  const std::string text = render_metrics(stats, "outer");
  EXPECT_NE(text.find("nxproxy_connections_total{role=\"outer\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("nxproxy_bytes_relayed_total{role=\"outer\"} 1024"),
            std::string::npos);
  EXPECT_NE(text.find("nxproxy_connect_ms_count{role=\"outer\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("nxproxy_relay_session_ms_sum{role=\"outer\"} 12"),
            std::string::npos);
  // Cumulative buckets must end with the +Inf catch-all.
  EXPECT_NE(text.find("nxproxy_connect_ms_bucket{role=\"outer\",le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(NxProxyMetrics, RenderEmitsStageHistogramsAndProcessGauges) {
  DaemonStats stats;
  stats.stage_preamble_ms.observe(0.2);
  stats.stage_handshake_ms.observe(1.5);
  const std::string text = render_metrics(stats, "inner");
  EXPECT_NE(text.find("nxproxy_stage_preamble_ms_count{role=\"inner\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("nxproxy_stage_handshake_ms_count{role=\"inner\"} 1"),
            std::string::npos);
  // Process-level gauges: peak RSS is always positive on a live process,
  // and this test alone holds stdio + a few runtime fds open.
  EXPECT_GT(series_value(text, "nxproxy_process_peak_rss_bytes"), 0);
  EXPECT_GT(series_value(text, "nxproxy_process_open_fds"), 0);
  // Gauges must not carry the counter suffix.
  EXPECT_EQ(text.find("nxproxy_process_peak_rss_bytes_total"),
            std::string::npos);
}

TEST(NxProxyMetrics, EndpointServesMetricsAndHealthz) {
  InnerDaemon inner{"127.0.0.1", 0};
  ASSERT_TRUE(inner.start().ok());
  ASSERT_TRUE(inner.serve_metrics("127.0.0.1", 0).ok());
  ASSERT_NE(inner.metrics_port(), 0);

  const std::string health = http_get(inner.metrics_port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = http_get(inner.metrics_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  // Prometheus text exposition content type, version pinned.
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("nxproxy_connections_total{role=\"inner\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.find("nxproxy_process_open_fds{role=\"inner\"}"),
            std::string::npos);

  const std::string missing = http_get(inner.metrics_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  inner.stop();
}

TEST(NxProxyMetrics, ScrapeReflectsRelayedTraffic) {
  OuterDaemon outer{"127.0.0.1", 0, "127.0.0.1"};
  InnerDaemon inner{"127.0.0.1", 0};
  ASSERT_TRUE(outer.start().ok());
  ASSERT_TRUE(inner.start().ok());
  ASSERT_TRUE(outer.serve_metrics("127.0.0.1", 0).ok());
  ASSERT_TRUE(inner.serve_metrics("127.0.0.1", 0).ok());

  // Passive open through both daemons, one round trip, close.
  auto bound = NXProxyBind(outer.contact(), inner.contact());
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  std::thread remote([&] {
    auto conn = net::TcpSocket::dial(bound->public_contact);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->write_all(to_bytes("traffic!")).ok());
    (void)conn->read_exact(2);
  });
  auto accepted = NXProxyAccept(*bound);
  ASSERT_TRUE(accepted.ok()) << accepted.error().to_string();
  auto data = accepted->first.read_exact(8);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(accepted->first.write_all(to_bytes("ok")).ok());
  remote.join();
  accepted->first.shutdown();
  bound->listener.shutdown();

  // The splice sessions close asynchronously; poll the scrape until the
  // session-close events (and their latency observations) land.
  std::string outer_text;
  for (int i = 0; i < 100; ++i) {
    outer_text = http_get(outer.metrics_port(), "/metrics");
    if (series_value(outer_text, "nxproxy_sessions_closed_total") >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string inner_text = http_get(inner.metrics_port(), "/metrics");

  EXPECT_GE(series_value(outer_text, "nxproxy_connections_total"), 1);
  EXPECT_GE(series_value(outer_text, "nxproxy_bytes_relayed_total"), 8);
  EXPECT_GE(series_value(outer_text, "nxproxy_sessions_opened_total"), 1);
  EXPECT_GE(series_value(outer_text, "nxproxy_sessions_closed_total"), 1);
  EXPECT_GE(series_value(outer_text,
                         "nxproxy_relay_session_ms_count{role=\"outer\"}"),
            1);
  // The outer daemon dialed the inner: a connect latency was observed.
  EXPECT_GE(
      series_value(outer_text, "nxproxy_connect_ms_count{role=\"outer\"}"),
      1);
  EXPECT_GE(series_value(inner_text, "nxproxy_bytes_relayed_total"), 8);

  outer.stop();
  inner.stop();
}

}  // namespace
}  // namespace wacs::nxproxy
